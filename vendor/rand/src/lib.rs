//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the `rand` API the workspace uses —
//! [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`],
//! and [`SeedableRng::seed_from_u64`] for [`rngs::StdRng`] — with a
//! deterministic xoshiro256++ generator. Identical seeds always yield
//! identical streams on every platform, which is what the seeded
//! simulation workloads rely on; statistical quality is ample for test
//! and simulation use, but this is **not** a cryptographic generator.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0, 1]");
        next_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A uniform f64 in `[0, 1)` from the top 53 bits of one word.
fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled from, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (next_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                start + (next_f64(rng) as $t) * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// A generator constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands one `u64` into a full seed via SplitMix64, like `rand`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 step, used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut word = [0u8; 8];
                word.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(word);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0u64..1_000_000),
                b.gen_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-1.5f64..=1.5);
            assert!((-1.5..=1.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> =
            (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> =
            (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
