//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the `parking_lot` API shape the workspace uses: `RwLock`
//! and `Mutex` whose guards are returned directly (no poison `Result`).
//! Poisoning is absorbed by taking the inner value — a panicking
//! writer must not take down every later reader, which is exactly the
//! fault-isolation stance of the ingestion subsystem.

use std::sync::{self, PoisonError};

/// Reader-writer lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poison.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poison.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Mutual-exclusion lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trips() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
