//! The [`Strategy`] trait and core combinators.

use crate::string::StringPattern;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the per-case RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Type-erases the strategy so heterogeneous strategies of one
    /// value type can be mixed (see [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.new_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// Uniform choice among type-erased strategies.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let idx = rng.usize_below(self.options.len());
        self.options[idx].new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $from:ident),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.$from(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                rng.$from(start as i128, end as i128 + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(
    u8 => int_in, u16 => int_in, u32 => int_in, u64 => int_in, usize => int_in,
    i8 => int_in, i16 => int_in, i32 => int_in, i64 => int_in, isize => int_in
);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                // Include the upper endpoint by widening one ULP-ish
                // step: scale a closed unit sample.
                start + (rng.closed_unit_f64() as $t) * (end - start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// String literals act as regex-subset strategies, like in proptest.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        StringPattern::parse(self).generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(
    A, B, C, D, E, F
));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..500 {
            let (a, b, c) =
                (0u64..10, -5i32..=5, 0.25f64..0.75).new_value(&mut rng);
            assert!(a < 10);
            assert!((-5..=5).contains(&b));
            assert!((0.25..0.75).contains(&c));
        }
    }

    #[test]
    fn union_draws_every_option() {
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut rng = TestRng::for_case(1);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.new_value(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn map_applies() {
        let s = (1u32..2).prop_map(|v| v * 10);
        assert_eq!(s.new_value(&mut TestRng::for_case(2)), 10);
    }
}
