//! Fixed-size array strategies (`prop::array::uniform6`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An `[S::Value; N]` strategy drawing each element from `S`.
#[derive(Debug, Clone)]
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|_| self.element.new_value(rng))
    }
}

macro_rules! uniform_fn {
    ($($name:ident => $n:literal),*) => {$(
        /// Generates arrays of the given arity from one element strategy.
        pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
            UniformArray { element }
        }
    )*};
}

uniform_fn!(
    uniform2 => 2, uniform3 => 3, uniform4 => 4,
    uniform5 => 5, uniform6 => 6, uniform8 => 8
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform6_yields_six_in_range() {
        let s = uniform6(0.0f64..1.0);
        let v = s.new_value(&mut TestRng::for_case(0));
        assert_eq!(v.len(), 6);
        assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
    }
}
