//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A length distribution for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(
    element: S,
    size: impl Into<SizeRange>,
) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo
            + rng.usize_below(self.size.hi_exclusive - self.size.lo);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_range() {
        let s = vec(0u8..10, 2..5);
        let mut rng = TestRng::for_case(0);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 10));
        }
    }
}
