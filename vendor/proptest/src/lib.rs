//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest 1.x API this workspace uses:
//! the [`proptest!`], [`prop_compose!`], [`prop_oneof!`] and
//! `prop_assert*` macros, the [`strategy::Strategy`] trait with
//! `prop_map`/`boxed`, range / tuple / `Vec` / array / regex-string
//! strategies, [`arbitrary::any`], and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate, chosen deliberately for an
//! offline, deterministic test environment:
//!
//! - **No shrinking.** A failing case panics with the inputs' debug
//!   representation instead of a minimized counterexample.
//! - **Deterministic seeding.** Case `i` of every property is driven
//!   by a [SplitMix64-derived](test_runner::TestRng) stream seeded
//!   from the case index, so runs are reproducible byte-for-byte.
//! - **Regex strategies** support the subset the workspace uses:
//!   concatenations of character classes (`[a-z0-9-]`, ranges,
//!   escapes, and `&&[^...]` subtraction) with `{m,n}` / `{n}`
//!   repetition, plus literal characters.
//!
//! The number of cases per property defaults to 256 and can be
//! overridden globally with the `PROPTEST_CASES` environment variable
//! or per-block with `#![proptest_config(ProptestConfig::with_cases(n))]`.

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Glob-importable prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof,
        proptest,
    };

    /// Module-style access (`prop::collection::vec`, `prop::array::uniform6`).
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.resolved_cases() {
                    let mut rng = $crate::test_runner::TestRng::for_case(case);
                    let ($($arg,)+) = (
                        $($crate::strategy::Strategy::new_value(&($strat), &mut rng),)+
                    );
                    $body
                }
            }
        )*
    };
}

/// Composes named strategies into a function returning a derived
/// strategy, mirroring `proptest::prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($params:tt)*)($($arg:pat_param in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($params)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($arg,)+)| $body,
            )
        }
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}
