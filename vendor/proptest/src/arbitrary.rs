//! The [`any`] entry point and the [`Arbitrary`] trait.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one value spanning the whole domain.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Full-domain strategy for `A`, mirroring `proptest::arbitrary::any`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn new_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary_value(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Finite full-range doubles; NaN/inf payloads are exercised by
        // byte-level fuzzing instead.
        let v = rng.unit_f64();
        (v - 0.5) * f64::MAX * 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::for_case(0);
        let s = any::<u64>();
        assert_ne!(s.new_value(&mut rng), s.new_value(&mut rng));
    }
}
