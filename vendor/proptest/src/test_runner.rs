//! Configuration and the deterministic per-case RNG.

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count, honouring a `PROPTEST_CASES` environment
    /// override when it is smaller (so CI can cap runtime).
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
        {
            Some(env_cases) => self.cases.min(env_cases.max(1)),
            None => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic SplitMix64 stream; case `i` always sees the same
/// values, so failures reproduce without persisted seeds.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The stream for one case index.
    pub fn for_case(case: u32) -> Self {
        // Golden-ratio offset keeps neighbouring cases' streams apart.
        TestRng {
            state: 0xE220_A839_7B1D_CDAFu64.wrapping_add(
                u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[start, end)`.
    pub fn int_in(&mut self, start: i128, end: i128) -> i128 {
        debug_assert!(start < end);
        let span = (end - start) as u128;
        let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
        start + (wide % span) as i128
    }

    /// Uniform index in `[0, n)`.
    pub fn usize_below(&mut self, n: usize) -> usize {
        self.int_in(0, n as i128) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[0, 1]` (both endpoints reachable).
    pub fn closed_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_reproducible() {
        let a: Vec<u64> =
            (0..4).map(|_| TestRng::for_case(3).next_u64()).collect();
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        assert_ne!(
            TestRng::for_case(3).next_u64(),
            TestRng::for_case(4).next_u64()
        );
    }

    #[test]
    fn int_in_covers_bounds() {
        let mut rng = TestRng::for_case(0);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..200 {
            match rng.int_in(0, 3) {
                0 => seen_lo = true,
                2 => seen_hi = true,
                _ => {}
            }
        }
        assert!(seen_lo && seen_hi);
    }
}
