//! Regex-subset string generation.
//!
//! Real proptest treats string literals as full regexes. This stand-in
//! supports the subset the workspace's property tests use: a
//! concatenation of atoms, where an atom is a literal character or a
//! character class (`[a-z0-9-]` with ranges, escapes, and `&&[^...]`
//! subtraction), optionally followed by an `{n}` or `{m,n}` repetition.
//! Anything else panics with a description of the unsupported syntax.

use crate::test_runner::TestRng;

/// One parsed atom: the candidate characters and a repetition range.
#[derive(Debug, Clone)]
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// A parsed pattern ready to generate strings.
#[derive(Debug, Clone)]
pub struct StringPattern {
    atoms: Vec<Atom>,
}

impl StringPattern {
    /// Parses `pattern`, panicking on syntax outside the supported
    /// subset (this is test-only infrastructure; a loud failure beats
    /// silently generating the wrong language).
    pub fn parse(pattern: &str) -> Self {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let set = match c {
                '[' => parse_class(&mut chars, pattern),
                '\\' => vec![chars.next().unwrap_or_else(|| {
                    panic!("dangling escape in pattern {pattern:?}")
                })],
                '.' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$' => {
                    panic!("unsupported regex construct {c:?} in pattern {pattern:?}")
                }
                literal => vec![literal],
            };
            let (min, max) = parse_repetition(&mut chars, pattern);
            atoms.push(Atom {
                chars: set,
                min,
                max,
            });
        }
        StringPattern { atoms }
    }

    /// Generates one string matching the pattern.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let reps = atom.min + rng.usize_below(atom.max - atom.min + 1);
            for _ in 0..reps {
                out.push(atom.chars[rng.usize_below(atom.chars.len())]);
            }
        }
        out
    }
}

/// Parses the interior of `[...]`, supporting ranges, escapes, a
/// leading `^` (negation over printable ASCII), and `&&[^...]`
/// subtraction. The opening `[` has already been consumed.
fn parse_class(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> Vec<char> {
    let negated = chars.peek() == Some(&'^') && {
        chars.next();
        true
    };
    let mut set: Vec<char> = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars.next().unwrap_or_else(|| {
            panic!("unterminated class in pattern {pattern:?}")
        });
        match c {
            ']' => {
                if let Some(p) = pending {
                    set.push(p);
                }
                break;
            }
            '&' if chars.peek() == Some(&'&') => {
                chars.next();
                if let Some(p) = pending.take() {
                    set.push(p);
                }
                // Only the `&&[^...]` (subtraction) form is supported.
                if chars.next() != Some('[') || chars.next() != Some('^') {
                    panic!("only &&[^...] class intersection is supported in {pattern:?}");
                }
                let mut removed: Vec<char> = Vec::new();
                let mut inner_pending: Option<char> = None;
                loop {
                    let ic = chars.next().unwrap_or_else(|| {
                        panic!("unterminated class in {pattern:?}")
                    });
                    match ic {
                        ']' => {
                            if let Some(p) = inner_pending {
                                removed.push(p);
                            }
                            break;
                        }
                        '\\' => {
                            if let Some(p) = inner_pending.replace(
                                chars.next().unwrap_or_else(|| {
                                    panic!("dangling escape in {pattern:?}")
                                }),
                            ) {
                                removed.push(p);
                            }
                        }
                        '-' if inner_pending.is_some()
                            && chars.peek() != Some(&']') =>
                        {
                            let start =
                                inner_pending.take().expect("checked above");
                            let end = chars.next().expect("peeked above");
                            push_range(&mut removed, start, end, pattern);
                        }
                        other => {
                            if let Some(p) = inner_pending.replace(other) {
                                removed.push(p);
                            }
                        }
                    }
                }
                // The outer class must close right after the subtraction.
                if chars.next() != Some(']') {
                    panic!("expected ] after &&[^...] in {pattern:?}");
                }
                set.retain(|c| !removed.contains(c));
                break;
            }
            '\\' => {
                let escaped = chars.next().unwrap_or_else(|| {
                    panic!("dangling escape in {pattern:?}")
                });
                if let Some(p) = pending.replace(escaped) {
                    set.push(p);
                }
            }
            '-' if pending.is_some() && chars.peek() != Some(&']') => {
                let start = pending.take().expect("checked above");
                let end = chars.next().unwrap_or_else(|| {
                    panic!("unterminated range in {pattern:?}")
                });
                push_range(&mut set, start, end, pattern);
            }
            other => {
                if let Some(p) = pending.replace(other) {
                    set.push(p);
                }
            }
        }
    }
    if negated {
        // Complement within printable ASCII, like proptest restricted
        // to the alphabets these tests use.
        (' '..='~').filter(|c| !set.contains(c)).collect()
    } else {
        assert!(!set.is_empty(), "empty character class in {pattern:?}");
        set
    }
}

fn push_range(set: &mut Vec<char>, start: char, end: char, pattern: &str) {
    assert!(
        start <= end,
        "inverted range {start:?}-{end:?} in {pattern:?}"
    );
    set.extend(start..=end);
}

/// Parses an optional `{n}` / `{m,n}` suffix; defaults to exactly one.
fn parse_repetition(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut body = String::new();
    loop {
        match chars.next() {
            Some('}') => break,
            Some(c) => body.push(c),
            None => panic!("unterminated repetition in {pattern:?}"),
        }
    }
    let parse = |s: &str| {
        s.parse::<usize>().unwrap_or_else(|_| {
            panic!("bad repetition {body:?} in {pattern:?}")
        })
    };
    match body.split_once(',') {
        Some((m, n)) => (parse(m.trim()), parse(n.trim())),
        None => {
            let n = parse(body.trim());
            (n, n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, case: u32) -> String {
        StringPattern::parse(pattern).generate(&mut TestRng::for_case(case))
    }

    #[test]
    fn simple_class_with_reps() {
        for case in 0..50 {
            let s = gen("[a-z]{2,8}", case);
            assert!((2..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn concatenated_atoms() {
        for case in 0..50 {
            let s = gen("[A-Za-z][A-Za-z0-9]{0,6}", case);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().is_some_and(|c| c.is_ascii_alphabetic()));
        }
    }

    #[test]
    fn literal_dash_in_class() {
        let allowed =
            |c: char| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-';
        for case in 0..50 {
            let s = gen("[a-z0-9-]{1,12}", case);
            assert!(s.chars().all(allowed), "{s:?}");
        }
    }

    #[test]
    fn printable_ascii_with_subtraction() {
        for case in 0..100 {
            let s = gen("[ -~&&[^\"\\\\]]{0,12}", case);
            assert!(
                s.chars()
                    .all(|c| (' '..='~').contains(&c) && c != '"' && c != '\\'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn space_to_tilde_range() {
        for case in 0..50 {
            let s = gen("[ -~]{0,60}", case);
            assert!(s.len() <= 60);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex construct")]
    fn unsupported_syntax_is_loud() {
        StringPattern::parse("a+");
    }
}
