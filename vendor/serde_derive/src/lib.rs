//! Offline stand-in for `serde_derive`.
//!
//! The workspace builds without network access, so the real proc-macro
//! crate is replaced by this one. The repository uses
//! `#[derive(Serialize, Deserialize)]` purely as a forward-compatible
//! annotation (no serializer is ever instantiated), so both derives
//! expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
