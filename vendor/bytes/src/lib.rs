//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes` 1.x API the workspace uses:
//! [`Bytes`] / [`BytesMut`] buffers and the [`Buf`] / [`BufMut`]
//! cursor traits with little-endian accessors. Backed by `Vec<u8>`
//! (no refcounted slabs); semantics match the real crate for this
//! subset, including panics on under-full reads — callers are expected
//! to check [`Buf::remaining`] first, which is exactly what the
//! corruption-aware wire decoder does.

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer (here: a plain owned vector).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.data
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes {
            data: iter.into_iter().collect(),
        }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Read cursor over a byte source, mirroring `bytes::Buf`.
///
/// All `get_*` methods advance the cursor and panic if fewer than the
/// required bytes remain, matching the real crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Copies the next `len` bytes into an owned [`Bytes`] and advances.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut out = vec![0u8; len];
        self.copy_to_slice(&mut out);
        Bytes { data: out }
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write cursor over a growable sink, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_f64_le(1.5);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 42);
        assert_eq!(cursor.get_f64_le(), 1.5);
        assert!(!cursor.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics_like_real_bytes() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }

    #[test]
    fn copy_to_bytes_advances() {
        let mut cursor: &[u8] = b"abcdef";
        assert_eq!(&cursor.copy_to_bytes(2)[..], b"ab");
        assert_eq!(cursor.remaining(), 4);
    }
}
