//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`Throughput`], and the `criterion_group!` /
//! `criterion_main!` macros — with a simple wall-clock measurement
//! loop instead of criterion's statistical machinery. Each benchmark
//! is warmed up briefly, then timed over enough iterations to fill a
//! short measurement window; the mean per-iteration time is printed.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for bench bodies.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// A named benchmark parameterization.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Creates an id `function/parameter`.
    pub fn new(
        function: impl Into<String>,
        parameter: impl fmt::Display,
    ) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Throughput annotation (printed, not statistically analyzed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handed to bench closures.
#[derive(Debug, Default)]
pub struct Bencher {
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, storing the mean per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run a few iterations to populate caches.
        for _ in 0..3 {
            std_black_box(routine());
        }
        let window = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < window {
            std_black_box(routine());
            iters += 1;
        }
        self.last_mean = Some(start.elapsed() / iters.max(1) as u32);
    }
}

/// The top-level bench driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(name, None, bencher.last_mean);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        report(
            &format!("{}/{}", self.name, id),
            self.throughput,
            bencher.last_mean,
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn report(name: &str, throughput: Option<Throughput>, mean: Option<Duration>) {
    match mean {
        Some(mean) => {
            let rate = throughput.map(|t| match t {
                Throughput::Elements(n) => {
                    format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
                }
                Throughput::Bytes(n) => {
                    format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64())
                }
            });
            println!(
                "{name:<50} {mean:>12.2?}/iter{}",
                rate.unwrap_or_default()
            );
        }
        None => println!("{name:<50} (no measurement)"),
    }
}

/// Declares a group of benchmark functions, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
