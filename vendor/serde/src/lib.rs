//! Offline stand-in for `serde`.
//!
//! The repository derives `Serialize`/`Deserialize` on its data types
//! as a forward-compatible annotation but never drives an actual
//! serializer (there is no `serde_json` in the dependency graph). This
//! crate provides just enough surface for those derives and imports to
//! compile without network access: two marker traits and the no-op
//! derive macros from the sibling `serde_derive` stand-in.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
