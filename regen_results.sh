#!/bin/sh
# Regenerates every table/figure output under results/.
set -e
cd "$(dirname "$0")"
for b in fig1_event_distance fig3_k9_power_trace tab2_k9_events tab3_fleet \
         tab_comparison fig9_opengps fig11_breakdown fig12_wallabag \
         fig15_tinfoil fig16_code_reduction fig17_power_reduction overhead \
         ablations user_scaling; do
  echo "== $b"
  cargo run -q --release -p energydx-bench --bin "$b" > "results/$b.txt"
done
# Every checked-in budget file is regenerated from the same place the
# CI gate reads it, so a budget and its gate can never drift apart.
for b in hotpath ingest spill query cluster regress report; do
  echo "== BENCH_$b.json"
  cargo run -q --release -p energydx-bench --bin "$b" -- --smoke --write "BENCH_$b.json"
done
echo "all results regenerated"
