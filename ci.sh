#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test pass.
# Run from the repo root; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: release build + tests =="
cargo build --release
cargo test -q

echo "== full workspace tests (single-threaded pipeline) =="
# First pass pins the analysis pool to one worker: any test that only
# passes because of a particular thread count fails here.
ENERGYDX_JOBS=1 RAYON_NUM_THREADS=1 cargo test -q --workspace

echo "== full workspace tests (default parallelism) =="
cargo test -q --workspace

echo "== benchmark budget gates (smoke) =="
# Every BENCH_*.json at the repo root is a checked-in budget that
# regen_results.sh regenerates from the same list, so a budget and
# its gate can never drift apart. Per bin:
#   hotpath — per-instance allocation bytes of the interned Steps 2-5
#             path (e.g. a return to per-instance string cloning).
#   ingest  — batch identity of the resident daemon, then the
#             deterministic checkpoint bytes-per-trace budget.
#   spill   — resident and zero-budget spilling daemons serve
#             byte-identical reports; peak live-heap growth of the
#             spilling daemon stays under budget and under resident.
#   query   — generation-keyed query cache: warm repeats >= the
#             speedup budget, spilled warm queries keep up with
#             resident ones, coordinator NotModified replies stay
#             smaller on the wire than the full partial.
#   cluster — the merged 3-worker answer equals one daemon fed the
#             same payloads in shard order; replicated checkpoints
#             stay under the bytes-per-trace budget.
#   regress — the release gate: every injected v2 bug (loop,
#             no-sleep, configuration) is flagged regressed, zero
#             bug-free controls are, and a warm differential query
#             beats cold by the stored speedup budget.
#   report  — the operator report: daemon and batch surfaces render
#             identical artifacts, warm renders beat cold by the
#             stored speedup budget, and both artifacts stay under
#             their KiB weight caps.
for b in hotpath ingest spill query cluster regress report; do
  echo "-- $b (BENCH_$b.json)"
  cargo run -q --release -p energydx-bench --bin "$b" -- \
    --check "BENCH_$b.json" >/dev/null
done

echo "== metrics-overhead gate (instrumented hot path + ingest) =="
# The same two budgets re-checked with the obsv layer attached: the
# per-stage spans and the submit-latency histogram run on the measured
# path, so instrumentation that stops being ~free fails here.
cargo run -q --release -p energydx-bench --bin hotpath -- \
  --obsv --check BENCH_hotpath.json >/dev/null
cargo run -q --release -p energydx-bench --bin ingest -- \
  --obsv --check BENCH_ingest.json >/dev/null

echo "== fleetd soak (daemon vs batch CLI, crash + restart) =="
# A real `energydx serve` process driven through the retrying
# uploader: 200 uploads (~15% damaged), backpressure against a
# depth-4 queue, an explicit checkpoint, kill -9 mid-stream, restart
# from the checkpoint, and a byte-diff of the served report against
# `energydx analyze --bundles --json` over the same payloads.
cargo test -q --release -p energydx-cli --test soak -- --ignored

echo "== fleetd cluster soak (coordinator + 3 workers over TCP) =="
# A real coordinator process over three worker processes: 120 uploads
# (~15% damaged) routed by shard, a replication sweep, kill -9 one
# worker mid-stream, an explicit Degraded answer, a blank replacement
# seeded by checkpoint handoff, then a byte-diff of the merged cluster
# query against `energydx analyze --bundles --json` over the same
# payloads and a clean whole-cluster shutdown.
cargo test -q --release -p energydx-cli --test cluster_soak -- --ignored

echo "== differential harness (release, optimized float paths) =="
# The seq==parallel==sharded byte-identity must also hold under
# release codegen, where float expression fusion would surface.
cargo test -q --release --test diff_harness

echo "== shuffle guard =="
# `cargo test -- --shuffle` is nightly-only; where unsupported we
# fall back on the harness's own built-in shuffles (diff_harness
# permutes trace order and partial merge order with seeded RNG).
if cargo test -q --test diff_harness -- --shuffle --test-threads 1 >/dev/null 2>&1; then
  echo "(nightly --shuffle supported and green)"
else
  echo "(stable toolchain: --shuffle unsupported; relying on the"
  echo " harness's internal seeded permutation and merge-order tests)"
fi

echo "CI green."
