//! Deterministic fleet fixtures shared by the differential harness and
//! the golden-report regression tests.
//!
//! Every fixture is a pure function of constants (hand-built traces or
//! seeded scenario simulations), so two processes — or two checkouts —
//! build bit-identical [`DiagnosisInput`]s. That is what lets the
//! golden files under `tests/golden/` pin entire canonical reports.

use energydx::DiagnosisInput;
use energydx_trace::event::EventInstance;
use energydx_trace::join::PoweredInstance;
use energydx_workload::scenario::Variant;
use energydx_workload::Scenario;

fn instance(event: &str, start: u64, mw: f64) -> PoweredInstance {
    PoweredInstance {
        instance: EventInstance::new(event, start, start + 10),
        power_mw: mw,
    }
}

/// One normal trace of the Fig.-6 running scenario: mostly cheap
/// "circle" events with one expensive "square" (the paper's
/// high-power-by-functionality event).
fn normal_trace(seed: u64) -> Vec<PoweredInstance> {
    (0..24)
        .map(|i| {
            if i == 11 {
                instance("square", i * 1000, 400.0 + ((i + seed) % 3) as f64)
            } else {
                instance("circle", i * 1000, 100.0 + ((i + seed) % 3) as f64)
            }
        })
        .collect()
}

/// The paper's Fig.-6 running scenario: four traces, one hit by an ABD
/// after a "triangle" trigger event (everything after it runs at 5×
/// power).
pub fn fig6_fleet() -> DiagnosisInput {
    let mut faulty = normal_trace(0);
    faulty[12] = instance("triangle", 12_000, 120.0);
    for p in faulty.iter_mut().skip(13) {
        p.power_mw *= 5.0;
    }
    DiagnosisInput::new(vec![
        normal_trace(0),
        faulty,
        normal_trace(1),
        normal_trace(0),
    ])
}

/// The seeded K-9 Mail case-study fleet (13 simulated volunteers,
/// faulty build) — the paper's Fig. 7 / Table II workload.
pub fn k9_fleet() -> DiagnosisInput {
    Scenario::k9mail()
        .collect(Variant::Faulty)
        .expect("scenario scripts are legal")
        .diagnosis_input()
}

/// A deliberately damaged fleet: the Fig.-6 traces plus a NaN-corrupted
/// trace, an infinite-power trace, a too-short trace, and an empty one
/// — every sanitation path of the pipeline fires.
pub fn chaos_fleet() -> DiagnosisInput {
    let mut traces = fig6_fleet().traces().to_vec();
    traces.push(vec![
        instance("circle", 0, f64::NAN),
        instance("circle", 1000, 100.0),
    ]);
    traces.push(
        (0..8)
            .map(|i| instance("square", i * 100, f64::INFINITY))
            .collect(),
    );
    traces.push(vec![instance("circle", 0, 99.0)]);
    traces.push(Vec::new());
    DiagnosisInput::new(traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_reproducible() {
        assert_eq!(fig6_fleet(), fig6_fleet());
        assert_eq!(k9_fleet(), k9_fleet());
        // chaos_fleet contains NaN power values, so PartialEq would be
        // false even for identical builds; compare the rendering.
        assert_eq!(
            format!("{:?}", chaos_fleet()),
            format!("{:?}", chaos_fleet())
        );
    }

    #[test]
    fn fixtures_have_the_expected_shapes() {
        assert_eq!(fig6_fleet().len(), 4);
        assert_eq!(k9_fleet().len(), 13);
        assert_eq!(chaos_fleet().len(), 8);
    }
}
