//! Umbrella crate for the EnergyDx reproduction workspace.
//!
//! Re-exports the member crates so that root-level examples and
//! integration tests can use a single dependency. See the individual
//! crates for documentation:
//!
//! - [`energydx`] — the 5-step manifestation analysis (the paper's core).
//! - [`energydx_stats`] — percentile/quartile/outlier statistics.
//! - [`energydx_dexir`] — Dalvik-like IR and the APK instrumenter.
//! - [`energydx_droidsim`] — simulated Android runtime.
//! - [`energydx_powermodel`] — component power model and sampler.
//! - [`energydx_trace`] — event/utilization/power trace formats.
//! - [`energydx_workload`] — user simulation, fault injection, app fleet.
//! - [`energydx_baselines`] — CheckAll, No-sleep Detection, eDelta.
//! - [`energydx_fleetd`] — incremental fleet-analysis daemon.
//! - [`energydx_obsv`] — metrics registry and Prometheus exposition.
//! - [`energydx_regress`] — differential (release-to-release) diagnosis.
//! - [`energydx_report`] — deterministic operator report (HTML + JSON).
//! - [`energydx_segment`] — on-disk columnar segment format.

pub mod fixtures;

pub use energydx;
pub use energydx_baselines;
pub use energydx_dexir;
pub use energydx_droidsim;
pub use energydx_fleetd;
pub use energydx_obsv;
pub use energydx_powermodel;
pub use energydx_regress;
pub use energydx_report;
pub use energydx_segment;
pub use energydx_stats;
pub use energydx_trace;
pub use energydx_workload;
