//! The paper's running example (§III-B): diagnosing the K-9 Mail
//! configuration ABD end to end, printing the Fig.-2-style event log
//! around the manifestation point and the Table-II event ranking.
//!
//! ```sh
//! cargo run --release --example k9mail
//! ```

use energydx_suite::energydx::{AnalysisConfig, EnergyDx};
use energydx_suite::energydx_dexir::MethodKey;
use energydx_suite::energydx_workload::scenario::Variant;
use energydx_suite::energydx_workload::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::k9mail();
    println!(
        "K-9 Mail: {} lines of code, {} simulated volunteers, {:.0}% misconfigured",
        scenario.healthy.total_source_lines(),
        scenario.n_users,
        scenario.impacted_fraction * 100.0
    );

    let collected = scenario.collect(Variant::Faulty)?;
    let input = collected.diagnosis_input();
    let config = AnalysisConfig::default()
        .with_developer_fraction(scenario.developer_fraction());
    let report = EnergyDx::new(config).diagnose(&input);

    // Fig. 2: the events around the first manifestation point.
    let impacted = report.impacted_traces();
    let trace = &report.traces[impacted[0]];
    let point = &trace.manifestation_points[0];
    println!("\nevents around the manifestation point (Fig. 2):");
    let lo = point.instance_index.saturating_sub(4);
    let hi = (point.instance_index + 1).min(trace.events.len() - 1);
    for (offset, event) in trace.events[lo..=hi].iter().enumerate() {
        let marker = if lo + offset == point.instance_index {
            "  <- manifestation point"
        } else {
            ""
        };
        println!("  {}. {event}{marker}", offset + 1);
    }

    // Table II: top events by closeness to the reported 15 %.
    println!("\ntop events reported by EnergyDx (Table II):");
    for (i, event) in report.reported_events().iter().enumerate() {
        let short = MethodKey::parse(&event.event)
            .map(|k| k.short())
            .unwrap_or_else(|| event.event.clone());
        println!(
            "  {}, {:<40} {:>5.1}%",
            i + 1,
            short,
            event.impacted_fraction * 100.0
        );
    }

    let code_index = scenario.code_index();
    println!(
        "\nsearch space reduced from {} to {} lines",
        code_index.total_lines,
        code_index.diagnosis_lines(report.reported_events())
    );
    println!(
        "the injected root cause is {}",
        MethodKey::parse(&scenario.root_cause_event())
            .map(|k| k.short())
            .unwrap_or_default()
    );
    Ok(())
}
