//! The OpenGPS case study (§IV-C): a no-sleep GPS leak that manifests
//! when the app goes to the background, with the Fig.-11-style power
//! breakdown showing the GPS burning power behind a dark screen.
//!
//! ```sh
//! cargo run --release --example opengps
//! ```

use energydx_suite::energydx::{AnalysisConfig, EnergyDx};
use energydx_suite::energydx_baselines::detect_no_sleep;
use energydx_suite::energydx_dexir::MethodKey;
use energydx_suite::energydx_trace::util::Component;
use energydx_suite::energydx_workload::scenario::Variant;
use energydx_suite::energydx_workload::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::opengps();

    // The static analyzer can already see this leak in the bytecode...
    let bugs = detect_no_sleep(&scenario.faulty_module())?;
    println!("static no-sleep analysis finds {} leak(s):", bugs.len());
    for bug in &bugs {
        println!("  {} leaks {}", bug.acquiring_method, bug.resource);
    }

    // ...and the dynamic EnergyDx diagnosis converges on the same code.
    let collected = scenario.collect(Variant::Faulty)?;
    let input = collected.diagnosis_input();
    let config = AnalysisConfig::default()
        .with_developer_fraction(scenario.developer_fraction());
    let report = EnergyDx::new(config).diagnose(&input);

    println!("\nEnergyDx reports (Table IV):");
    for (i, event) in report.reported_events().iter().enumerate() {
        let short = MethodKey::parse(&event.event)
            .map(|k| k.short())
            .unwrap_or_else(|| event.event.clone());
        println!(
            "  {}, [{short}] {:>5.1}%",
            i + 1,
            event.impacted_fraction * 100.0
        );
    }

    // Fig. 11: the power breakdown of an impacted session's tail.
    let impacted = report.impacted_traces()[0];
    let (_, power) = &collected.pairs[impacted];
    let end = power.samples().last().map(|s| s.timestamp_ms).unwrap_or(0);
    let breakdown = power.breakdown_between(end.saturating_sub(15_000), end);
    println!("\npower breakdown while backgrounded (Fig. 11):");
    for (component, mw) in breakdown.ranked() {
        println!("  {component:<9} {mw:>7.1} mW");
    }
    assert_eq!(
        breakdown.ranked()[0].0,
        Component::Gps,
        "the GPS keeps consuming power in the background"
    );
    assert_eq!(breakdown.get(Component::Display), 0.0, "display is off");
    println!(
        "\n=> GPS still on with the display off: the paper's Fig. 11 shape"
    );
    Ok(())
}
