//! Quickstart: the whole EnergyDx pipeline on a tiny hand-built app.
//!
//! Builds a two-activity app, injects a GPS leak, instruments it, runs
//! a handful of simulated user sessions, and diagnoses the traces.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use energydx_suite::energydx::{AnalysisConfig, DiagnosisInput, EnergyDx};
use energydx_suite::energydx_dexir::instr::{Instruction, ResourceKind};
use energydx_suite::energydx_dexir::instrument::{EventPool, Instrumenter};
use energydx_suite::energydx_dexir::module::{
    Class, ComponentKind, Method, Module,
};
use energydx_suite::energydx_droidsim::Device;
use energydx_suite::energydx_powermodel::{
    DeviceProfile, PowerModel, UtilizationSampler,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An app with two activities. The Tracker activity acquires the
    //    GPS in onResume and forgets to release it — a no-sleep ABD.
    let mut module = Module::new("com.example.quickstart");
    for (name, leaky) in [("Main", false), ("Tracker", true)] {
        let mut class = Class::new(
            format!("Lcom/example/quickstart/{name};"),
            ComponentKind::Activity,
        );
        for cb in [
            "onCreate",
            "onStart",
            "onResume",
            "onPause",
            "onStop",
            "onDestroy",
        ] {
            let mut m = Method::new(cb, "()V");
            m.source_lines = 25;
            m.body = vec![Instruction::ReturnVoid];
            if leaky && cb == "onResume" {
                m.body.insert(
                    0,
                    Instruction::AcquireResource {
                        kind: ResourceKind::Gps,
                    },
                );
            }
            class.methods.push(m);
        }
        module.add_class(class)?;
    }

    // 2. Instrument it, exactly as `energydx instrument` would.
    let instrumented = Instrumenter::new(EventPool::standard())
        .instrument(&module)?
        .module;

    // 3. Simulate a few users. User 3 opens the Tracker (triggering the
    //    leak); the others only use Main.
    let sampler = UtilizationSampler::default();
    let model = PowerModel::new(DeviceProfile::nexus6(), 7);
    let mut pairs = Vec::new();
    for user in 0..4u64 {
        let mut device = Device::new(instrumented.clone());
        device.launch_activity("Lcom/example/quickstart/Main;")?;
        device.idle_ms(4_000);
        if user == 3 {
            device.launch_activity("Lcom/example/quickstart/Tracker;")?;
            device.idle_ms(2_000);
        }
        device.press_home()?;
        device.idle_ms(15_000);
        let session = device.finish_session();
        let utilization =
            sampler.sample(&session.timeline, session.duration_ms);
        pairs.push((session.events, model.estimate_trace(&utilization)));
    }

    // 4. Diagnose: Steps 1-5 of the paper.
    let input = DiagnosisInput::from_traces(&pairs);
    let config = AnalysisConfig::default().with_developer_fraction(0.25);
    let report = EnergyDx::new(config).diagnose(&input);

    println!("impacted traces: {:?}", report.impacted_traces());
    println!("events around the manifestation point:");
    for event in report.reported_events() {
        println!(
            "  {:<55} {:>5.1}%",
            event.event,
            event.impacted_fraction * 100.0
        );
    }
    assert_eq!(report.impacted_traces(), vec![3], "only user 3 leaks");
    println!(
        "=> the Tracker activity's events lead straight to the leaked GPS"
    );
    Ok(())
}
