//! A miniature of the §IV evaluation: run a slice of the Table-III
//! fleet end to end and print per-app diagnosis quality.
//!
//! The full 40-app sweep lives in the bench harness
//! (`cargo run -p energydx-bench --bin tab3_fleet`); this example keeps
//! a debug-build-friendly subset, one app per root-cause class.
//!
//! ```sh
//! cargo run --release --example fleet_study
//! ```

use energydx_suite::energydx::distance::event_distance;
use energydx_suite::energydx::{AnalysisConfig, EnergyDx};
use energydx_suite::energydx_workload::fleet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Facebook (no-sleep), Boston Bus Map (loop), NextCloud (configuration).
    let picks = [1u32, 2, 32];
    println!(
        "{:<4}{:<18}{:<15}{:>10}{:>10}{:>10}",
        "ID", "App", "Cause", "Reduction", "Lines", "Distance"
    );
    for app in fleet().iter().filter(|a| picks.contains(&a.id)) {
        let scenario = app.scenario();
        let collected = scenario.collect(
            energydx_suite::energydx_workload::scenario::Variant::Faulty,
        )?;
        let input = collected.diagnosis_input();
        let config = AnalysisConfig::default()
            .with_developer_fraction(scenario.developer_fraction());
        let report = EnergyDx::new(config).diagnose(&input);
        let code_index = scenario.code_index();
        let reduction = code_index.code_reduction(report.reported_events());
        let lines = code_index.diagnosis_lines(report.reported_events());
        let distance = event_distance(&report, &scenario.root_cause_event());
        println!(
            "{:<4}{:<18}{:<15}{:>9.1}%{:>10}{:>10}",
            app.id,
            app.name,
            app.cause.to_string(),
            reduction * 100.0,
            lines,
            distance
                .map(|d| d.to_string())
                .unwrap_or_else(|| "n/a".into())
        );
        assert!(
            report.manifestation_point_count() > 0,
            "{} ABD must be detected",
            app.name
        );
    }
    println!("\n(the full Table III sweep: cargo run --release -p energydx-bench --bin tab3_fleet)");
    Ok(())
}
