//! The §II-C instrumenter on a hand-written smali-like module: parse,
//! instrument, and print the rewritten assembly, showing the injected
//! `log-enter`/`log-exit` ops and the overhead accounting.
//!
//! ```sh
//! cargo run --example instrumenter
//! ```

use energydx_suite::energydx_dexir::instrument::{EventPool, Instrumenter};
use energydx_suite::energydx_dexir::text::{assemble_module, parse_module};

const APP: &str = r#"
.package com.fsck.k9
.class Lcom/fsck/k9/activity/MessageList;
.super Landroid/app/Activity;
.activity
.method onResume()V
  .registers 4
  .lines 23
  const v0, 1
  invoke-virtual Lcom/fsck/k9/controller/MessagingController;->listLocalMessages()V, v0
  invoke-virtual Landroid/view/View;->invalidate()V, v0
  return-void
.end method
.method onItemClick()V
  .registers 4
  .lines 31
  invoke-virtual Landroid/database/sqlite/SQLiteDatabase;->query()V, v0
  return-void
.end method
.method formatSubject()V
  .registers 2
  .lines 12
  return-void
.end method
.end class
.class Lcom/fsck/k9/service/MailService;
.super Landroid/app/Service;
.service
.method onCreate()V
  .registers 3
  .lines 15
  acquire wakelock
  invoke-virtual Ljava/net/Socket;->connect()V, v1
  release wakelock
  return-void
.end method
.end class
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = parse_module(APP)?;
    println!(
        "input: {} classes, {} lines of app code",
        module.classes.len(),
        module.total_source_lines()
    );

    let report =
        Instrumenter::new(EventPool::standard()).instrument(&module)?;
    println!(
        "instrumented {} pool callbacks, +{} logging instructions",
        report.instrumented_methods, report.added_instructions
    );
    println!(
        "modeled latency overhead: {:.1}% (paper reports 8.3% on real apps)",
        report.latency_overhead() * 100.0
    );
    println!("\ninstrumented events:");
    for event in &report.events {
        println!("  {event}");
    }
    // `formatSubject` is not an interaction/lifecycle callback and
    // must be untouched.
    assert!(!report.events.iter().any(|e| e.name == "formatSubject"));

    println!("\nrewritten assembly:\n{}", assemble_module(&report.module));
    Ok(())
}
