//! Table III — the 40-app fleet with per-app code reduction.

use crate::run::{run_fleet, ScenarioRun};
use energydx_workload::FleetApp;

/// One output row of Table III.
#[derive(Debug, Clone)]
pub struct Tab3Row {
    /// App id.
    pub id: u32,
    /// App name.
    pub name: String,
    /// Downloads tier.
    pub downloads: String,
    /// Root-cause class.
    pub cause: String,
    /// EnergyDx code reduction for this app.
    pub code_reduction: f64,
    /// Total app lines (`N_All`).
    pub total_lines: u64,
    /// Lines the developer reads (`N_Diagnosis`).
    pub diagnosis_lines: u64,
}

/// The assembled table plus the §IV-B average.
#[derive(Debug, Clone)]
pub struct Tab3 {
    /// Rows in Table-III order.
    pub rows: Vec<Tab3Row>,
}

impl Tab3 {
    /// Mean code reduction over the fleet (paper: 93 %).
    pub fn mean_reduction(&self) -> f64 {
        self.rows.iter().map(|r| r.code_reduction).sum::<f64>()
            / self.rows.len() as f64
    }

    /// Mean lines-to-read (paper: 168 with EnergyDx).
    pub fn mean_diagnosis_lines(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.diagnosis_lines as f64)
            .sum::<f64>()
            / self.rows.len() as f64
    }
}

/// Runs the full fleet experiment.
pub fn measure() -> Tab3 {
    measure_from(&run_fleet())
}

/// Builds the table from pre-computed runs.
pub fn measure_from(runs: &[(FleetApp, ScenarioRun)]) -> Tab3 {
    let rows = runs
        .iter()
        .map(|(app, run)| Tab3Row {
            id: app.id,
            name: app.name.to_string(),
            downloads: app.downloads.to_string(),
            cause: app.cause.to_string(),
            code_reduction: run.code_reduction(),
            total_lines: run.code_index.total_lines,
            diagnosis_lines: run.diagnosis_lines(),
        })
        .collect();
    Tab3 { rows }
}
