//! The baseline comparisons: §IV-B (No-sleep Detection, eDelta) and
//! Fig. 16 (CheckAll).
//!
//! Scoring follows the paper. No-sleep Detection and eDelta are
//! *detection* tools: when they detect the right root cause their code
//! reduction counts as 100 %, otherwise 0 % (§IV-B: "if they cannot
//! detect the right root cause ... their code reduction would be 0%").
//! CheckAll, like EnergyDx, is a *diagnosis* scheme scored by the
//! lines behind the events it reports.

use crate::run::{run_fleet, ScenarioRun};
use energydx_baselines::{detect_no_sleep, CheckAll, EDelta};
use energydx_workload::{FaultClass, FleetApp};

/// Per-app comparison row.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// App id.
    pub id: u32,
    /// App name.
    pub name: String,
    /// Root cause.
    pub cause: FaultClass,
    /// EnergyDx code reduction.
    pub energydx: f64,
    /// CheckAll code reduction (Fig. 16).
    pub checkall: f64,
    /// No-sleep Detection code reduction (100 % or 0 %).
    pub nosleep: f64,
    /// eDelta code reduction (100 % or 0 %).
    pub edelta: f64,
    /// Lines to read with EnergyDx / CheckAll (Fig. 16's 168 vs 1205).
    pub energydx_lines: u64,
    /// Lines to read with CheckAll.
    pub checkall_lines: u64,
}

/// The assembled comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Rows in Table-III order.
    pub rows: Vec<ComparisonRow>,
}

impl Comparison {
    fn mean(&self, f: impl Fn(&ComparisonRow) -> f64) -> f64 {
        self.rows.iter().map(f).sum::<f64>() / self.rows.len() as f64
    }

    /// Mean EnergyDx reduction (paper: 93 %).
    pub fn mean_energydx(&self) -> f64 {
        self.mean(|r| r.energydx)
    }

    /// Mean CheckAll reduction (paper: 67 %).
    pub fn mean_checkall(&self) -> f64 {
        self.mean(|r| r.checkall)
    }

    /// Mean No-sleep Detection reduction (paper: 52.5 %).
    pub fn mean_nosleep(&self) -> f64 {
        self.mean(|r| r.nosleep)
    }

    /// Mean eDelta reduction (paper: 65 %).
    pub fn mean_edelta(&self) -> f64 {
        self.mean(|r| r.edelta)
    }

    /// Apps detected by eDelta (paper: 26).
    pub fn edelta_detected(&self) -> usize {
        self.rows.iter().filter(|r| r.edelta > 0.0).count()
    }

    /// Apps detected by No-sleep Detection (paper: 21).
    pub fn nosleep_detected(&self) -> usize {
        self.rows.iter().filter(|r| r.nosleep > 0.0).count()
    }
}

/// Scores one app against all baselines.
pub fn score_app(app: &FleetApp, run: &ScenarioRun) -> ComparisonRow {
    let scenario = app.scenario();

    // No-sleep Detection: static analysis on the faulty build.
    let nosleep_findings = detect_no_sleep(&scenario.faulty_module())
        .expect("fleet modules are valid");
    let nosleep_correct =
        app.cause == FaultClass::NoSleep && !nosleep_findings.is_empty();
    let nosleep = if nosleep_correct { 1.0 } else { 0.0 };

    // eDelta: comparative deviation detection — the developer's
    // reference runs (fixed build, same scripts) against the field
    // traces EnergyDx used.
    let reference = scenario
        .collect(energydx_workload::scenario::Variant::Fixed)
        .expect("fleet scripts are legal")
        .diagnosis_input();
    let edelta = if EDelta::new().detects(&reference, &run.input) {
        1.0
    } else {
        0.0
    };

    // CheckAll: diagnosis lines behind every reported event.
    let checkall_events = CheckAll::new().report(&run.input);
    let checkall_lines = run.code_index.diagnosis_lines(&checkall_events);
    let checkall = run.code_index.code_reduction(&checkall_events);

    ComparisonRow {
        id: app.id,
        name: app.name.to_string(),
        cause: app.cause,
        energydx: run.code_reduction(),
        checkall,
        nosleep,
        edelta,
        energydx_lines: run.diagnosis_lines(),
        checkall_lines,
    }
}

/// Runs the full comparison over the fleet.
pub fn measure() -> Comparison {
    measure_from(&run_fleet())
}

/// Builds the comparison from pre-computed runs.
pub fn measure_from(runs: &[(FleetApp, ScenarioRun)]) -> Comparison {
    Comparison {
        rows: runs.iter().map(|(app, run)| score_app(app, run)).collect(),
    }
}
