//! Fig. 17 — average app power before and after fixing the ABD.
//!
//! Each app runs the same user scripts against the faulty and the
//! fixed build; the paper reports a 27.2 % average power reduction,
//! varying per app with the hardware component the fault overuses.

use energydx_workload::scenario::Variant;
use energydx_workload::{fleet, FleetApp};

/// One app's before/after powers.
#[derive(Debug, Clone)]
pub struct Fig17Row {
    /// App id.
    pub id: u32,
    /// App name.
    pub name: String,
    /// Mean session power of the faulty build (mW).
    pub before_mw: f64,
    /// Mean session power of the fixed build (mW).
    pub after_mw: f64,
}

impl Fig17Row {
    /// The per-app power reduction fraction.
    pub fn reduction(&self) -> f64 {
        if self.before_mw <= 0.0 {
            0.0
        } else {
            (self.before_mw - self.after_mw) / self.before_mw
        }
    }
}

/// The assembled figure.
#[derive(Debug, Clone)]
pub struct Fig17 {
    /// Rows in Table-III order.
    pub rows: Vec<Fig17Row>,
}

impl Fig17 {
    /// Mean power reduction across apps (paper: 27.2 %).
    pub fn mean_reduction(&self) -> f64 {
        self.rows.iter().map(Fig17Row::reduction).sum::<f64>()
            / self.rows.len() as f64
    }
}

/// Measures one app.
pub fn measure_app(app: &FleetApp) -> Fig17Row {
    let scenario = app.scenario();
    let before = scenario
        .collect(Variant::Faulty)
        .expect("scenario scripts are legal");
    let after = scenario
        .collect(Variant::Fixed)
        .expect("scenario scripts are legal");
    Fig17Row {
        id: app.id,
        name: app.name.to_string(),
        before_mw: before.mean_power_mw(),
        after_mw: after.mean_power_mw(),
    }
}

/// Runs the whole fleet (each app twice).
pub fn measure() -> Fig17 {
    Fig17 {
        rows: fleet().iter().map(measure_app).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixing_an_app_reduces_its_power() {
        // Spot-check one strong app per fault class; the full fleet is
        // exercised by the figure binary.
        let fleet = fleet();
        for id in [1usize, 33, 32] {
            let row = measure_app(&fleet[id - 1]);
            assert!(
                row.reduction() > 0.03,
                "{}: before {:.0} after {:.0}",
                row.name,
                row.before_mw,
                row.after_mw
            );
        }
    }
}
