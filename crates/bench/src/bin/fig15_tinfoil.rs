//! Regenerates Fig. 15 and Table VI: the Tinfoil case study (the news
//! feed keeps syncing after the app is backgrounded).

use energydx_bench::casestudy;
use energydx_bench::render::{pct, series, table};
use energydx_workload::Scenario;

fn main() {
    let cs = casestudy::measure(Scenario::tinfoil());
    let trace = &cs.run.report.traces[cs.plotted_trace];

    println!("Fig. 15 — manifestation point identification (Tinfoil)");
    println!("{}", series("normalized", &trace.normalized_power));
    println!("{}", series("amplitude", &trace.amplitudes));
    if let Some(fence) = trace.upper_fence {
        println!("  fence (Q3 + 3*IQR): {fence:.2}");
    }
    for p in &trace.manifestation_points {
        println!(
            "  manifestation point at instance {} ({}), amplitude {:.2}",
            p.instance_index, p.event, p.amplitude
        );
    }
    println!();

    println!("Table VI — events reported to developers (Tinfoil)");
    let rows: Vec<Vec<String>> = cs
        .event_table()
        .into_iter()
        .enumerate()
        .map(|(i, (event, fraction))| {
            vec![(i + 1).to_string(), event, pct(fraction)]
        })
        .collect();
    println!("{}", table(&["Order", "Event", "%"], &rows));
    println!(
        "code search space: {} of {} lines (paper: 236 of 4226)",
        cs.run.diagnosis_lines(),
        cs.run.code_index.total_lines
    );
}
