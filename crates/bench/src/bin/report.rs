//! Operator-report benchmark: render latency and artifact weight.
//!
//! Ingests a deterministic versioned corpus once and measures what an
//! operator's crontab actually pays: the **cold** render (every
//! epoch's and every release's diagnosis folds fresh, then both
//! artifacts render) and the **warm** repeat (all diagnoses are cache
//! hits — the figure is the renderer itself). Both artifacts' byte
//! sizes are recorded and budgeted, so an accidentally-bloated page
//! (a quadratic sparkline, an unescaped blob dumped twice) fails CI
//! even on a fast machine. The byte-identity story is asserted, not
//! timed: the render is repeated (identical bytes) and replayed
//! through the batch surface's [`BatchAssembler`] (identical bytes
//! again).
//!
//! ```text
//! report [--smoke] [--write <path>] [--check <path>]
//! ```
//!
//! `--write` stores the report as JSON (see `BENCH_report.json` at the
//! repo root); `--check` re-runs the smoke measurement and fails
//! (exit 1) when the warm render is less than the stored
//! `budget_min_warm_speedup` times faster than cold, or when either
//! artifact outgrows its stored KiB budget. The timing gate compares
//! a render-only path against full refolds of the whole fleet, so the
//! margin absorbs scheduler noise, not regressions; the size gates
//! are exact byte counts.

use energydx_fleetd::convert::bundle_to_trace;
use energydx_fleetd::fixture;
use energydx_fleetd::report::{fleet_report, RenderedReport};
use energydx_fleetd::state::{FleetConfig, FleetState};
use energydx_obsv::MetricsRegistry;
use energydx_report::{
    build_model, render_html, render_json, BatchAssembler, DeploymentPanel,
    DEFAULT_TOP_APPS,
};
use energydx_trace::repair::RepairPolicy;
use energydx_trace::store::{prepare_wire, PreparedUpload, RejectReason};
use std::collections::BTreeSet;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// The two releases the corpus alternates, so the rendered page
/// carries regression verdicts like a real release week would.
const RELEASES: [&str; 2] = ["1.9.0", "2.0.0"];

/// The damaged-corpus recipe shared with the ingest/query benchmarks,
/// version-stamped: every 23rd payload cut below the wire header,
/// every 9th reduced to a duplicate session (quarantined as such), so
/// the ops panel's taxonomy has something to say.
fn corpus(users: usize, sessions: u64) -> Vec<Vec<u8>> {
    let mut payloads = Vec::with_capacity(users * sessions as usize);
    for user in 0..users {
        for session in 0..sessions {
            let version = RELEASES[user % RELEASES.len()];
            let i = payloads.len();
            let mut payload = fixture::payload_versioned(
                &format!("u{user:04}"),
                if i % 9 == 4 { 0 } else { session },
                version,
            );
            if i % 23 == 7 {
                payload.truncate(6);
            }
            payloads.push(payload);
        }
    }
    payloads
}

/// Warm repeats per measurement: the minimum over this many runs is
/// the figure, so one preempted run cannot inflate it.
const WARM_REPEATS: usize = 32;

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let result = f();
    (result, t0.elapsed().as_secs_f64())
}

struct Report {
    mode: &'static str,
    uploads: usize,
    accepted: usize,
    cold_render_secs: f64,
    warm_render_secs: f64,
    html_bytes: usize,
    json_bytes: usize,
    budget_min_warm_speedup: u64,
    budget_max_html_kib: u64,
    budget_max_json_kib: u64,
}

impl Report {
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"mode\": \"{}\",\n  \"uploads\": {},\n  \
             \"accepted\": {},\n  \"cold_render_secs\": {:.6},\n  \
             \"warm_render_secs\": {:.6},\n  \"html_bytes\": {},\n  \
             \"json_bytes\": {},\n  \"budget_min_warm_speedup\": {},\n  \
             \"budget_max_html_kib\": {},\n  \
             \"budget_max_json_kib\": {}\n}}\n",
            self.mode,
            self.uploads,
            self.accepted,
            self.cold_render_secs,
            self.warm_render_secs,
            self.html_bytes,
            self.json_bytes,
            self.budget_min_warm_speedup,
            self.budget_max_html_kib,
            self.budget_max_json_kib,
        )
    }
}

/// The batch surface over the same corpus: the exact assembler
/// `energydx report --bundles` drives, for the byte-identity
/// assertion.
fn batch_render(payloads: &[Vec<u8>]) -> RenderedReport {
    let policy = RepairPolicy::default();
    let mut assembler = BatchAssembler::new(energydx::EnergyDx::default());
    let mut seen: BTreeSet<(String, u64)> = BTreeSet::new();
    for payload in payloads {
        match prepare_wire(payload, &policy) {
            PreparedUpload::Ready {
                bundle,
                repairs,
                salvage,
            } => {
                if !seen.insert((bundle.user.clone(), bundle.session)) {
                    assembler.reject(&RejectReason::Duplicate.to_string());
                    continue;
                }
                let recovered = !repairs.is_empty() || salvage.is_some();
                let version = bundle.app_version.clone();
                assembler.accept(&version, bundle_to_trace(&bundle), recovered);
            }
            PreparedUpload::Rejected(entry) => {
                assembler.reject(&entry.reason.to_string());
            }
        }
    }
    let input = assembler.finish("bench").expect("batch folds finish");
    let model = build_model(
        &[input],
        DeploymentPanel::pinned(),
        Vec::new(),
        DEFAULT_TOP_APPS,
    );
    RenderedReport {
        html: render_html(&model),
        json: render_json(&model),
    }
}

fn run(smoke: bool) -> Report {
    let (users, sessions) = if smoke { (48, 2) } else { (400, 5) };
    let payloads = corpus(users, sessions);

    // A deterministic registry pins the deployment panel — the same
    // switch a deployed daemon flips with ENERGYDX_DETERMINISTIC_TIME
    // — so the renders below are comparable byte for byte.
    let mut state = FleetState::with_registry(
        FleetConfig {
            jobs: 1,
            ..FleetConfig::default()
        },
        Arc::new(MetricsRegistry::deterministic()),
    );
    for payload in &payloads {
        black_box(state.submit("bench", payload));
    }
    let accepted = state.accepted_total();

    // Cold: every diagnosis folds fresh, then both artifacts render.
    let (cold, cold_render_secs) = timed(|| fleet_report(&state, 0, None));
    let cold = cold.expect("the bench fleet renders");

    // Warm: diagnoses are cache hits; the minimum isolates the
    // renderer. Every repeat must serve the cold bytes exactly.
    let warm_render_secs = (0..WARM_REPEATS)
        .map(|_| {
            let (warm, secs) = timed(|| fleet_report(&state, 0, None));
            let warm = warm.expect("the bench fleet renders");
            assert_eq!(warm.html, cold.html, "a repeat render drifted");
            assert_eq!(warm.json, cold.json, "a repeat render drifted");
            secs
        })
        .fold(f64::INFINITY, f64::min);

    // The batch surface must serve the same bytes for the same corpus.
    let batch = batch_render(&payloads);
    assert_eq!(
        batch.html, cold.html,
        "the batch surface's HTML diverged from the daemon's"
    );
    assert_eq!(
        batch.json, cold.json,
        "the batch surface's report.json diverged from the daemon's"
    );

    Report {
        mode: if smoke { "smoke" } else { "full" },
        uploads: payloads.len(),
        accepted,
        cold_render_secs,
        warm_render_secs,
        html_bytes: cold.html.len(),
        json_bytes: cold.json.len(),
        // Cold refolds the whole fleet per release and per epoch; warm
        // is string assembly over cached reports. The real gap is far
        // wider than 2x.
        budget_min_warm_speedup: 2,
        // The smoke corpus renders a few KiB per artifact; these caps
        // catch a page that starts embedding per-trace data.
        budget_max_html_kib: 64,
        budget_max_json_kib: 64,
    }
}

/// Pulls `"<key>": <n>` out of a stored report without a JSON
/// dependency.
fn parse_num(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let digits: String =
        rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn main() {
    let mut smoke = false;
    let mut write: Option<String> = None;
    let mut check: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--write" => write = args.next(),
            "--check" => check = args.next().map(PathBuf::from),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: report [--smoke] [--write <path>] [--check <path>]"
                );
                std::process::exit(2);
            }
        }
    }
    // The regression gate always runs the fast corpus: the budgets
    // are checked in from a smoke run.
    if check.is_some() {
        smoke = true;
    }

    let report = run(smoke);
    print!("{}", report.to_json());

    if let Some(path) = write {
        std::fs::write(&path, report.to_json())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }

    if let Some(path) = check {
        let stored = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        let budget = |key: &str| {
            parse_num(&stored, key)
                .unwrap_or_else(|| panic!("no {key} in {}", path.display()))
        };
        let min_speedup = budget("budget_min_warm_speedup") as f64;
        let max_html = budget("budget_max_html_kib") as usize * 1024;
        let max_json = budget("budget_max_json_kib") as usize * 1024;
        let speedup = report.cold_render_secs / report.warm_render_secs;
        let mut failed = false;
        if speedup < min_speedup {
            eprintln!(
                "warm-render regression: a repeat render is only \
                 {speedup:.1}x faster than cold (budget: >= {min_speedup}x) \
                 — the renderer is refolding the fleet"
            );
            failed = true;
        }
        if report.html_bytes > max_html {
            eprintln!(
                "artifact-weight regression: report.html is {} bytes \
                 (budget: <= {max_html})",
                report.html_bytes
            );
            failed = true;
        }
        if report.json_bytes > max_json {
            eprintln!(
                "artifact-weight regression: report.json is {} bytes \
                 (budget: <= {max_json})",
                report.json_bytes
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "warm render {speedup:.0}x faster than cold; report.html {}B, \
             report.json {}B",
            report.html_bytes, report.json_bytes,
        );
    }
}
