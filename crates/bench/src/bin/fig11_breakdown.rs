//! Regenerates Figs. 11 and 14: per-component power breakdown while
//! the ABD manifests (OpenGPS: GPS dominates with display off;
//! Wallabag: CPU/WiFi dominate).

use energydx_bench::casestudy;
use energydx_bench::render::table;
use energydx_workload::Scenario;

fn main() {
    for scenario in [Scenario::opengps(), Scenario::wallabag()] {
        let cs = casestudy::measure(scenario);
        println!(
            "Power breakdown while the ABD manifests — {} (backgrounded tail)",
            cs.name
        );
        let rows: Vec<Vec<String>> = cs
            .abd_breakdown
            .iter()
            .map(|(c, mw)| vec![c.to_string(), format!("{mw:.1} mW")])
            .collect();
        println!("{}", table(&["Component", "Power"], &rows));
        println!("dominant component: {}", cs.dominant_component());
        println!();
    }
}
