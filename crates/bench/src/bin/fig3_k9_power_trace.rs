//! Regenerates Fig. 3: the K-9 Mail power trace — normal-usage spikes
//! while the user interacts, then a sustained abnormal level once the
//! ABD manifests (visible whenever the phone should be at rest).

use energydx_bench::k9;
use energydx_bench::render::series;

fn main() {
    let result = k9::measure();
    println!("Fig. 3 — K-9 Mail app power over time (impacted session)");
    println!(
        "{}",
        series(
            "app power (mW, one sample per 500 ms)",
            &result.power_samples()
        )
    );
    let bg = result.background_power();
    println!(
        "background power before the manifestation point: {:8.1} mW (phone at rest)",
        bg.before_mw
    );
    println!(
        "background power after the manifestation point : {:8.1} mW (connection retries)",
        bg.after_mw
    );
    println!(
        "ratio: {:.1}x — the paper's normal(low) -> abnormal(high) transition",
        if bg.before_mw > 0.0 {
            bg.after_mw / bg.before_mw
        } else {
            f64::INFINITY
        }
    );
}
