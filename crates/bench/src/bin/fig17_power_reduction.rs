//! Regenerates Fig. 17: average app power before and after fixing the
//! ABD (paper: −27.2 % on average).

use energydx_bench::fig17;
use energydx_bench::render::{pct, table};

fn main() {
    let result = fig17::measure();
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.id.to_string(),
                r.name.clone(),
                format!("{:.0}", r.before_mw),
                format!("{:.0}", r.after_mw),
                pct(r.reduction()),
            ]
        })
        .collect();
    println!("Fig. 17 — average app power before/after the fix (mW)");
    println!(
        "{}",
        table(&["ID", "App", "Before", "After", "Reduction"], &rows)
    );
    println!(
        "average power reduction: {} (paper: 27.2%)",
        pct(result.mean_reduction())
    );

    // The user-visible consequence (§I motivation): hours of battery
    // the average ABD costs, assuming the phone otherwise draws a
    // typical in-use load.
    let battery = energydx_powermodel::Battery::nexus6();
    let baseline = energydx_bench::overhead::TYPICAL_PHONE_POWER_MW;
    let mean_before: f64 = result.rows.iter().map(|r| r.before_mw).sum::<f64>()
        / result.rows.len() as f64;
    let mean_after: f64 = result.rows.iter().map(|r| r.after_mw).sum::<f64>()
        / result.rows.len() as f64;
    let lost = battery
        .lifetime_lost_hours(baseline + mean_after, mean_before - mean_after);
    println!(
        "battery life: {:.1} h with the ABDs vs {:.1} h fixed ({:.1} h recovered per charge)",
        battery.lifetime_hours(baseline + mean_before),
        battery.lifetime_hours(baseline + mean_after),
        lost
    );
}
