//! Allocation-counting benchmark of the zero-copy hot path.
//!
//! Instruments the global allocator and drives the two Step 2–5
//! implementations over the same deterministic synthetic fleet:
//!
//! - the **string-keyed reference** (`EventGroups` + `step2_rank` +
//!   `step3_normalize` + `step4_detect` + `step5_report`), which keys
//!   every group and every Step-5 fold by owned `String` — the
//!   pre-interning production dataflow, kept as the oracle;
//! - the **interned hot path** (`map_shard` + `analyze`), which runs
//!   the same analysis on dense `u32` event ids and `Vec`-indexed
//!   group tables, resolving names only at the `render` boundary.
//!
//! Reported per region: wall time, allocator calls, bytes requested,
//! and both normalized per powered instance. The headline figure is
//! `reduction_allocs_per_instance` — how many times fewer allocations
//! the hot path makes through Steps 2–5 than the reference.
//!
//! ```text
//! hotpath [--smoke] [--obsv] [--write <path>] [--check <path>]
//! ```
//!
//! `--smoke` shrinks the fleet for CI; `--write` stores the report as
//! JSON (see `BENCH_hotpath.json` at the repo root); `--check` re-runs
//! the measurement and fails (exit 1) if bytes allocated per instance
//! on the hot path exceed the `budget_bytes_per_instance` recorded in
//! the given JSON file — the CI regression gate. `--obsv` attaches a
//! live metrics registry to the pipeline, so the measured regions
//! include the per-stage span instrumentation; `--obsv --check`
//! against the stored budget is the metrics-overhead gate.

use energydx::pipeline::{
    step2_rank, step3_normalize, step4_detect, step5_report, EventGroups,
};
use energydx::{AnalysisConfig, DiagnosisInput, EnergyDx};
use energydx_trace::event::{Direction, EventRecord, EventTrace};
use energydx_trace::join_power;
use energydx_trace::power::{PowerSample, PowerTrace};
use energydx_trace::util::Component;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A pass-through allocator that counts calls and requested bytes.
/// `Relaxed` is sufficient: the benchmark reads the counters only
/// around single-threaded regions (`jobs = 1`).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System` unchanged; the counter
// updates have no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(
        &self,
        ptr: *mut u8,
        layout: Layout,
        new_size: usize,
    ) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocator calls, bytes, and wall seconds of one closure run.
#[derive(Debug, Clone, Copy)]
struct Region {
    allocs: u64,
    bytes: u64,
    secs: f64,
}

fn measured<R>(f: impl FnOnce() -> R) -> (R, Region) {
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let b0 = BYTES.load(Ordering::Relaxed);
    let t0 = Instant::now();
    let result = f();
    let secs = t0.elapsed().as_secs_f64();
    let region = Region {
        allocs: ALLOCS.load(Ordering::Relaxed) - a0,
        bytes: BYTES.load(Ordering::Relaxed) - b0,
        secs,
    };
    (result, region)
}

/// SplitMix64 — deterministic fleet synthesis, no RNG dependency.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const VOCAB: [&str; 12] = [
    "Lcom/app/MainActivity;->onResume",
    "Lcom/app/MainActivity;->onPause",
    "Lcom/app/net/Sync;->poll",
    "Lcom/app/net/Sync;->flush",
    "Lcom/app/db/Store;->query",
    "Lcom/app/db/Store;->commit",
    "Lcom/app/ui/Feed;->onDraw",
    "Lcom/app/ui/Feed;->onScroll",
    "Lcom/app/gps/Fix;->onLocation",
    "Lcom/app/media/Decoder;->decode",
    "Lcom/app/push/Recv;->onMessage",
    "Idle(No_Display)",
];

/// One user's raw traces: `instances` balanced callback pairs against
/// a power trace sampled every 500 ms, with a sustained anomaly in a
/// third of the users.
fn user_trace(
    user: usize,
    instances: usize,
    seed: &mut u64,
) -> (EventTrace, PowerTrace) {
    let mut events = EventTrace::new();
    for i in 0..instances as u64 {
        let name = VOCAB[(splitmix(seed) % VOCAB.len() as u64) as usize];
        let start = i * 400;
        events.push(EventRecord::new(start, Direction::Enter, name));
        events.push(EventRecord::new(start + 150, Direction::Exit, name));
    }
    let duration = instances as u64 * 400 + 1_000;
    let anomalous = user.is_multiple_of(3);
    let power: PowerTrace = (1..=duration / 500)
        .map(|tick| {
            let mut s = PowerSample::new(tick * 500);
            let jitter = (splitmix(seed) % 40) as f64;
            let mw = if anomalous && tick > duration / 1_000 {
                900.0 + jitter
            } else {
                140.0 + jitter
            };
            s.set_component(Component::Cpu, mw);
            s
        })
        .collect();
    (events, power)
}

struct Report {
    mode: &'static str,
    traces: usize,
    instances: usize,
    joins_per_sec: f64,
    join: Region,
    reference: Region,
    hotpath: Region,
    render: Region,
    diagnose_secs: f64,
    budget_bytes_per_instance: u64,
}

impl Report {
    fn reduction_allocs(&self) -> f64 {
        let hot = (self.hotpath.allocs as f64).max(1.0);
        self.reference.allocs as f64 / hot
    }

    fn reduction_bytes(&self) -> f64 {
        let hot = (self.hotpath.bytes as f64).max(1.0);
        self.reference.bytes as f64 / hot
    }

    fn hotpath_bytes_per_instance(&self) -> f64 {
        self.hotpath.bytes as f64 / self.instances as f64
    }

    fn to_json(&self) -> String {
        let per = |r: &Region| {
            format!(
                "{{\"secs\": {:.6}, \"allocs\": {}, \"bytes\": {}, \
                 \"allocs_per_instance\": {:.3}, \
                 \"bytes_per_instance\": {:.1}}}",
                r.secs,
                r.allocs,
                r.bytes,
                r.allocs as f64 / self.instances as f64,
                r.bytes as f64 / self.instances as f64,
            )
        };
        format!(
            "{{\n  \"mode\": \"{}\",\n  \"traces\": {},\n  \
             \"instances\": {},\n  \"vocab\": {},\n  \
             \"joins_per_sec\": {:.0},\n  \"step1_join\": {},\n  \
             \"reference_steps2_5\": {},\n  \"hotpath_steps2_5\": {},\n  \
             \"render\": {},\n  \"diagnose_secs\": {:.6},\n  \
             \"reduction_allocs_per_instance\": {:.2},\n  \
             \"reduction_bytes_per_instance\": {:.2},\n  \
             \"budget_bytes_per_instance\": {}\n}}\n",
            self.mode,
            self.traces,
            self.instances,
            VOCAB.len(),
            self.joins_per_sec,
            per(&self.join),
            per(&self.reference),
            per(&self.hotpath),
            per(&self.render),
            self.diagnose_secs,
            self.reduction_allocs(),
            self.reduction_bytes(),
            self.budget_bytes_per_instance,
        )
    }
}

fn run(smoke: bool, obsv: bool) -> Report {
    let (users, per_trace) = if smoke { (16, 240) } else { (64, 2_000) };
    let mut seed = 0x0E17_ED01u64;
    let raw: Vec<(EventTrace, PowerTrace)> = (0..users)
        .map(|u| user_trace(u, per_trace, &mut seed))
        .collect();

    // Step 1, measured in isolation: pairing happens outside the
    // region; the join itself is move-only over the paired instances.
    let paired: Vec<_> = raw
        .iter()
        .map(|(events, power)| {
            let mut instances = events.pair_instances();
            instances.sort_by_key(|i| i.start_ms);
            (instances, power)
        })
        .collect();
    let instances: usize = paired.iter().map(|(i, _)| i.len()).sum();
    let (mut traces, join) = measured(|| {
        paired
            .into_iter()
            .map(|(instances, power)| join_power(instances, power))
            .collect::<Vec<_>>()
    });

    // One corrupt trace exercises the sanitation path in both
    // pipelines identically.
    traces[1][3].power_mw = f64::NAN;
    let input = DiagnosisInput::new(traces);

    let config = AnalysisConfig::default();
    let mut dx = EnergyDx::new(config.clone()).with_jobs(1);
    // The registry itself is built outside the measured regions; what
    // the regions then see is exactly the per-stage recording cost.
    if obsv {
        dx = dx.with_metrics(energydx_obsv::Metrics::enabled(
            std::sync::Arc::new(energydx_obsv::MetricsRegistry::new()),
        ));
    }

    // Baseline: the string-keyed reference pipeline, Steps 2–5, report
    // materialization excluded on both sides.
    let (_, reference) = measured(|| {
        let (clean, skipped) = input.sanitized();
        let groups = EventGroups::collect(&clean);
        let rankings = step2_rank(&groups);
        let normalized = step3_normalize(&clean, &groups, &config);
        let detections = step4_detect(&normalized, &config);
        let ranked = step5_report(&clean, &detections, &config);
        black_box((skipped, rankings, detections, ranked));
    });

    // Hot path: interned map + dense analyze, same steps, no strings.
    let (analyzed, hotpath) = measured(|| {
        let partial = dx.map_shard(input.traces(), 0);
        dx.analyze(partial).expect("whole fleet is complete")
    });
    assert!(analyzed.trace_count() == users);
    black_box(analyzed.detection_count());

    let (report, render) = measured(|| dx.render(analyzed));

    // End-to-end wall time (join excluded), and the differential check
    // that the measured paths agree byte for byte.
    let t0 = Instant::now();
    let full = dx.diagnose(&input);
    let diagnose_secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        full.to_canonical_json(),
        report.to_canonical_json(),
        "hot path diverged from diagnose()"
    );
    assert_eq!(
        full.to_canonical_json(),
        dx.diagnose_reference(&input).to_canonical_json(),
        "hot path diverged from the reference"
    );
    if let Some(reg) = dx.metrics().registry() {
        for stage in ["map", "analyze", "render", "finish"] {
            let snap = reg
                .histogram_snapshot(
                    energydx_obsv::STAGE_FAMILY,
                    &[("stage", stage)],
                )
                .unwrap_or_else(|| panic!("stage {stage} not recorded"));
            assert!(snap.count() > 0, "stage {stage} recorded no spans");
        }
        eprintln!("obsv: per-stage spans recorded for map/analyze/render");
    }

    let mut out = Report {
        mode: if smoke { "smoke" } else { "full" },
        traces: users,
        instances,
        joins_per_sec: instances as f64 / join.secs.max(1e-9),
        join,
        reference,
        hotpath,
        render,
        diagnose_secs,
        budget_bytes_per_instance: 0,
    };
    // Regression budget: double the measured footprint, so the gate
    // trips on an accidental return to per-instance cloning without
    // flaking on allocator jitter.
    out.budget_bytes_per_instance =
        (out.hotpath_bytes_per_instance() * 2.0).ceil() as u64;
    out
}

/// Pulls `"budget_bytes_per_instance": <n>` out of a stored report
/// without a JSON dependency.
fn parse_budget(json: &str) -> Option<u64> {
    let key = "\"budget_bytes_per_instance\":";
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let digits: String =
        rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn main() {
    let mut smoke = false;
    let mut obsv = false;
    let mut write: Option<String> = None;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--obsv" => obsv = true,
            "--write" => write = args.next(),
            "--check" => check = args.next(),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: hotpath [--smoke] [--obsv] [--write <path>] \
                     [--check <path>]"
                );
                std::process::exit(2);
            }
        }
    }
    // The regression gate always runs the fast fleet: the budget is
    // checked in from a smoke run and per-instance figures are
    // size-stable.
    if check.is_some() {
        smoke = true;
    }

    let report = run(smoke, obsv);
    print!("{}", report.to_json());
    if report.reduction_allocs() < 5.0 {
        eprintln!(
            "warning: Steps 2-5 allocation reduction {:.2}x is below \
             the 5x target",
            report.reduction_allocs()
        );
    }

    if let Some(path) = write {
        std::fs::write(&path, report.to_json())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }

    if let Some(path) = check {
        let stored = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let budget = parse_budget(&stored).unwrap_or_else(|| {
            panic!("no budget_bytes_per_instance in {path}")
        });
        let measured = report.hotpath_bytes_per_instance();
        if measured > budget as f64 {
            eprintln!(
                "hot-path regression: {measured:.1} bytes/instance \
                 exceeds the checked-in budget of {budget}"
            );
            std::process::exit(1);
        }
        eprintln!(
            "hot path within budget: {measured:.1} <= {budget} \
             bytes/instance"
        );
    }
}
