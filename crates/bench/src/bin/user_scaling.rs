//! Extension experiment: diagnosis quality vs. number of volunteer
//! users, over the four case studies (the paper fixes this at 30+).

use energydx_bench::render::{pct, table};
use energydx_bench::scaling;

fn main() {
    let cells = scaling::sweep();
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.app.clone(),
                c.users.to_string(),
                pct(c.precision),
                pct(c.recall),
                c.distance
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "n/a".to_string()),
                pct(c.reduction),
            ]
        })
        .collect();
    println!("Diagnosis quality vs. number of volunteers");
    println!(
        "{}",
        table(
            &[
                "App",
                "Users",
                "Precision",
                "Recall",
                "Distance",
                "Reduction"
            ],
            &rows
        )
    );
}
