//! Regenerates Figs. 9/10 and Table IV: the OpenGPS case study
//! (GPS not released when LoggerMap goes to the background).

use energydx_bench::casestudy;
use energydx_bench::render::{pct, series, table};
use energydx_workload::Scenario;

fn main() {
    let cs = casestudy::measure(Scenario::opengps());
    let trace = &cs.run.report.traces[cs.plotted_trace];

    println!("Fig. 9a — raw event power (impacted trace)");
    println!("{}", series("raw (mW)", &trace.raw_power_mw));
    println!("Fig. 9b — normalized event power");
    println!("{}", series("normalized", &trace.normalized_power));
    println!("Fig. 9c — variation amplitude");
    println!("{}", series("amplitude", &trace.amplitudes));

    println!("Fig. 10 — manifestation point detection");
    if let Some(fence) = trace.upper_fence {
        println!("  fence (Q3 + 3*IQR): {fence:.2}");
    }
    for p in &trace.manifestation_points {
        println!(
            "  manifestation point at instance {} ({}), amplitude {:.2}",
            p.instance_index, p.event, p.amplitude
        );
    }
    println!();

    println!("Table IV — events reported to developers (OpenGPS)");
    let rows: Vec<Vec<String>> = cs
        .event_table()
        .into_iter()
        .enumerate()
        .map(|(i, (event, fraction))| {
            vec![(i + 1).to_string(), event, pct(fraction)]
        })
        .collect();
    println!("{}", table(&["Order", "Event", "%"], &rows));
    println!(
        "code search space: {} of {} lines (paper: 569 of 5060)",
        cs.run.diagnosis_lines(),
        cs.run.code_index.total_lines
    );
}
