//! Regenerates Fig. 1: the distribution of event distance over the 40
//! ABD cases (paper: 90th percentile ≤ 3).

use energydx_bench::fig1;
use energydx_bench::render::table;

fn main() {
    let result = fig1::measure();
    let rows: Vec<Vec<String>> = result
        .samples
        .iter()
        .map(|s| {
            vec![
                s.id.to_string(),
                s.name.clone(),
                s.distance
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "n/a".to_string()),
            ]
        })
        .collect();
    println!("Fig. 1 — event distance per ABD case");
    println!("{}", table(&["ID", "App", "Event distance"], &rows));

    println!("ECDF steps (distance, cumulative fraction):");
    for (x, p) in result.ecdf.steps() {
        println!("  {x:>4.0}  {p:.3}");
    }
    println!();
    println!(
        "90th percentile event distance: {:.1} (paper: <= 3)",
        result.p90()
    );
    println!(
        "measured cases: {}/{}",
        result.ecdf.len(),
        result.samples.len()
    );
}
