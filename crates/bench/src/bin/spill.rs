//! Bounded-memory benchmark of the fleetd spill path.
//!
//! Drives two [`FleetState`]s through the same deterministic corpus —
//! one fully resident, one spilling every cold epoch to columnar
//! segments under a zero memory budget — and measures **peak live
//! heap growth** during ingest with a counting allocator. The
//! resident daemon's peak grows with the fleet; the spilling daemon's
//! peak stays bounded by one delta plus the segment encode buffer.
//! Both must serve byte-identical reports, so the numbers are only
//! published for a spill path that keeps the batch-identity
//! guarantee.
//!
//! ```text
//! spill [--smoke] [--write <path>] [--check <path>]
//! ```
//!
//! `--write` stores the report as JSON (see `BENCH_spill.json` at the
//! repo root); `--check` re-runs the measurement and fails (exit 1)
//! if the spilling daemon's ingest peak exceeds the stored
//! `budget_spill_peak_bytes` — a deterministic byte count for a fixed
//! corpus on one thread, so the gate cannot flake on machine speed —
//! or if spilling stops being cheaper than staying resident.

use energydx_fleetd::fixture;
use energydx_fleetd::state::{FleetConfig, FleetState};
use energydx_fleetd::SpillConfig;
use energydx_trace::fault::{FaultInjector, FaultKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Instant;

/// A pass-through allocator that tracks live bytes and their
/// high-water mark. `Relaxed` plus a load-max-store peak update are
/// sufficient: the benchmark reads and resets the counters only
/// around single-threaded regions (`jobs = 1`, direct state calls).
struct PeakAlloc;

static LIVE: AtomicI64 = AtomicI64::new(0);
static PEAK: AtomicI64 = AtomicI64::new(0);

fn track(delta: i64) {
    let live = LIVE.fetch_add(delta, Ordering::Relaxed) + delta;
    if live > PEAK.load(Ordering::Relaxed) {
        PEAK.store(live, Ordering::Relaxed);
    }
}

// SAFETY: defers every operation to `System` unchanged; the counter
// updates have no effect on allocation behavior.
unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        track(layout.size() as i64);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        track(-(layout.size() as i64));
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(
        &self,
        ptr: *mut u8,
        layout: Layout,
        new_size: usize,
    ) -> *mut u8 {
        track(new_size as i64 - layout.size() as i64);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: PeakAlloc = PeakAlloc;

/// Peak live-byte growth and wall seconds of one closure run: the
/// high-water mark is reset to the current live count first, so the
/// figure is growth above entry, not process-lifetime peak.
fn peak_region<R>(f: impl FnOnce() -> R) -> (R, u64, f64) {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let t0 = Instant::now();
    let result = f();
    let secs = t0.elapsed().as_secs_f64();
    let peak = (PEAK.load(Ordering::Relaxed) - base).max(0) as u64;
    (result, peak, secs)
}

/// The same damaged-corpus recipe as the ingest benchmark: every 9th
/// payload salvageable, every 23rd cut below the wire header, so
/// repair, salvage, and quarantine are all on the measured path.
fn corpus(users: usize, sessions: u64) -> Vec<Vec<u8>> {
    let mut injector = FaultInjector::new(0x1276, 1.0);
    let mut payloads = Vec::with_capacity(users * sessions as usize);
    for user in 0..users {
        for session in 0..sessions {
            let mut payload = fixture::payload(&format!("u{user:04}"), session);
            let i = payloads.len();
            if i % 23 == 7 {
                payload.truncate(6);
            } else if i % 9 == 4 {
                let kind = if (i / 9) % 2 == 0 {
                    FaultKind::Truncate
                } else {
                    FaultKind::BitFlip
                };
                payload = injector
                    .corrupt(&payload, kind)
                    .pop()
                    .expect("one payload in, one out");
            }
            payloads.push(payload);
        }
    }
    payloads
}

struct Report {
    mode: &'static str,
    uploads: usize,
    accepted: usize,
    resident_peak_bytes: u64,
    spill_peak_bytes: u64,
    spilled_segments: usize,
    spilled_disk_bytes: u64,
    resident_query_secs: f64,
    spill_query_secs: f64,
    budget_spill_peak_bytes: u64,
}

impl Report {
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"mode\": \"{}\",\n  \"uploads\": {},\n  \
             \"accepted\": {},\n  \"resident_peak_bytes\": {},\n  \
             \"spill_peak_bytes\": {},\n  \"spilled_segments\": {},\n  \
             \"spilled_disk_bytes\": {},\n  \
             \"resident_query_secs\": {:.6},\n  \
             \"spill_query_secs\": {:.6},\n  \
             \"budget_spill_peak_bytes\": {}\n}}\n",
            self.mode,
            self.uploads,
            self.accepted,
            self.resident_peak_bytes,
            self.spill_peak_bytes,
            self.spilled_segments,
            self.spilled_disk_bytes,
            self.resident_query_secs,
            self.spill_query_secs,
            self.budget_spill_peak_bytes,
        )
    }
}

fn run(smoke: bool) -> Report {
    let (users, sessions) = if smoke { (48, 2) } else { (400, 5) };
    let payloads = corpus(users, sessions);

    let spool = std::env::temp_dir()
        .join(format!("energydx-bench-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);

    let resident_config = FleetConfig {
        jobs: 1,
        ..FleetConfig::default()
    };
    let spilling_config = FleetConfig {
        jobs: 1,
        spill: Some(SpillConfig {
            dir: spool.clone(),
            mem_budget: 0,
        }),
        ..FleetConfig::default()
    };

    // Ingest under measurement: the state itself is allocated inside
    // the region so its growth counts against the figure.
    let (resident, resident_peak_bytes, _) = peak_region(|| {
        let mut state = FleetState::new(resident_config);
        for payload in &payloads {
            black_box(state.submit("bench", payload));
        }
        state
    });
    let (spilling, spill_peak_bytes, _) = peak_region(|| {
        let mut state = FleetState::new(spilling_config);
        for payload in &payloads {
            black_box(state.submit("bench", payload));
        }
        state
    });
    assert_eq!(
        spilling.resident_bytes(),
        0,
        "a zero budget must leave nothing resident"
    );

    // Batch identity: both residencies serve the same bytes — the
    // spilling daemon folds its segments back from disk to do so.
    let t0 = Instant::now();
    let resident_report = resident
        .diagnose_json("bench", None)
        .expect("bench app has accepted traces");
    let resident_query_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let spill_report = spilling
        .diagnose_json("bench", None)
        .expect("bench app has accepted traces");
    let spill_query_secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        spill_report, resident_report,
        "spilling changed the served bytes"
    );

    let spilled_disk_bytes: u64 = std::fs::read_dir(&spool)
        .expect("spool exists after spilling")
        .map(|e| e.expect("spool entry").metadata().expect("metadata").len())
        .sum();
    let spilled_segments = spilling.spilled_segments();
    assert!(spilled_segments > 0, "the corpus must spill something");
    let accepted = spilling.accepted_total();
    let _ = std::fs::remove_dir_all(&spool);

    let mut out = Report {
        mode: if smoke { "smoke" } else { "full" },
        uploads: payloads.len(),
        accepted,
        resident_peak_bytes,
        spill_peak_bytes,
        spilled_segments,
        spilled_disk_bytes,
        resident_query_secs,
        spill_query_secs,
        budget_spill_peak_bytes: 0,
    };
    // The gate metric is a peak byte count — deterministic for a
    // fixed corpus on one thread — so a modest margin only absorbs
    // intentional representation changes, not timing noise.
    out.budget_spill_peak_bytes = out.spill_peak_bytes * 3 / 2;
    out
}

/// Pulls `"budget_spill_peak_bytes": <n>` out of a stored report
/// without a JSON dependency.
fn parse_budget(json: &str) -> Option<u64> {
    let key = "\"budget_spill_peak_bytes\":";
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let digits: String =
        rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn main() {
    let mut smoke = false;
    let mut write: Option<String> = None;
    let mut check: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--write" => write = args.next(),
            "--check" => check = args.next().map(PathBuf::from),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: spill [--smoke] [--write <path>] [--check <path>]"
                );
                std::process::exit(2);
            }
        }
    }
    // The regression gate always runs the fast corpus: the budget is
    // checked in from a smoke run.
    if check.is_some() {
        smoke = true;
    }

    let report = run(smoke);
    print!("{}", report.to_json());

    if let Some(path) = write {
        std::fs::write(&path, report.to_json())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }

    if let Some(path) = check {
        let stored = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        let budget = parse_budget(&stored).unwrap_or_else(|| {
            panic!("no budget_spill_peak_bytes in {}", path.display())
        });
        if report.spill_peak_bytes > budget {
            eprintln!(
                "spill-memory regression: ingest peak {} bytes exceeds \
                 the checked-in budget of {budget}",
                report.spill_peak_bytes
            );
            std::process::exit(1);
        }
        if report.spill_peak_bytes >= report.resident_peak_bytes {
            eprintln!(
                "spilling stopped being cheaper than staying resident: \
                 {} >= {} peak bytes",
                report.spill_peak_bytes, report.resident_peak_bytes
            );
            std::process::exit(1);
        }
        eprintln!(
            "spill peak within budget: {} <= {budget} bytes (resident \
             peak {})",
            report.spill_peak_bytes, report.resident_peak_bytes
        );
    }
}
