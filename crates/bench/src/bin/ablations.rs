//! Ablation sweep over the analysis parameters — the "parameters are
//! decided through experiments" experiments (DESIGN.md §4b).

use energydx_bench::ablation;
use energydx_bench::render::{pct, table};

fn main() {
    let results = ablation::run_grid();
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                pct(r.precision),
                pct(r.recall),
                if r.mean_distance.is_nan() {
                    "n/a".to_string()
                } else {
                    format!("{:.1}", r.mean_distance)
                },
                format!("{}/13", r.distance_measured),
                pct(r.mean_reduction),
            ]
        })
        .collect();
    println!("Ablations over a 13-app fleet slice (per-trace detection)");
    println!(
        "{}",
        table(
            &[
                "Configuration",
                "Precision",
                "Recall",
                "Distance",
                "Measured",
                "Reduction"
            ],
            &rows
        )
    );
}
