//! Release-gate benchmark: ground-truth detector quality plus the
//! latency of a differential (`from` → `to`) query on a versioned
//! daemon.
//!
//! The quality half runs the [`energydx_workload::release_fleet`]
//! ground truth — one injected treatment per ABD class (loop,
//! no-sleep, configuration) plus bug-free controls — through the
//! differential detector at its default thresholds, and counts
//! recall (treatments whose verdict is `regressed`) and false
//! positives (controls flagged). The flagged events are the bug's
//! *manifestation points* (backgrounding callbacks, `Idle`), not its
//! root-cause trigger: the trigger runs too rarely for the per-event
//! sample floor, which is the paper's motivation for separating the
//! two — finding the root cause from a manifestation point is the
//! within-version diagnosis's job.
//!
//! The latency half ingests a damaged versioned
//! corpus into a daemon and measures the **cold** regression query
//! (two per-version folds + analyses + comparison) against the
//! **warm** repeat, which must be two analyzed-cache hits plus the
//! cheap comparison.
//!
//! ```text
//! regress [--smoke] [--write <path>] [--check <path>]
//! ```
//!
//! `--write` stores the report as JSON (see `BENCH_regress.json` at
//! the repo root); `--check` re-runs the smoke measurement and fails
//! (exit 1) when any treatment escapes undetected, any control is
//! flagged, or the warm differential query is less than the stored
//! `budget_min_warm_speedup` times faster than cold. The detector
//! gates are exact counts over a deterministic fleet; only the
//! speedup gate involves timing, and it compares a microsecond-scale
//! cache hit against a millisecond-scale double fold.

use energydx::{AnalysisConfig, EnergyDx};
use energydx_fleetd::fixture;
use energydx_fleetd::state::{FleetConfig, FleetState};
use energydx_regress::{compare, RegressConfig, Verdict};
use energydx_trace::fault::{FaultInjector, FaultKind};
use energydx_workload::release_fleet;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// The two releases the latency corpus interleaves.
const FROM: &str = "1.9.0";
const TO: &str = "2.0.0";

/// The damaged-corpus recipe of the other daemon benchmarks — every
/// 9th payload salvageable, every 23rd cut below the wire header —
/// with an app-version stamp alternating between two releases, so the
/// differential query folds a realistically mixed accepted set per
/// side.
fn corpus(users: usize, sessions: u64) -> Vec<Vec<u8>> {
    let mut injector = FaultInjector::new(0x1276, 1.0);
    let mut payloads = Vec::with_capacity(users * sessions as usize);
    for user in 0..users {
        for session in 0..sessions {
            let i = payloads.len();
            let version = if i % 2 == 0 { FROM } else { TO };
            let mut payload = fixture::payload_versioned(
                &format!("u{user:04}"),
                session,
                version,
            );
            if i % 23 == 7 {
                payload.truncate(6);
            } else if i % 9 == 4 {
                let kind = if (i / 9) % 2 == 0 {
                    FaultKind::Truncate
                } else {
                    FaultKind::BitFlip
                };
                payload = injector
                    .corrupt(&payload, kind)
                    .pop()
                    .expect("one payload in, one out");
            }
            payloads.push(payload);
        }
    }
    payloads
}

/// Warm repeats per measurement: the minimum over this many runs is
/// the figure, so one preempted run cannot inflate it.
const WARM_REPEATS: usize = 32;

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let result = f();
    (result, t0.elapsed().as_secs_f64())
}

fn ingest(config: FleetConfig, payloads: &[Vec<u8>]) -> FleetState {
    let mut state = FleetState::new(config);
    for payload in payloads {
        black_box(state.submit("bench", payload));
    }
    state
}

struct Report {
    mode: &'static str,
    cases: usize,
    treatments: usize,
    treatments_flagged: usize,
    controls: usize,
    controls_flagged: usize,
    uploads: usize,
    accepted: usize,
    cold_secs: f64,
    warm_secs: f64,
    budget_min_warm_speedup: u64,
}

impl Report {
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"mode\": \"{}\",\n  \"cases\": {},\n  \
             \"treatments\": {},\n  \"treatments_flagged\": {},\n  \
             \"controls\": {},\n  \
             \"controls_flagged\": {},\n  \"uploads\": {},\n  \
             \"accepted\": {},\n  \"cold_secs\": {:.6},\n  \
             \"warm_secs\": {:.6},\n  \
             \"budget_min_warm_speedup\": {}\n}}\n",
            self.mode,
            self.cases,
            self.treatments,
            self.treatments_flagged,
            self.controls,
            self.controls_flagged,
            self.uploads,
            self.accepted,
            self.cold_secs,
            self.warm_secs,
            self.budget_min_warm_speedup,
        )
    }
}

/// Runs the ground-truth fleet through the detector and returns
/// `(treatments, treatments flagged, controls, controls flagged)`.
fn ground_truth() -> (usize, usize, usize, usize) {
    let mut treatments = 0;
    let mut treatments_flagged = 0;
    let mut controls = 0;
    let mut controls_flagged = 0;
    for case in release_fleet() {
        let pair = case.collect_pair().expect("ground-truth cases are valid");
        let config = AnalysisConfig::default()
            .with_developer_fraction(case.scenario.developer_fraction());
        let dx = EnergyDx::new(config);
        let v1 = dx.diagnose(&pair.v1.diagnosis_input());
        let v2 = dx.diagnose(&pair.v2.diagnosis_input());
        let report = compare("v1", &v1, "v2", &v2, &RegressConfig::default());
        let regressed = report.verdict == Verdict::Regressed;
        if case.buggy() {
            treatments += 1;
            if regressed && report.regressions().next().is_some() {
                treatments_flagged += 1;
            }
        } else {
            controls += 1;
            if regressed {
                controls_flagged += 1;
            }
        }
    }
    (treatments, treatments_flagged, controls, controls_flagged)
}

fn run(smoke: bool) -> Report {
    let (treatments, treatments_flagged, controls, controls_flagged) =
        ground_truth();

    // --- Differential query latency on a versioned daemon. -----------
    let (users, sessions) = if smoke { (48, 2) } else { (400, 5) };
    let payloads = corpus(users, sessions);
    let config = FleetConfig {
        jobs: 1,
        ..FleetConfig::default()
    };
    let state = ingest(config, &payloads);
    let thresholds = RegressConfig::default();
    let (cold_json, cold_secs) =
        timed(|| state.regressions_json("bench", None, FROM, TO, &thresholds));
    let cold_json = cold_json.expect("bench app has both releases");
    let warm_secs = (0..WARM_REPEATS)
        .map(|_| {
            let (json, secs) = timed(|| {
                state.regressions_json("bench", None, FROM, TO, &thresholds)
            });
            black_box(json.expect("bench app serves"));
            secs
        })
        .fold(f64::INFINITY, f64::min);
    let stats = state.query_cache_stats();
    assert!(
        stats[0].hits as usize >= 2 * WARM_REPEATS,
        "warm differential queries must hit the per-version analyzed \
         cache twice each, saw {} hits",
        stats[0].hits
    );
    // The cache must not change a byte: a cache-disabled daemon over
    // the same corpus serves the identical regression report.
    let plain = ingest(
        FleetConfig {
            jobs: 1,
            query_cache: false,
            ..FleetConfig::default()
        },
        &payloads,
    );
    assert_eq!(
        plain
            .regressions_json("bench", None, FROM, TO, &thresholds)
            .unwrap(),
        cold_json,
        "the query cache changed the served regression bytes"
    );

    Report {
        mode: if smoke { "smoke" } else { "full" },
        cases: treatments + controls,
        treatments,
        treatments_flagged,
        controls,
        controls_flagged,
        uploads: payloads.len(),
        accepted: state.accepted_total(),
        cold_secs,
        warm_secs,
        // A warm differential query is two analyzed-cache hits plus
        // the event alignment and rendering; cold is two full folds
        // and analyses — measured ~6x on the smoke corpus, gated at
        // 3x so the margin absorbs scheduler noise, not regressions.
        budget_min_warm_speedup: 3,
    }
}

/// Pulls `"<key>": <n>` out of a stored report without a JSON
/// dependency.
fn parse_num(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let digits: String =
        rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn main() {
    let mut smoke = false;
    let mut write: Option<String> = None;
    let mut check: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--write" => write = args.next(),
            "--check" => check = args.next().map(PathBuf::from),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: regress [--smoke] [--write <path>] \
                     [--check <path>]"
                );
                std::process::exit(2);
            }
        }
    }
    // The regression gate always runs the fast corpus: the budgets
    // are checked in from a smoke run.
    if check.is_some() {
        smoke = true;
    }

    let report = run(smoke);
    print!("{}", report.to_json());

    if let Some(path) = write {
        std::fs::write(&path, report.to_json())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }

    if let Some(path) = check {
        let stored = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        let min_speedup = parse_num(&stored, "budget_min_warm_speedup")
            .unwrap_or_else(|| {
                panic!("no budget_min_warm_speedup in {}", path.display())
            }) as f64;
        let mut failed = false;
        if report.treatments_flagged < report.treatments {
            eprintln!(
                "recall regression: only {}/{} injected release bugs \
                 flagged as regressed",
                report.treatments_flagged, report.treatments
            );
            failed = true;
        }
        if report.controls_flagged > 0 {
            eprintln!(
                "precision regression: {}/{} bug-free control releases \
                 flagged as regressed",
                report.controls_flagged, report.controls
            );
            failed = true;
        }
        let speedup = report.cold_secs / report.warm_secs;
        if speedup < min_speedup {
            eprintln!(
                "warm-differential regression: a repeat regression query \
                 is only {speedup:.1}x faster than cold (budget: >= \
                 {min_speedup}x)"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "release gate: {}/{} bugs flagged, {}/{} controls clean; \
             warm differential {speedup:.0}x faster than cold",
            report.treatments_flagged,
            report.treatments,
            report.controls - report.controls_flagged,
            report.controls,
        );
    }
}
