//! Warm-query benchmark of the fleetd generation-keyed query cache.
//!
//! Ingests a deterministic corpus once and measures what a dashboard
//! actually pays: the **cold** query (full fold + analysis), the
//! **warm** repeat (an analyzed-cache hit — clone + render only), and
//! the **1-delta** query (one new upload folded onto the cached
//! prefix). The same three measurements run against a fully spilled
//! daemon, whose warm queries must not pay the disk again. The wire
//! half of the story is measured byte-exactly: a coordinator's
//! `PartialNotModified` reply versus the full `PartialState` it
//! replaces.
//!
//! ```text
//! query [--smoke] [--write <path>] [--check <path>]
//! ```
//!
//! `--write` stores the report as JSON (see `BENCH_query.json` at the
//! repo root); `--check` re-runs the smoke measurement and fails
//! (exit 1) when the warm repeat is less than the stored
//! `budget_min_warm_speedup` times faster than cold, when the spilled
//! warm query is slower than the resident one beyond the stored
//! noise ratio, or when `NotModified` stops being measurably smaller
//! on the wire than a full partial. Every timing gate compares a
//! minimum over many repeats of a microsecond-scale path against a
//! millisecond-scale one, so the margins absorb scheduler noise, not
//! regressions.

use energydx_fleetd::fixture;
use energydx_fleetd::protocol::{PartialStatus, Response};
use energydx_fleetd::state::{
    FleetConfig, FleetState, PartialSinceOutcome, QueryError,
};
use energydx_fleetd::SpillConfig;
use energydx_trace::fault::{FaultInjector, FaultKind};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// The same damaged-corpus recipe as the ingest and spill benchmarks:
/// every 9th payload salvageable, every 23rd cut below the wire
/// header, so the measured queries run over a realistically mixed
/// accepted set.
fn corpus(users: usize, sessions: u64) -> Vec<Vec<u8>> {
    let mut injector = FaultInjector::new(0x1276, 1.0);
    let mut payloads = Vec::with_capacity(users * sessions as usize);
    for user in 0..users {
        for session in 0..sessions {
            let mut payload = fixture::payload(&format!("u{user:04}"), session);
            let i = payloads.len();
            if i % 23 == 7 {
                payload.truncate(6);
            } else if i % 9 == 4 {
                let kind = if (i / 9) % 2 == 0 {
                    FaultKind::Truncate
                } else {
                    FaultKind::BitFlip
                };
                payload = injector
                    .corrupt(&payload, kind)
                    .pop()
                    .expect("one payload in, one out");
            }
            payloads.push(payload);
        }
    }
    payloads
}

/// Warm repeats per measurement: the minimum over this many runs is
/// the figure, so one preempted run cannot inflate it.
const WARM_REPEATS: usize = 32;

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let result = f();
    (result, t0.elapsed().as_secs_f64())
}

/// Minimum seconds over `WARM_REPEATS` runs of one query.
fn warm_secs(state: &FleetState, app: &str) -> f64 {
    (0..WARM_REPEATS)
        .map(|_| {
            let (json, secs) = timed(|| state.diagnose_json(app, None));
            black_box(json.expect("app serves"));
            secs
        })
        .fold(f64::INFINITY, f64::min)
}

fn ingest(config: FleetConfig, payloads: &[Vec<u8>]) -> FleetState {
    let mut state = FleetState::new(config);
    for payload in payloads {
        black_box(state.submit("bench", payload));
    }
    state
}

struct Report {
    mode: &'static str,
    uploads: usize,
    accepted: usize,
    resident_cold_secs: f64,
    resident_warm_secs: f64,
    resident_delta_secs: f64,
    spilled_cold_secs: f64,
    spilled_warm_secs: f64,
    spilled_segments: usize,
    notmod_wire_bytes: usize,
    full_partial_wire_bytes: usize,
    budget_min_warm_speedup: u64,
    budget_spilled_warm_ratio: u64,
    budget_min_wire_shrink: u64,
}

impl Report {
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"mode\": \"{}\",\n  \"uploads\": {},\n  \
             \"accepted\": {},\n  \"resident_cold_secs\": {:.6},\n  \
             \"resident_warm_secs\": {:.6},\n  \
             \"resident_delta_secs\": {:.6},\n  \
             \"spilled_cold_secs\": {:.6},\n  \
             \"spilled_warm_secs\": {:.6},\n  \"spilled_segments\": {},\n  \
             \"notmod_wire_bytes\": {},\n  \
             \"full_partial_wire_bytes\": {},\n  \
             \"budget_min_warm_speedup\": {},\n  \
             \"budget_spilled_warm_ratio\": {},\n  \
             \"budget_min_wire_shrink\": {}\n}}\n",
            self.mode,
            self.uploads,
            self.accepted,
            self.resident_cold_secs,
            self.resident_warm_secs,
            self.resident_delta_secs,
            self.spilled_cold_secs,
            self.spilled_warm_secs,
            self.spilled_segments,
            self.notmod_wire_bytes,
            self.full_partial_wire_bytes,
            self.budget_min_warm_speedup,
            self.budget_spilled_warm_ratio,
            self.budget_min_wire_shrink,
        )
    }
}

fn run(smoke: bool) -> Report {
    let (users, sessions) = if smoke { (48, 2) } else { (400, 5) };
    let payloads = corpus(users, sessions);
    let spool = std::env::temp_dir()
        .join(format!("energydx-bench-query-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);

    // --- Resident daemon: cold, warm, 1-delta. -----------------------
    let resident_config = FleetConfig {
        jobs: 1,
        ..FleetConfig::default()
    };
    let mut resident = ingest(resident_config, &payloads);
    let (cold_json, resident_cold_secs) =
        timed(|| resident.diagnose_json("bench", None));
    let cold_json = cold_json.expect("bench app has accepted traces");
    let resident_warm_secs = warm_secs(&resident, "bench");
    let state_stats = resident.query_cache_stats();
    assert!(
        state_stats[0].hits as usize >= WARM_REPEATS,
        "warm queries must be cache hits, saw {} hits",
        state_stats[0].hits
    );
    // The cache must not change a byte: a cache-disabled daemon over
    // the same corpus serves the identical report.
    let plain = ingest(
        FleetConfig {
            jobs: 1,
            query_cache: false,
            ..FleetConfig::default()
        },
        &payloads,
    );
    assert_eq!(
        plain.diagnose_json("bench", None).unwrap(),
        cold_json,
        "the query cache changed the served bytes"
    );
    // 1-delta: one fresh upload folds onto the cached prefix.
    let extra = fixture::payload("u9999", 0);
    assert!(resident.submit("bench", &extra).accepted());
    let (delta_json, resident_delta_secs) =
        timed(|| resident.diagnose_json("bench", None));
    black_box(delta_json.expect("bench app serves"));

    // --- Spilled daemon: cold pays the disk once, warm never again. --
    let spilling_config = FleetConfig {
        jobs: 1,
        spill: Some(SpillConfig {
            dir: spool.clone(),
            // An unbounded budget: the spill below is explicit, and
            // the caches are allowed to retain what they fold.
            mem_budget: usize::MAX,
        }),
        ..FleetConfig::default()
    };
    let mut spilling = ingest(spilling_config, &payloads);
    spilling.spill_all();
    let spilled_segments = spilling.spilled_segments();
    assert!(spilled_segments > 0, "the corpus must spill something");
    let (spilled_json, spilled_cold_secs) =
        timed(|| spilling.diagnose_json("bench", None));
    assert_eq!(
        spilled_json.expect("bench app serves"),
        cold_json,
        "spilling changed the served bytes"
    );
    let spilled_warm_secs = warm_secs(&spilling, "bench");
    let accepted = spilling.accepted_total();

    // --- Wire sizes: byte-exact, no timing involved. -----------------
    let (notmod_wire_bytes, full_partial_wire_bytes) =
        wire_sizes(&spilling).expect("bench app answers a partial query");
    let _ = std::fs::remove_dir_all(&spool);

    Report {
        mode: if smoke { "smoke" } else { "full" },
        uploads: payloads.len(),
        accepted,
        resident_cold_secs,
        resident_warm_secs,
        resident_delta_secs,
        spilled_cold_secs,
        spilled_warm_secs,
        spilled_segments,
        notmod_wire_bytes,
        full_partial_wire_bytes,
        // A warm repeat is a clone + render against a cold full
        // fold + Steps 2-5; the real gap is far wider than 10x.
        budget_min_warm_speedup: 10,
        // Warm queries are analyzed-cache hits on both daemons, so
        // the ratio budget is pure scheduler-noise allowance.
        budget_spilled_warm_ratio: 2,
        budget_min_wire_shrink: 4,
    }
}

/// Encoded frame sizes of a `PartialNotModified` reply and the full
/// `PartialState` it stands in for — what one unchanged worker costs
/// a polling coordinator per query, before and after the delta
/// protocol.
fn wire_sizes(state: &FleetState) -> Result<(usize, usize), QueryError> {
    match state.epoch_partial_since("bench", None, None)? {
        PartialSinceOutcome::Changed {
            epoch,
            incarnation,
            generation,
            partial,
        } => {
            let full = Response::PartialState {
                status: PartialStatus::Found,
                epoch,
                incarnation,
                generation,
                partial,
            }
            .encode()
            .len();
            let notmod = Response::PartialNotModified { epoch }.encode().len();
            Ok((notmod, full))
        }
        PartialSinceOutcome::Unchanged { .. } => {
            unreachable!("a token-free query always returns the partial")
        }
    }
}

/// Pulls `"<key>": <n>` out of a stored report without a JSON
/// dependency.
fn parse_num(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let digits: String =
        rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn main() {
    let mut smoke = false;
    let mut write: Option<String> = None;
    let mut check: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--write" => write = args.next(),
            "--check" => check = args.next().map(PathBuf::from),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: query [--smoke] [--write <path>] [--check <path>]"
                );
                std::process::exit(2);
            }
        }
    }
    // The regression gate always runs the fast corpus: the budgets
    // are checked in from a smoke run.
    if check.is_some() {
        smoke = true;
    }

    let report = run(smoke);
    print!("{}", report.to_json());

    if let Some(path) = write {
        std::fs::write(&path, report.to_json())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }

    if let Some(path) = check {
        let stored = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        let budget = |key: &str| {
            parse_num(&stored, key)
                .unwrap_or_else(|| panic!("no {key} in {}", path.display()))
        };
        let min_speedup = budget("budget_min_warm_speedup") as f64;
        let warm_ratio = budget("budget_spilled_warm_ratio") as f64;
        let wire_shrink = budget("budget_min_wire_shrink") as usize;
        let speedup = report.resident_cold_secs / report.resident_warm_secs;
        let mut failed = false;
        if speedup < min_speedup {
            eprintln!(
                "warm-query regression: a repeat query is only {speedup:.1}x \
                 faster than cold (budget: >= {min_speedup}x)"
            );
            failed = true;
        }
        if report.spilled_warm_secs > report.resident_warm_secs * warm_ratio {
            eprintln!(
                "spilled-warm regression: {:.6}s vs resident {:.6}s — a warm \
                 spilled query is paying the disk again (noise budget: \
                 {warm_ratio}x)",
                report.spilled_warm_secs, report.resident_warm_secs
            );
            failed = true;
        }
        if report.notmod_wire_bytes * wire_shrink
            > report.full_partial_wire_bytes
        {
            eprintln!(
                "delta-protocol regression: NotModified is {} wire bytes vs \
                 {} for a full partial (budget: >= {wire_shrink}x smaller)",
                report.notmod_wire_bytes, report.full_partial_wire_bytes
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "warm {speedup:.0}x faster than cold; spilled warm {:.6}s vs \
             resident warm {:.6}s; NotModified {}B vs full partial {}B",
            report.spilled_warm_secs,
            report.resident_warm_secs,
            report.notmod_wire_bytes,
            report.full_partial_wire_bytes,
        );
    }
}
