//! Throughput/latency benchmark of the fleetd ingest pipeline.
//!
//! Drives the in-process daemon handle (`FleetdHandle`: bounded
//! queue, single ingest worker) with a deterministic fixture corpus —
//! a fraction of it damaged through the fault injector, so salvage
//! and quarantine are on the measured path, exactly as in production.
//! Everything runs on one CPU (`jobs = 1`, one producer): the numbers
//! are per-core figures, not a parallel-speedup showcase.
//!
//! Reported:
//!
//! - sustained `uploads_per_sec` through submit → queue → worker →
//!   fold, with p50/p99 end-to-end submit latency (a `submit` call
//!   blocks until its upload's outcome, so this is the full path);
//! - `query_secs` — one snapshot-consistent `diagnose` over the
//!   resident epoch state;
//! - `compact_secs` — collapsing the accumulated deltas;
//! - checkpoint encode/decode time and size per accepted trace.
//!
//! ```text
//! ingest [--smoke] [--obsv] [--write <path>] [--check <path>]
//! ```
//!
//! `--smoke` shrinks the corpus for CI; `--write` stores the report as
//! JSON (see `BENCH_ingest.json` at the repo root); `--check` re-runs
//! the measurement and fails (exit 1) if the checkpoint grows past the
//! `budget_checkpoint_bytes_per_trace` recorded in the given JSON file
//! — a byte count, fully deterministic, so the gate cannot flake on
//! machine speed. `--obsv` additionally records every submit latency
//! into a metrics histogram on the measured path, cross-checks the
//! histogram against the exact sorted percentiles, and (with
//! `--check`) fails if the histogram p50 blows far past the stored
//! `submit_p50_us` — a wide-margin sanity gate on the instrumented
//! path, not a tight timing assertion.

use energydx::EnergyDx;
use energydx_fleetd::checkpoint::{checkpoint_bytes, restore_bytes};
use energydx_fleetd::convert::bundles_to_input;
use energydx_fleetd::fixture;
use energydx_fleetd::state::{FleetConfig, FleetState};
use energydx_fleetd::{FleetdHandle, ServerConfig, SubmitReply};
use energydx_trace::fault::{FaultInjector, FaultKind};
use energydx_trace::store::TraceStore;
use std::hint::black_box;
use std::time::Instant;

/// The corpus, in sorted (user, session) submit order so the daemon's
/// accept order matches a batch `TraceStore` snapshot of the same
/// payloads. Every 9th payload is damaged but salvageable (alternating
/// truncation and bit flips), and every 23rd is cut below the wire
/// header — so repair, salvage, *and* quarantine are all on the
/// measured path.
fn corpus(users: usize, sessions: u64) -> Vec<Vec<u8>> {
    let mut injector = FaultInjector::new(0x1276, 1.0);
    let mut payloads = Vec::with_capacity(users * sessions as usize);
    for user in 0..users {
        for session in 0..sessions {
            let mut payload = fixture::payload(&format!("u{user:04}"), session);
            let i = payloads.len();
            if i % 23 == 7 {
                payload.truncate(6);
            } else if i % 9 == 4 {
                let kind = if (i / 9) % 2 == 0 {
                    FaultKind::Truncate
                } else {
                    FaultKind::BitFlip
                };
                payload = injector
                    .corrupt(&payload, kind)
                    .pop()
                    .expect("one payload in, one out");
            }
            payloads.push(payload);
        }
    }
    payloads
}

struct Report {
    mode: &'static str,
    uploads: usize,
    accepted: usize,
    quarantined: usize,
    uploads_per_sec: f64,
    submit_p50_us: f64,
    submit_p99_us: f64,
    ingest_secs: f64,
    query_secs: f64,
    compact_secs: f64,
    checkpoint_bytes: usize,
    checkpoint_encode_secs: f64,
    checkpoint_decode_secs: f64,
    budget_checkpoint_bytes_per_trace: u64,
    /// Histogram p50 of submit latency under `--obsv` (bucket upper
    /// bound, µs); `None` without the flag. Kept out of the JSON so
    /// the stored report format is flag-independent.
    obsv_submit_p50_us: Option<f64>,
}

impl Report {
    fn checkpoint_bytes_per_trace(&self) -> f64 {
        self.checkpoint_bytes as f64 / self.accepted.max(1) as f64
    }

    fn to_json(&self) -> String {
        format!(
            "{{\n  \"mode\": \"{}\",\n  \"uploads\": {},\n  \
             \"accepted\": {},\n  \"quarantined\": {},\n  \
             \"uploads_per_sec\": {:.0},\n  \
             \"submit_p50_us\": {:.1},\n  \"submit_p99_us\": {:.1},\n  \
             \"ingest_secs\": {:.6},\n  \"query_secs\": {:.6},\n  \
             \"compact_secs\": {:.6},\n  \"checkpoint\": \
             {{\"bytes\": {}, \"bytes_per_trace\": {:.1}, \
             \"encode_secs\": {:.6}, \"decode_secs\": {:.6}}},\n  \
             \"budget_checkpoint_bytes_per_trace\": {}\n}}\n",
            self.mode,
            self.uploads,
            self.accepted,
            self.quarantined,
            self.uploads_per_sec,
            self.submit_p50_us,
            self.submit_p99_us,
            self.ingest_secs,
            self.query_secs,
            self.compact_secs,
            self.checkpoint_bytes,
            self.checkpoint_bytes_per_trace(),
            self.checkpoint_encode_secs,
            self.checkpoint_decode_secs,
            self.budget_checkpoint_bytes_per_trace,
        )
    }
}

fn run(smoke: bool, obsv: bool) -> Report {
    let (users, sessions) = if smoke { (48, 2) } else { (400, 5) };
    let payloads = corpus(users, sessions);

    // Finer-than-default buckets (factor 2 from 1 µs) so the latency
    // histogram resolves sub-millisecond submits; the registry lives
    // outside the timed loop, the per-submit `observe` inside it —
    // that recording cost is exactly what `--obsv --check` gates.
    let submit_hist = obsv.then(|| {
        let reg = std::sync::Arc::new(energydx_obsv::MetricsRegistry::new());
        let buckets = energydx_stats::Buckets::exponential(1e-6, 2.0, 24)
            .expect("static bucket layout");
        reg.histogram("bench_submit_latency_seconds", &[], &buckets)
    });

    let fleet = FleetConfig {
        jobs: 1,
        ..FleetConfig::default()
    };
    let handle = FleetdHandle::start(ServerConfig {
        fleet: fleet.clone(),
        // Deep enough that a single blocking producer never sheds:
        // this measures the pipeline, not the backpressure valve.
        queue_depth: 16,
        ..ServerConfig::default()
    })
    .expect("no state dir, start cannot fail");

    // Ingest: one producer, end-to-end latency per upload (submit
    // blocks until the worker has folded the upload into the state).
    let mut latencies_us = Vec::with_capacity(payloads.len());
    let mut accepted = 0usize;
    let mut quarantined = 0usize;
    let t0 = Instant::now();
    for payload in &payloads {
        let t = Instant::now();
        let reply = handle.submit("bench", payload.clone());
        let secs = t.elapsed().as_secs_f64();
        if let Some(hist) = &submit_hist {
            hist.observe(secs);
        }
        latencies_us.push(secs * 1e6);
        match reply {
            SubmitReply::Outcome(outcome) => {
                if outcome.accepted() {
                    accepted += 1;
                } else {
                    quarantined += 1;
                }
            }
            other => panic!("unexpected submit reply: {other:?}"),
        }
    }
    let ingest_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let served = handle
        .diagnose_json("bench", None)
        .expect("bench app has accepted traces");
    let query_secs = t0.elapsed().as_secs_f64();

    // The report the daemon serves must equal the batch pipeline over
    // the same payloads — the numbers above are only worth publishing
    // for a daemon that keeps the batch-identity guarantee.
    let store = TraceStore::new();
    for payload in &payloads {
        black_box(store.ingest_wire(payload));
    }
    let batch = EnergyDx::new(fleet.analysis.clone())
        .with_jobs(1)
        .diagnose_reference(&bundles_to_input(&store.snapshot()))
        .to_canonical_json();
    assert_eq!(served, batch, "daemon diverged from the batch pipeline");

    // Checkpoint figures on a directly-held state (the handle owns
    // its own): same corpus, same accept order.
    let mut state = FleetState::new(fleet);
    for payload in &payloads {
        black_box(state.submit("bench", payload));
    }
    let t0 = Instant::now();
    let compacted = state.compact();
    let compact_secs = t0.elapsed().as_secs_f64();
    assert!(compacted > 0, "the bench epoch must have deltas");

    let t0 = Instant::now();
    let encoded = checkpoint_bytes(&state);
    let checkpoint_encode_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let restored = restore_bytes(&encoded, state.config().clone())
        .expect("round trip of a fresh checkpoint");
    let checkpoint_decode_secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        restored
            .diagnose_json("bench", None)
            .expect("restored state serves the same app"),
        served,
        "checkpoint round trip changed the report"
    );

    latencies_us.sort_by(f64::total_cmp);
    let pct = |p: f64| {
        let idx = ((latencies_us.len() as f64 * p) as usize)
            .min(latencies_us.len() - 1);
        latencies_us[idx]
    };

    // The histogram must agree with the exact sorted latencies it
    // observed: same count, same total, and a p50 bucket bracketing
    // the exact p50 (factor-2 buckets, so within one bucket each way).
    let obsv_submit_p50_us = submit_hist.map(|hist| {
        let snap = hist.snapshot();
        assert_eq!(snap.count(), latencies_us.len() as u64);
        let exact_sum: f64 = latencies_us.iter().sum::<f64>() / 1e6;
        assert!(
            (snap.sum() - exact_sum).abs() <= exact_sum * 1e-9 + 1e-12,
            "histogram sum {} diverged from exact {exact_sum}",
            snap.sum()
        );
        let bound = snap.quantile(0.5).expect("non-empty histogram");
        let exact_p50 = pct(0.50) / 1e6;
        assert!(
            exact_p50 <= bound * 2.0 && bound <= exact_p50 * 2.0,
            "histogram p50 bound {bound}s is more than one factor-2 \
             bucket away from the exact p50 {exact_p50}s"
        );
        bound * 1e6
    });

    let mut out = Report {
        mode: if smoke { "smoke" } else { "full" },
        uploads: payloads.len(),
        accepted,
        quarantined,
        uploads_per_sec: payloads.len() as f64 / ingest_secs.max(1e-9),
        submit_p50_us: pct(0.50),
        submit_p99_us: pct(0.99),
        ingest_secs,
        query_secs,
        compact_secs,
        checkpoint_bytes: encoded.len(),
        checkpoint_encode_secs,
        checkpoint_decode_secs,
        budget_checkpoint_bytes_per_trace: 0,
        obsv_submit_p50_us,
    };
    // The gate metric is a byte count — deterministic for a fixed
    // corpus — so a modest margin only absorbs intentional format
    // evolution, not timing noise.
    out.budget_checkpoint_bytes_per_trace =
        (out.checkpoint_bytes_per_trace() * 1.5).ceil() as u64;
    out
}

/// Pulls `"budget_checkpoint_bytes_per_trace": <n>` out of a stored
/// report without a JSON dependency.
fn parse_budget(json: &str) -> Option<u64> {
    let key = "\"budget_checkpoint_bytes_per_trace\":";
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let digits: String =
        rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Pulls `"submit_p50_us": <x.y>` out of a stored report.
fn parse_stored_p50(json: &str) -> Option<f64> {
    let key = "\"submit_p50_us\":";
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let digits: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    digits.parse().ok()
}

fn main() {
    let mut smoke = false;
    let mut obsv = false;
    let mut write: Option<String> = None;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--obsv" => obsv = true,
            "--write" => write = args.next(),
            "--check" => check = args.next(),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: ingest [--smoke] [--obsv] [--write <path>] \
                     [--check <path>]"
                );
                std::process::exit(2);
            }
        }
    }
    // The regression gate always runs the fast corpus: the budget is
    // checked in from a smoke run and per-trace figures are
    // size-stable.
    if check.is_some() {
        smoke = true;
    }

    let report = run(smoke, obsv);
    print!("{}", report.to_json());
    if let Some(p50) = report.obsv_submit_p50_us {
        eprintln!("obsv: submit latency histogram p50 <= {p50:.1} us");
    }

    if let Some(path) = write {
        std::fs::write(&path, report.to_json())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }

    if let Some(path) = check {
        let stored = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let budget = parse_budget(&stored).unwrap_or_else(|| {
            panic!("no budget_checkpoint_bytes_per_trace in {path}")
        });
        let measured = report.checkpoint_bytes_per_trace();
        if measured > budget as f64 {
            eprintln!(
                "checkpoint regression: {measured:.1} bytes/trace \
                 exceeds the checked-in budget of {budget}"
            );
            std::process::exit(1);
        }
        eprintln!(
            "checkpoint within budget: {measured:.1} <= {budget} \
             bytes/trace"
        );
        // Instrumented-path sanity gate: the histogram p50 may not
        // blow two orders of magnitude past the stored p50. The 100x
        // margin absorbs machine differences; it trips on structural
        // regressions (an accidental sleep, quadratic work per
        // submit), not on noise.
        if let Some(measured_p50) = report.obsv_submit_p50_us {
            let stored_p50 = parse_stored_p50(&stored)
                .unwrap_or_else(|| panic!("no submit_p50_us in {path}"));
            if measured_p50 > stored_p50 * 100.0 {
                eprintln!(
                    "instrumented-submit regression: histogram p50 \
                     {measured_p50:.1} us exceeds 100x the stored p50 \
                     {stored_p50:.1} us"
                );
                std::process::exit(1);
            }
            eprintln!(
                "instrumented submit within bounds: p50 {measured_p50:.1} \
                 <= 100x {stored_p50:.1} us"
            );
        }
    }
}
