//! Regenerates Fig. 16: per-app code reduction, EnergyDx vs the
//! CheckAll baseline (paper: 93 % vs 67 %; 168 vs 1 205 lines).

use energydx_bench::comparison;
use energydx_bench::render::{pct, table};

fn main() {
    let result = comparison::measure();
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.id.to_string(),
                r.name.clone(),
                pct(r.energydx),
                pct(r.checkall),
                r.energydx_lines.to_string(),
                r.checkall_lines.to_string(),
            ]
        })
        .collect();
    println!("Fig. 16 — code reduction: EnergyDx vs CheckAll");
    println!(
        "{}",
        table(
            &["ID", "App", "EnergyDx", "CheckAll", "EDx lines", "CA lines"],
            &rows
        )
    );
    let mean_edx_lines: f64 = result
        .rows
        .iter()
        .map(|r| r.energydx_lines as f64)
        .sum::<f64>()
        / result.rows.len() as f64;
    let mean_ca_lines: f64 = result
        .rows
        .iter()
        .map(|r| r.checkall_lines as f64)
        .sum::<f64>()
        / result.rows.len() as f64;
    println!(
        "averages: EnergyDx {} / {:.0} lines (paper 93% / 168), CheckAll {} / {:.0} lines (paper 67% / 1205)",
        pct(result.mean_energydx()),
        mean_edx_lines,
        pct(result.mean_checkall()),
        mean_ca_lines,
    );
}
