//! Regenerates the §IV-F overhead numbers: instrumentation latency
//! (paper: +8.3 %, < 9.38 ms average) and sampler power (paper: 32 mW
//! ≈ 4.5 % of phone power).

use energydx_bench::overhead;
use energydx_bench::render::{pct, table};

fn main() {
    let result = overhead::measure();
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.2}", r.base_latency_ms),
                format!("{:.2}", r.instrumented_latency_ms),
                pct(r.latency_overhead()),
            ]
        })
        .collect();
    println!("§IV-F — instrumentation latency per app (ms)");
    println!(
        "{}",
        table(&["App", "Original", "Instrumented", "Overhead"], &rows)
    );
    println!(
        "mean latency overhead: {} (paper: 8.3%)",
        pct(result.mean_latency_overhead())
    );
    println!(
        "mean instrumented event latency: {:.2} ms (paper: < 9.38 ms)",
        result.mean_instrumented_latency_ms()
    );
    println!(
        "sampler power: {:.0} mW = {} of typical phone power (paper: 32 mW / 4.5%)",
        result.sampler_mw,
        pct(result.sampler_fraction)
    );
}
