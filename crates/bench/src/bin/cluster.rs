//! Throughput/latency benchmark of the fleetd cluster path: an
//! in-process coordinator routing a deterministic fixture corpus (a
//! fraction damaged, as in the ingest bench) across three workers,
//! then answering one merged query and one replication sweep.
//!
//! Reported:
//!
//! - sustained `uploads_per_sec` through route → transport → worker
//!   submit → outcome, with p50/p99 end-to-end submit latency — the
//!   full coordinator hop, not just worker ingest;
//! - `query_secs` — one merged diagnose fanned across all shards and
//!   rebased into a single fleet answer;
//! - `replicate_secs` — one full checkpoint-replication sweep;
//! - `replica_bytes_per_trace` — total replicated checkpoint bytes
//!   over accepted traces, the deterministic regression gate.
//!
//! ```text
//! cluster [--smoke] [--write <path>] [--check <path>]
//! ```
//!
//! `--write` stores the report as JSON (see `BENCH_cluster.json` at
//! the repo root); `--check` re-runs the measurement (smoke corpus)
//! and fails (exit 1) if replicated checkpoints grow past the stored
//! `budget_replica_bytes_per_trace` — a byte count, fully
//! deterministic, so the gate cannot flake on machine speed. The
//! merged answer is asserted byte-identical to the batch pipeline
//! before any number is printed.

use energydx_fleetd::cluster::shard_for_payload;
use energydx_fleetd::coordinator::{Coordinator, CoordinatorConfig};
use energydx_fleetd::fixture;
use energydx_fleetd::protocol::{OutcomeCode, Request, Response};
use energydx_fleetd::state::{FleetConfig, FleetState};
use energydx_fleetd::{
    Dispatch, FleetdHandle, InProcessTransport, ServerConfig, WorkerSlot,
    WorkerTransport,
};
use energydx_trace::fault::{FaultInjector, FaultKind};
use std::hint::black_box;
use std::sync::{Arc, Mutex};
use std::time::Instant;

const WORKERS: usize = 3;
const APP: &str = "bench";

/// Same damage mix as the ingest bench: every 23rd payload cut below
/// the wire header (quarantine), every 9th damaged but salvageable —
/// repair, salvage, and quarantine all ride the routed path.
fn corpus(users: usize, sessions: u64) -> Vec<Vec<u8>> {
    let mut injector = FaultInjector::new(0x1276, 1.0);
    let mut payloads = Vec::with_capacity(users * sessions as usize);
    for user in 0..users {
        for session in 0..sessions {
            let mut payload = fixture::payload(&format!("u{user:04}"), session);
            let i = payloads.len();
            if i % 23 == 7 {
                payload.truncate(6);
            } else if i % 9 == 4 {
                let kind = if (i / 9) % 2 == 0 {
                    FaultKind::Truncate
                } else {
                    FaultKind::BitFlip
                };
                payload = injector
                    .corrupt(&payload, kind)
                    .pop()
                    .expect("one payload in, one out");
            }
            payloads.push(payload);
        }
    }
    payloads
}

struct Report {
    mode: &'static str,
    workers: usize,
    uploads: usize,
    accepted: usize,
    quarantined: usize,
    uploads_per_sec: f64,
    submit_p50_us: f64,
    submit_p99_us: f64,
    ingest_secs: f64,
    query_secs: f64,
    replicate_secs: f64,
    replica_bytes: usize,
    budget_replica_bytes_per_trace: u64,
}

impl Report {
    fn replica_bytes_per_trace(&self) -> f64 {
        self.replica_bytes as f64 / self.accepted.max(1) as f64
    }

    fn to_json(&self) -> String {
        format!(
            "{{\n  \"mode\": \"{}\",\n  \"workers\": {},\n  \
             \"uploads\": {},\n  \"accepted\": {},\n  \
             \"quarantined\": {},\n  \"uploads_per_sec\": {:.0},\n  \
             \"submit_p50_us\": {:.1},\n  \"submit_p99_us\": {:.1},\n  \
             \"ingest_secs\": {:.6},\n  \"query_secs\": {:.6},\n  \
             \"replicate_secs\": {:.6},\n  \"replica\": \
             {{\"bytes\": {}, \"bytes_per_trace\": {:.1}}},\n  \
             \"budget_replica_bytes_per_trace\": {}\n}}\n",
            self.mode,
            self.workers,
            self.uploads,
            self.accepted,
            self.quarantined,
            self.uploads_per_sec,
            self.submit_p50_us,
            self.submit_p99_us,
            self.ingest_secs,
            self.query_secs,
            self.replicate_secs,
            self.replica_bytes,
            self.replica_bytes_per_trace(),
            self.budget_replica_bytes_per_trace,
        )
    }
}

fn run(smoke: bool) -> Report {
    let (users, sessions) = if smoke { (48, 2) } else { (400, 5) };
    let payloads = corpus(users, sessions);

    let fleet = FleetConfig {
        jobs: 1,
        ..FleetConfig::default()
    };
    let slots: Vec<WorkerSlot> = (0..WORKERS)
        .map(|_| {
            let handle = FleetdHandle::start(ServerConfig {
                fleet: fleet.clone(),
                queue_depth: 16,
                ..ServerConfig::default()
            })
            .expect("no state dir, start cannot fail");
            Arc::new(Mutex::new(Some(Arc::new(handle))))
        })
        .collect();
    let transports: Vec<Box<dyn WorkerTransport>> = slots
        .iter()
        .map(|slot| {
            Box::new(InProcessTransport::new(Arc::clone(slot)))
                as Box<dyn WorkerTransport>
        })
        .collect();
    let coordinator = Coordinator::new(
        CoordinatorConfig {
            fleet: fleet.clone(),
            ..CoordinatorConfig::default()
        },
        transports,
    )
    .expect("in-memory replicas, startup cannot fail");

    // Ingest: one producer through the full coordinator hop.
    let mut latencies_us = Vec::with_capacity(payloads.len());
    let mut accepted = 0usize;
    let mut quarantined = 0usize;
    let t0 = Instant::now();
    for payload in &payloads {
        let t = Instant::now();
        let resp = coordinator.handle_request(Request::Submit {
            app: APP.to_string(),
            payload: payload.clone(),
        });
        latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
        match resp {
            Response::Outcome {
                code: OutcomeCode::Rejected,
                ..
            } => quarantined += 1,
            Response::Outcome { .. } => accepted += 1,
            other => panic!("unexpected submit response: {other:?}"),
        }
    }
    let ingest_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let served = match coordinator.handle_request(Request::Diagnose {
        app: APP.to_string(),
        epoch: None,
    }) {
        Response::Report { json } => json,
        other => panic!("unexpected diagnose response: {other:?}"),
    };
    let query_secs = t0.elapsed().as_secs_f64();

    // The merged answer must equal one daemon fed the same payloads
    // in shard-partition order (the coordinator concatenates
    // per-worker accepted sequences by worker index) — the numbers
    // above are only worth publishing for a cluster that keeps the
    // batch-identity guarantee.
    let mut state = FleetState::new(fleet.clone());
    for shard in 0..WORKERS {
        for payload in &payloads {
            if shard_for_payload(APP, payload, &fleet.repair, WORKERS) == shard
            {
                black_box(state.submit(APP, payload));
            }
        }
    }
    let batch = state
        .diagnose_json(APP, None)
        .expect("reference diagnosis over the bench app");
    assert_eq!(served, batch, "cluster diverged from the batch pipeline");

    // One replication sweep, then the replicated bytes re-fetched
    // directly from each worker (identical checkpoints — the sweep
    // just moved them) for the deterministic size figure.
    let t0 = Instant::now();
    match coordinator.handle_request(Request::Checkpoint) {
        Response::Done => {}
        other => panic!("unexpected checkpoint response: {other:?}"),
    }
    let replicate_secs = t0.elapsed().as_secs_f64();
    let replica_bytes: usize = slots
        .iter()
        .map(|slot| {
            let handle =
                Arc::clone(slot.lock().unwrap().as_ref().expect("live worker"));
            match handle.handle_request(Request::FetchCheckpoint) {
                Response::CheckpointData { data } => data.len(),
                other => panic!("unexpected fetch response: {other:?}"),
            }
        })
        .sum();

    latencies_us.sort_by(f64::total_cmp);
    let pct = |p: f64| {
        let idx = ((latencies_us.len() as f64 * p) as usize)
            .min(latencies_us.len() - 1);
        latencies_us[idx]
    };

    let mut out = Report {
        mode: if smoke { "smoke" } else { "full" },
        workers: WORKERS,
        uploads: payloads.len(),
        accepted,
        quarantined,
        uploads_per_sec: payloads.len() as f64 / ingest_secs.max(1e-9),
        submit_p50_us: pct(0.50),
        submit_p99_us: pct(0.99),
        ingest_secs,
        query_secs,
        replicate_secs,
        replica_bytes,
        budget_replica_bytes_per_trace: 0,
    };
    // A byte count over a fixed corpus — deterministic, so the margin
    // only absorbs intentional checkpoint-format evolution.
    out.budget_replica_bytes_per_trace =
        (out.replica_bytes_per_trace() * 1.5).ceil() as u64;
    out
}

/// Pulls `"budget_replica_bytes_per_trace": <n>` out of a stored
/// report without a JSON dependency.
fn parse_budget(json: &str) -> Option<u64> {
    let key = "\"budget_replica_bytes_per_trace\":";
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let digits: String =
        rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn main() {
    let mut smoke = false;
    let mut write: Option<String> = None;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--write" => write = args.next(),
            "--check" => check = args.next(),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: cluster [--smoke] [--write <path>] \
                     [--check <path>]"
                );
                std::process::exit(2);
            }
        }
    }
    // The regression gate always runs the fast corpus: the budget is
    // checked in from a smoke run and per-trace figures are
    // size-stable.
    if check.is_some() {
        smoke = true;
    }

    let report = run(smoke);
    print!("{}", report.to_json());

    if let Some(path) = write {
        std::fs::write(&path, report.to_json())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }

    if let Some(path) = check {
        let stored = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let budget = parse_budget(&stored).unwrap_or_else(|| {
            panic!("no budget_replica_bytes_per_trace in {path}")
        });
        let measured = report.replica_bytes_per_trace();
        if measured > budget as f64 {
            eprintln!(
                "replica regression: {measured:.1} bytes/trace exceeds \
                 the checked-in budget of {budget}"
            );
            std::process::exit(1);
        }
        eprintln!(
            "replicas within budget: {measured:.1} <= {budget} bytes/trace"
        );
    }
}
