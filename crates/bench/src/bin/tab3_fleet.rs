//! Regenerates Table III: the 40 evaluation apps with per-app code
//! reduction (paper average: 93 %).

use energydx_bench::render::{pct, table};
use energydx_bench::tab3;

fn main() {
    let result = tab3::measure();
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.id.to_string(),
                r.name.clone(),
                r.downloads.clone(),
                r.cause.clone(),
                pct(r.code_reduction),
                r.total_lines.to_string(),
                r.diagnosis_lines.to_string(),
            ]
        })
        .collect();
    println!("Table III — apps used to evaluate EnergyDx");
    println!(
        "{}",
        table(
            &[
                "ID",
                "App",
                "Downloads",
                "Root Cause",
                "Code",
                "N_All",
                "N_Diag"
            ],
            &rows
        )
    );
    println!(
        "average code reduction: {} (paper: 93%)",
        pct(result.mean_reduction())
    );
    println!(
        "average lines to read: {:.0} (paper: 168)",
        result.mean_diagnosis_lines()
    );
}
