//! Regenerates the §IV-B comparison: EnergyDx vs No-sleep Detection
//! vs eDelta (paper: 93 % vs 52.5 % vs 65 %).

use energydx_bench::comparison;
use energydx_bench::render::{pct, table};

fn main() {
    let result = comparison::measure();
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.id.to_string(),
                r.name.clone(),
                r.cause.to_string(),
                pct(r.energydx),
                pct(r.nosleep),
                pct(r.edelta),
            ]
        })
        .collect();
    println!("§IV-B — code reduction per tool");
    println!(
        "{}",
        table(
            &["ID", "App", "Cause", "EnergyDx", "No-sleep", "eDelta"],
            &rows
        )
    );
    println!(
        "averages: EnergyDx {} (paper 93%), No-sleep {} (paper 52.5%), eDelta {} (paper 65%)",
        pct(result.mean_energydx()),
        pct(result.mean_nosleep()),
        pct(result.mean_edelta()),
    );
    println!(
        "detections: No-sleep {}/40 (paper 21), eDelta {}/40 (paper 26)",
        result.nosleep_detected(),
        result.edelta_detected(),
    );
}
