//! Regenerates Table II and Figs. 7/8: the K-9 Mail diagnosis
//! walk-through and the top reported events.

use energydx_bench::k9;
use energydx_bench::render::{pct, series, table};

fn main() {
    let result = k9::measure();

    println!("Fig. 7a — raw event power (impacted trace)");
    println!("{}", series("raw (mW)", result.raw_series()));
    println!("Fig. 7b — normalized event power");
    println!("{}", series("normalized", result.normalized_series()));
    println!("Fig. 7c — variation amplitude");
    println!("{}", series("amplitude", result.amplitude_series()));

    if let Some(fence) = result.upper_fence() {
        println!("Fig. 8 — detection fence (Q3 + 3*IQR): {fence:.2}");
    }
    let points =
        &result.run.report.traces[result.plotted_trace].manifestation_points;
    for p in points {
        println!(
            "  manifestation point at instance {} ({}), amplitude {:.2}",
            p.instance_index, p.event, p.amplitude
        );
    }
    println!();

    println!("Table II — top K-9 Mail events reported by EnergyDx");
    let rows: Vec<Vec<String>> = result
        .table2()
        .into_iter()
        .enumerate()
        .map(|(i, (event, fraction))| {
            vec![(i + 1).to_string(), event, pct(fraction)]
        })
        .collect();
    println!("{}", table(&["Order", "Event", "%"], &rows));
    println!(
        "code search space: {} of {} lines (reduction {})",
        result.run.diagnosis_lines(),
        result.run.code_index.total_lines,
        pct(result.run.code_reduction()),
    );
}
