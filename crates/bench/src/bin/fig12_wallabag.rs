//! Regenerates Figs. 12/13 and Table V: the Wallabag case study
//! (deleting an already-deleted article makes the sync retry forever).

use energydx_bench::casestudy;
use energydx_bench::render::{pct, series, table};
use energydx_workload::Scenario;

fn main() {
    let cs = casestudy::measure(Scenario::wallabag());
    let trace = &cs.run.report.traces[cs.plotted_trace];

    println!("Fig. 12a — raw event power (impacted trace)");
    println!("{}", series("raw (mW)", &trace.raw_power_mw));
    println!("Fig. 12b — normalized event power");
    println!("{}", series("normalized", &trace.normalized_power));
    println!("Fig. 12c — variation amplitude");
    println!("{}", series("amplitude", &trace.amplitudes));

    println!("Fig. 13 — manifestation point detection");
    if let Some(fence) = trace.upper_fence {
        println!("  fence (Q3 + 3*IQR): {fence:.2}");
    }
    for p in &trace.manifestation_points {
        println!(
            "  manifestation point at instance {} ({}), amplitude {:.2}",
            p.instance_index, p.event, p.amplitude
        );
    }
    println!();

    println!("Table V — events reported to developers (Wallabag)");
    let rows: Vec<Vec<String>> = cs
        .event_table()
        .into_iter()
        .enumerate()
        .map(|(i, (event, fraction))| {
            vec![(i + 1).to_string(), event, pct(fraction)]
        })
        .collect();
    println!("{}", table(&["Order", "Event", "%"], &rows));
    println!(
        "code search space: {} of {} lines (paper: 306 of 21424)",
        cs.run.diagnosis_lines(),
        cs.run.code_index.total_lines
    );
}
