//! Extension experiment: wall-clock scaling of the fleet-parallel
//! pipeline vs. the sequential reference, with a byte-equality check
//! of every configuration's report.

use energydx_bench::fleetscale;
use energydx_bench::render::table;

fn main() {
    let users = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(48);
    let points = fleetscale::measure(users, 3);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                format!("{:.1}", p.millis),
                format!("{:.2}x", p.speedup),
                if p.identical {
                    "yes".to_string()
                } else {
                    "NO".to_string()
                },
            ]
        })
        .collect();
    println!(
        "Fleet-parallel scaling, {users} users ({} hardware threads)",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    println!(
        "{}",
        table(&["Configuration", "ms", "Speedup", "Identical"], &rows)
    );
    if points.iter().any(|p| !p.identical) {
        eprintln!("DIVERGENCE: some configuration changed the report");
        std::process::exit(1);
    }
}
