//! Shared experiment runner: scenario → traces → diagnosis.

use energydx::report::CodeIndex;
use energydx::{AnalysisConfig, DiagnosisInput, DiagnosisReport, EnergyDx};
use energydx_workload::scenario::Variant;
use energydx_workload::{CollectedTraces, FleetApp, Scenario};

/// Everything one diagnosed scenario produces.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Scenario name.
    pub name: String,
    /// The collected faulty-build traces.
    pub collected: CollectedTraces,
    /// The Step-1 input.
    pub input: DiagnosisInput,
    /// The EnergyDx report.
    pub report: DiagnosisReport,
    /// Source-line index for the code-reduction metric.
    pub code_index: CodeIndex,
    /// The injected root-cause event.
    pub root_cause: String,
}

impl ScenarioRun {
    /// EnergyDx's code reduction for this app (§IV-B metric over the
    /// top-k reported events).
    pub fn code_reduction(&self) -> f64 {
        self.code_index
            .code_reduction(self.report.reported_events())
    }

    /// Lines the developer must read with EnergyDx's report.
    pub fn diagnosis_lines(&self) -> u64 {
        self.code_index
            .diagnosis_lines(self.report.reported_events())
    }
}

/// Collects and diagnoses the faulty build of one scenario.
pub fn run_scenario(scenario: &Scenario) -> ScenarioRun {
    let collected = scenario
        .collect(Variant::Faulty)
        .expect("scenario scripts are legal");
    let input = collected.diagnosis_input();
    let config = AnalysisConfig::default()
        .with_developer_fraction(scenario.developer_fraction());
    let report = EnergyDx::new(config).diagnose(&input);
    ScenarioRun {
        name: scenario.name.clone(),
        collected,
        input,
        report,
        code_index: scenario.code_index(),
        root_cause: scenario.root_cause_event(),
    }
}

/// Runs the whole 40-app fleet (expensive: ~400 simulated sessions).
pub fn run_fleet() -> Vec<(FleetApp, ScenarioRun)> {
    energydx_workload::fleet()
        .into_iter()
        .map(|app| {
            let run = run_scenario(&app.scenario());
            (app, run)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_scenario_produces_consistent_artifacts() {
        let mut s = Scenario::tinfoil();
        s.n_users = 4;
        let run = run_scenario(&s);
        assert_eq!(run.input.len(), 4);
        assert_eq!(run.report.traces.len(), 4);
        assert!(run.code_index.total_lines > 0);
        assert!(run.code_reduction() <= 1.0);
        assert!(run.root_cause.contains("menu_item_newsfeed"));
    }
}
