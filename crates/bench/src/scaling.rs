//! User-count scaling: how diagnosis quality depends on how many
//! volunteers contribute traces.
//!
//! The paper collects from "more than 30 different volunteer users" but
//! does not study how many are actually needed. Steps 2/3 normalize
//! against the population of instances across traces and Step 5 filters
//! by impacted fraction, so both should degrade gracefully as the
//! population shrinks; this harness measures that.

use energydx::distance::event_distance;
use energydx::{AnalysisConfig, EnergyDx};
use energydx_workload::scenario::Variant;
use energydx_workload::Scenario;

/// Quality of one (scenario, user-count) cell.
#[derive(Debug, Clone)]
pub struct ScalingCell {
    /// Scenario name.
    pub app: String,
    /// Number of simulated users.
    pub users: usize,
    /// Per-trace detection precision.
    pub precision: f64,
    /// Per-trace detection recall.
    pub recall: f64,
    /// Event distance from the root cause, when measurable.
    pub distance: Option<usize>,
    /// Code reduction of the report.
    pub reduction: f64,
}

/// Runs one scenario at a given user count.
pub fn measure_cell(base: &Scenario, users: usize) -> ScalingCell {
    let mut scenario = base.clone();
    scenario.n_users = users;
    let collected = scenario
        .collect(Variant::Faulty)
        .expect("scenario scripts are legal");
    let input = collected.diagnosis_input();
    let config = AnalysisConfig::default()
        .with_developer_fraction(scenario.developer_fraction());
    let report = EnergyDx::new(config).diagnose(&input);

    let impacted_users =
        (scenario.impacted_fraction * users as f64).round() as usize;
    let detected: std::collections::BTreeSet<usize> =
        report.impacted_traces().into_iter().collect();
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for trace in 0..users {
        match (trace < impacted_users, detected.contains(&trace)) {
            (true, true) => tp += 1,
            (true, false) => fn_ += 1,
            (false, true) => fp += 1,
            (false, false) => {}
        }
    }
    ScalingCell {
        app: scenario.name.clone(),
        users,
        precision: if tp + fp == 0 {
            1.0
        } else {
            tp as f64 / (tp + fp) as f64
        },
        recall: if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        },
        distance: event_distance(&report, &scenario.root_cause_event()),
        reduction: scenario
            .code_index()
            .code_reduction(report.reported_events()),
    }
}

/// The sweep: the four case studies at 4–32 users.
pub fn sweep() -> Vec<ScalingCell> {
    let scenarios = [
        Scenario::k9mail(),
        Scenario::opengps(),
        Scenario::wallabag(),
        Scenario::tinfoil(),
    ];
    let mut out = Vec::new();
    for scenario in &scenarios {
        for users in [4usize, 8, 16, 32] {
            out.push(measure_cell(scenario, users));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_holds_at_30_plus_users_like_the_paper() {
        // The paper's operating point: 30+ volunteers. At 32 users the
        // diagnosis must be precise and complete on a case study.
        let cell = measure_cell(&Scenario::opengps(), 32);
        assert!(cell.recall > 0.85, "recall {}", cell.recall);
        assert!(cell.precision > 0.85, "precision {}", cell.precision);
        assert!(cell.reduction > 0.9);
    }
}
