//! Plain-text rendering helpers for the experiment binaries.

/// Renders a table with a header row and aligned columns.
///
/// # Examples
///
/// ```
/// # use energydx_bench::render::table;
/// let out = table(
///     &["App", "Reduction"],
///     &[vec!["K-9 Mail".to_string(), "99%".to_string()]],
/// );
/// assert!(out.contains("K-9 Mail"));
/// ```
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> =
        header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders an ASCII sparkline-style series (for figure binaries):
/// one `(x, y)` pair per line plus a proportional bar.
pub fn series(name: &str, values: &[f64]) -> String {
    let max = values.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
    let mut out = format!("# {name} (n = {}, max = {max:.1})\n", values.len());
    for (i, v) in values.iter().enumerate() {
        let bar_len = ((v / max) * 50.0).max(0.0).round() as usize;
        out.push_str(&format!("{i:>5}  {v:>10.2}  {}\n", "#".repeat(bar_len)));
    }
    out
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let out = table(
            &["A", "Bee"],
            &[
                vec!["x".into(), "1".into()],
                vec!["long-cell".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("A"));
        assert!(lines[2].starts_with("x"));
    }

    #[test]
    fn series_scales_bars() {
        let out = series("test", &[0.0, 5.0, 10.0]);
        assert!(out.contains("# test"));
        let bars: Vec<usize> = out
            .lines()
            .skip(1)
            .map(|l| l.chars().filter(|&c| c == '#').count())
            .collect();
        assert!(bars[2] > bars[1]);
        assert_eq!(bars[0], 0);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.934), "93.4%");
    }
}
