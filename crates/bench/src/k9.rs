//! The K-9 Mail experiments: Fig. 3 (power trace), Figs. 7/8
//! (pipeline walk-through), and Table II (top reported events).

use crate::run::{run_scenario, ScenarioRun};
use energydx::report::RankedEvent;
use energydx_dexir::module::MethodKey;
use energydx_workload::Scenario;

/// The assembled K-9 Mail experiment output.
#[derive(Debug, Clone)]
pub struct K9Result {
    /// The full run (report holds the Fig. 7 series per trace).
    pub run: ScenarioRun,
    /// Index of the first impacted trace (the one plotted in
    /// Figs. 3/7/8).
    pub plotted_trace: usize,
}

/// Background power of the plotted session before and after the
/// manifestation point — the Fig.-3 story: the phone at rest used to
/// draw idle power, and after the misconfiguration it keeps retrying.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackgroundPower {
    /// Mean background power before the manifestation point (mW).
    pub before_mw: f64,
    /// Mean background power after it (mW).
    pub after_mw: f64,
}

impl K9Result {
    /// The raw per-instance power series of the plotted trace (Fig. 7a;
    /// Fig. 3's shape).
    pub fn raw_series(&self) -> &[f64] {
        &self.run.report.traces[self.plotted_trace].raw_power_mw
    }

    /// The normalized series (Fig. 7b).
    pub fn normalized_series(&self) -> &[f64] {
        &self.run.report.traces[self.plotted_trace].normalized_power
    }

    /// The variation amplitudes (Fig. 7c).
    pub fn amplitude_series(&self) -> &[f64] {
        &self.run.report.traces[self.plotted_trace].amplitudes
    }

    /// The detection fence (Fig. 8).
    pub fn upper_fence(&self) -> Option<f64> {
        self.run.report.traces[self.plotted_trace].upper_fence
    }

    /// The plotted session's raw power samples over time (the Fig.-3
    /// x-axis is sample points).
    pub fn power_samples(&self) -> Vec<f64> {
        self.run.collected.pairs[self.plotted_trace]
            .1
            .samples()
            .iter()
            .map(|s| s.total_mw)
            .collect()
    }

    /// Mean background (`Idle(No_Display)`) power before vs after the
    /// first manifestation point — Fig. 3's normal-vs-abnormal levels.
    pub fn background_power(&self) -> BackgroundPower {
        let trace = &self.run.report.traces[self.plotted_trace];
        let (events, power) = &self.run.collected.pairs[self.plotted_trace];
        let mp_index = trace
            .manifestation_points
            .first()
            .map(|p| p.instance_index)
            .unwrap_or(0);
        let mut instances = events.pair_instances();
        instances.sort_by_key(|i| i.start_ms);
        let mp_time = instances
            .get(mp_index)
            .map(|i| i.start_ms)
            .unwrap_or(u64::MAX);
        let mut before = (0.0, 0u32);
        let mut after = (0.0, 0u32);
        for idle in instances
            .iter()
            .filter(|i| i.event == energydx_droidsim::device::IDLE_EVENT)
        {
            if let Some(mw) = power.mean_between(idle.start_ms, idle.end_ms) {
                if idle.start_ms <= mp_time {
                    before = (before.0 + mw, before.1 + 1);
                } else {
                    after = (after.0 + mw, after.1 + 1);
                }
            }
        }
        BackgroundPower {
            before_mw: if before.1 > 0 {
                before.0 / before.1 as f64
            } else {
                0.0
            },
            after_mw: if after.1 > 0 {
                after.0 / after.1 as f64
            } else {
                0.0
            },
        }
    }

    /// Table II: the top reported events with short names and impacted
    /// percentages.
    pub fn table2(&self) -> Vec<(String, f64)> {
        self.run
            .report
            .reported_events()
            .iter()
            .map(|e| (short_name(e), e.impacted_fraction))
            .collect()
    }

    /// The paper's Table-II claim: the K-9 story events are among the
    /// reported ones.
    pub fn story_events_reported(&self) -> bool {
        let reported: Vec<String> =
            self.table2().into_iter().map(|(n, _)| n).collect();
        reported.iter().any(|e| e.contains("AccountSettings"))
            || reported.iter().any(|e| e.contains("MailService"))
            || reported.iter().any(|e| e.contains("MessageList"))
    }
}

/// Short `Class:callback` form used by the paper's tables.
pub fn short_name(event: &RankedEvent) -> String {
    MethodKey::parse(&event.event)
        .map(|k| k.short())
        .unwrap_or_else(|| event.event.clone())
}

/// Runs the K-9 Mail scenario end to end.
pub fn measure() -> K9Result {
    let run = run_scenario(&Scenario::k9mail());
    let plotted_trace =
        run.report.impacted_traces().first().copied().unwrap_or(0);
    K9Result { run, plotted_trace }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k9_experiment_matches_the_paper_story() {
        let result = measure();
        // At least one manifestation point detected (Fig. 8 finds two).
        assert!(result.run.report.manifestation_point_count() > 0);
        // The plotted trace shows the normal→abnormal transition:
        // normalized power ends much higher than it starts.
        let norm = result.normalized_series();
        let head: f64 = norm[..4].iter().sum::<f64>() / 4.0;
        let tail: f64 = norm[norm.len() - 4..].iter().sum::<f64>() / 4.0;
        assert!(tail > head * 1.5, "head {head}, tail {tail}");
        // Table II contains the story events.
        assert!(result.story_events_reported());
        // Code reduction is in the paper's ballpark (99 % for K-9).
        assert!(result.run.code_reduction() > 0.95);
    }
}
