//! Wall-clock scaling of the fleet-parallel manifestation pipeline.
//!
//! Runs the same diagnosis over a seeded fleet with the sequential
//! reference, the worker-pool path at 1..N threads, and the
//! shard-then-merge path, timing each and checking that every variant
//! renders the **same canonical JSON** as the reference — the scaling
//! table doubles as a coarse differential check.
//!
//! Speedups are measured, not asserted: on a single-core container
//! every configuration is expected to land near 1×, and that is the
//! honest result to print.

use energydx::{AnalysisConfig, EnergyDx};
use energydx_workload::scenario::Variant;
use energydx_workload::Scenario;
use std::time::Instant;

/// One timed configuration of the pipeline.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Human-readable configuration label.
    pub label: String,
    /// Best-of-`repeats` wall time in milliseconds.
    pub millis: f64,
    /// Sequential-reference time divided by this configuration's time.
    pub speedup: f64,
    /// Whether the canonical JSON matched the reference byte for byte.
    pub identical: bool,
}

/// Times the reference, worker-pool (1, 2, 4, 8 threads), and sharded
/// (4 shards) configurations on a `users`-trace OpenGPS fleet, best of
/// `repeats` runs each.
pub fn measure(users: usize, repeats: usize) -> Vec<ScalePoint> {
    let mut scenario = Scenario::opengps();
    scenario.n_users = users;
    let collected = scenario
        .collect(Variant::Faulty)
        .expect("scenario scripts are legal");
    let input = collected.diagnosis_input();
    let config = AnalysisConfig::default()
        .with_developer_fraction(scenario.developer_fraction());
    let dx = EnergyDx::new(config.clone());

    let reference = dx.diagnose_reference(&input);
    let reference_json = reference.to_canonical_json();
    let reference_millis = best_of(repeats, || dx.diagnose_reference(&input));

    let mut points = vec![ScalePoint {
        label: "sequential reference".to_string(),
        millis: reference_millis,
        speedup: 1.0,
        identical: true,
    }];
    for jobs in [1usize, 2, 4, 8] {
        let dx = EnergyDx::new(config.clone()).with_jobs(jobs);
        let json = dx.diagnose(&input).to_canonical_json();
        let millis = best_of(repeats, || dx.diagnose(&input));
        points.push(ScalePoint {
            label: format!("worker pool, {jobs} job(s)"),
            millis,
            speedup: reference_millis / millis,
            identical: json == reference_json,
        });
    }
    let json = dx.diagnose_sharded(&input, 4).to_canonical_json();
    let millis = best_of(repeats, || dx.diagnose_sharded(&input, 4));
    points.push(ScalePoint {
        label: "4 shards, merged".to_string(),
        millis,
        speedup: reference_millis / millis,
        identical: json == reference_json,
    });
    points
}

/// Best (smallest) wall time of `repeats` runs, in milliseconds.
fn best_of<R>(repeats: usize, mut run: impl FnMut() -> R) -> f64 {
    (0..repeats.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(run());
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_configuration_matches_the_reference() {
        for point in measure(8, 1) {
            assert!(point.identical, "{} diverged", point.label);
            assert!(point.millis.is_finite() && point.millis >= 0.0);
        }
    }
}
