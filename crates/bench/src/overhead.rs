//! §IV-F — system overheads of the instrumentation and the sampler.
//!
//! The paper reports an 8.3 % average event-latency increase, average
//! instrumented event latency under 9.38 ms, and a 32 mW sampler power
//! draw (~4.5 % of total phone power during use).

use energydx_dexir::instrument::{EventPool, Instrumenter};
use energydx_droidsim::interp::{execute, DEFAULT_COST_US, DEFAULT_STEP_LIMIT};
use energydx_droidsim::FrameworkEffects;
use energydx_powermodel::UtilizationSampler;
use energydx_workload::fleet;

/// Per-app instrumentation overhead.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// App name.
    pub name: String,
    /// Mean callback latency without instrumentation (ms).
    pub base_latency_ms: f64,
    /// Mean callback latency with instrumentation (ms).
    pub instrumented_latency_ms: f64,
}

impl OverheadRow {
    /// Relative latency increase.
    pub fn latency_overhead(&self) -> f64 {
        if self.base_latency_ms <= 0.0 {
            0.0
        } else {
            (self.instrumented_latency_ms - self.base_latency_ms)
                / self.base_latency_ms
        }
    }
}

/// The assembled §IV-F result.
#[derive(Debug, Clone)]
pub struct Overhead {
    /// Per-app rows.
    pub rows: Vec<OverheadRow>,
    /// Sampler power draw (mW) at the 500 ms period.
    pub sampler_mw: f64,
    /// Sampler draw as a fraction of a typical in-use phone power
    /// (paper: ~4.5 % of ~710 mW).
    pub sampler_fraction: f64,
}

impl Overhead {
    /// Mean latency overhead across apps (paper: 8.3 %).
    pub fn mean_latency_overhead(&self) -> f64 {
        self.rows
            .iter()
            .map(OverheadRow::latency_overhead)
            .sum::<f64>()
            / self.rows.len() as f64
    }

    /// Mean instrumented event latency (paper: < 9.38 ms).
    pub fn mean_instrumented_latency_ms(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.instrumented_latency_ms)
            .sum::<f64>()
            / self.rows.len() as f64
    }
}

/// Typical whole-phone power during interactive use (mW), used as the
/// denominator of the sampler-power fraction.
pub const TYPICAL_PHONE_POWER_MW: f64 = 710.0;

/// Measures instrumentation latency for one module by executing every
/// pool callback in both builds.
pub fn measure_module(module: &energydx_dexir::Module) -> (f64, f64) {
    let instrumenter = Instrumenter::new(EventPool::standard());
    let report = instrumenter
        .instrument(module)
        .expect("module is uninstrumented");
    let effects = FrameworkEffects::standard();
    let mut base_total_us = 0u64;
    let mut instr_total_us = 0u64;
    let mut count = 0u64;
    for key in &report.events {
        let original = module.method(key).expect("event came from this module");
        let instrumented = report
            .module
            .method(key)
            .expect("instrumented module has the same keys");
        base_total_us +=
            execute(original, &effects, DEFAULT_COST_US, DEFAULT_STEP_LIMIT)
                .expect("valid module")
                .elapsed_us;
        instr_total_us += execute(
            instrumented,
            &effects,
            DEFAULT_COST_US,
            DEFAULT_STEP_LIMIT,
        )
        .expect("valid module")
        .elapsed_us;
        count += 1;
    }
    if count == 0 {
        return (0.0, 0.0);
    }
    (
        base_total_us as f64 / count as f64 / 1000.0,
        instr_total_us as f64 / count as f64 / 1000.0,
    )
}

/// Runs the overhead experiment over the fleet.
pub fn measure() -> Overhead {
    let rows = fleet()
        .iter()
        .map(|app| {
            let module = app.scenario().faulty_module();
            let (base, instr) = measure_module(&module);
            OverheadRow {
                name: app.name.to_string(),
                base_latency_ms: base,
                instrumented_latency_ms: instr,
            }
        })
        .collect();
    let sampler = UtilizationSampler::default();
    let sampler_mw = sampler.overhead_mw();
    Overhead {
        rows,
        sampler_mw,
        sampler_fraction: sampler_mw / TYPICAL_PHONE_POWER_MW,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_single_digit_percent_and_latency_below_9_38ms() {
        let result = measure();
        let overhead = result.mean_latency_overhead();
        assert!(
            overhead > 0.0 && overhead < 0.25,
            "mean latency overhead {overhead}"
        );
        assert!(
            result.mean_instrumented_latency_ms() < 9.38,
            "mean latency {} ms",
            result.mean_instrumented_latency_ms()
        );
        assert_eq!(result.sampler_mw, 32.0);
        assert!(result.sampler_fraction < 0.05);
    }
}
