//! Fig. 1 — distribution of event distance over the 40 ABD cases.
//!
//! For every fleet app we diagnose the faulty build and measure the
//! event distance between the injected root-cause event and the
//! detected manifestation point closest to it. The paper's headline:
//! the 90th percentile is 3 or shorter.

use crate::run::{run_fleet, ScenarioRun};
use energydx::distance::event_distance;
use energydx_stats::Ecdf;
use energydx_workload::FleetApp;

/// One app's measured event distance.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceSample {
    /// Table-III app id.
    pub id: u32,
    /// App name.
    pub name: String,
    /// Event distance, when the diagnosis found a manifestation point
    /// near the root cause.
    pub distance: Option<usize>,
}

/// The Fig.-1 result: per-app distances plus the ECDF.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Per-app distances, in Table-III order.
    pub samples: Vec<DistanceSample>,
    /// ECDF over the measured distances.
    pub ecdf: Ecdf,
}

impl Fig1 {
    /// The 90th-percentile event distance (the paper's headline is ≤ 3).
    pub fn p90(&self) -> f64 {
        self.ecdf.quantile(90.0).expect("90 is a valid percentile")
    }
}

/// Computes the event distance for one completed run.
pub fn distance_of(run: &ScenarioRun) -> Option<usize> {
    event_distance(&run.report, &run.root_cause)
}

/// Runs the whole experiment over the fleet.
pub fn measure() -> Fig1 {
    measure_from(&run_fleet())
}

/// Builds the result from pre-computed runs (shared with other
/// experiment binaries).
pub fn measure_from(runs: &[(FleetApp, ScenarioRun)]) -> Fig1 {
    let samples: Vec<DistanceSample> = runs
        .iter()
        .map(|(app, run)| DistanceSample {
            id: app.id,
            name: app.name.to_string(),
            distance: distance_of(run),
        })
        .collect();
    let measured: Vec<f64> = samples
        .iter()
        .filter_map(|s| s.distance)
        .map(|d| d as f64)
        .collect();
    let ecdf =
        Ecdf::new(&measured).expect("fleet yields at least one distance");
    Fig1 { samples, ecdf }
}
