//! The §IV-C case studies: OpenGPS (Figs. 9/10/11, Table IV),
//! Wallabag (Figs. 12/13/14, Table V), Tinfoil (Fig. 15, Table VI).

use crate::k9::short_name;
use crate::run::{run_scenario, ScenarioRun};
use energydx_trace::util::Component;
use energydx_workload::scenario::Variant;
use energydx_workload::Scenario;

/// A case-study result: the diagnosis run plus the power breakdown of
/// an impacted session's background window (Figs. 11/14).
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// App name.
    pub name: String,
    /// The diagnosis run (report holds the figure series).
    pub run: ScenarioRun,
    /// Index of the plotted (first impacted) trace.
    pub plotted_trace: usize,
    /// Mean per-component power (mW) during the ABD manifestation —
    /// the tail of an impacted session, where the app is backgrounded.
    pub abd_breakdown: Vec<(Component, f64)>,
}

impl CaseStudy {
    /// The reported-events table (Tables IV/V/VI): short name and
    /// impacted fraction.
    pub fn event_table(&self) -> Vec<(String, f64)> {
        self.run
            .report
            .reported_events()
            .iter()
            .map(|e| (short_name(e), e.impacted_fraction))
            .collect()
    }

    /// The dominant component during the ABD (GPS for OpenGPS, CPU/WiFi
    /// for Wallabag and Tinfoil).
    pub fn dominant_component(&self) -> Component {
        self.abd_breakdown
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("power is finite"))
            .expect("breakdown covers all components")
            .0
    }
}

/// Runs one case-study scenario.
pub fn measure(scenario: Scenario) -> CaseStudy {
    let name = scenario.name.clone();
    let run = run_scenario(&scenario);
    let plotted_trace =
        run.report.impacted_traces().first().copied().unwrap_or(0);

    // Power breakdown of the manifestation window: re-run the plotted
    // user's session and average the component split over the final
    // (backgrounded) 20 seconds.
    let collected = scenario
        .collect(Variant::Faulty)
        .expect("scenario scripts are legal");
    let power = &collected.pairs[plotted_trace].1;
    let end_ms = power.samples().last().map(|s| s.timestamp_ms).unwrap_or(0);
    let start_ms = end_ms.saturating_sub(20_000);
    let breakdown = power.breakdown_between(start_ms, end_ms);
    let abd_breakdown = breakdown.ranked();

    CaseStudy {
        name,
        run,
        plotted_trace,
        abd_breakdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opengps_reports_gps_burning_in_background() {
        let cs = measure(Scenario::opengps());
        assert!(cs.run.report.manifestation_point_count() > 0);
        // Fig. 11: GPS keeps consuming power in the background.
        assert_eq!(cs.dominant_component(), Component::Gps);
        // Table IV flavour: lifecycle/idle events around backgrounding.
        let events: Vec<String> =
            cs.event_table().into_iter().map(|(n, _)| n).collect();
        assert!(
            events.iter().any(|e| e.contains("onPause")
                || e.contains("Idle")
                || e.contains("LoggerMap")
                || e.contains("ControlTracking")),
            "reported {events:?}"
        );
    }

    #[test]
    fn wallabag_manifests_through_the_delete_path() {
        let cs = measure(Scenario::wallabag());
        assert!(cs.run.report.manifestation_point_count() > 0);
        let events: Vec<String> =
            cs.event_table().into_iter().map(|(n, _)| n).collect();
        assert!(
            events.iter().any(|e| e.contains("ReadArticle")),
            "reported {events:?}"
        );
        // Fig. 14: the retry loop burns radio/CPU, not GPS.
        assert_ne!(cs.dominant_component(), Component::Gps);
    }

    #[test]
    fn tinfoil_newsfeed_loop_is_diagnosed() {
        let cs = measure(Scenario::tinfoil());
        assert!(cs.run.report.manifestation_point_count() > 0);
        let events: Vec<String> =
            cs.event_table().into_iter().map(|(n, _)| n).collect();
        assert!(
            events
                .iter()
                .any(|e| e.contains("FBWrapper") || e.contains("Idle")),
            "reported {events:?}"
        );
    }
}
