//! The evaluation harness: regenerates every table and figure of the
//! paper (see DESIGN.md §4 for the experiment index).
//!
//! Each experiment is a library function returning structured results,
//! wrapped by a thin binary (`src/bin/*.rs`) that prints the paper's
//! rows/series. Criterion micro-benchmarks of the pipeline stages live
//! in `benches/`.
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Fig. 1 (event-distance CDF) | [`fig1`] | `fig1_event_distance` |
//! | Fig. 3 (K9 power trace) | [`k9`] | `fig3_k9_power_trace` |
//! | Figs. 7/8 + Table II (K9 diagnosis) | [`k9`] | `tab2_k9_events` |
//! | Table III (fleet) | [`tab3`] | `tab3_fleet` |
//! | §IV-B comparison (No-sleep, eDelta) | [`comparison`] | `tab_comparison` |
//! | Figs. 9/10 + Table IV (OpenGPS) | [`casestudy`] | `fig9_opengps` |
//! | Figs. 11/14 (power breakdowns) | [`casestudy`] | `fig11_breakdown` |
//! | Figs. 12/13 + Table V (Wallabag) | [`casestudy`] | `fig12_wallabag` |
//! | Fig. 15 + Table VI (Tinfoil) | [`casestudy`] | `fig15_tinfoil` |
//! | Fig. 16 (code reduction vs CheckAll) | [`comparison`] | `fig16_code_reduction` |
//! | Fig. 17 (power before/after fix) | [`fig17`] | `fig17_power_reduction` |
//! | §IV-F overheads | [`overhead`] | `overhead` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod casestudy;
pub mod comparison;
pub mod fig1;
pub mod fig17;
pub mod fleetscale;
pub mod k9;
pub mod overhead;
pub mod render;
pub mod run;
pub mod scaling;
pub mod tab3;
