//! Ablations over the analysis parameters (DESIGN.md §4b).
//!
//! The paper states its parameters were "decided through experiments";
//! this harness is those experiments. Each configuration runs over a
//! fleet slice with known ground truth (which user sessions contained
//! the fault trigger), measuring:
//!
//! - **precision / recall** of per-trace ABD detection (a trace counts
//!   as detected when it has at least one manifestation point),
//! - the **event distance** from the injected root cause,
//! - the **code reduction** of the final report.

use energydx::distance::event_distance;
use energydx::{AnalysisConfig, EnergyDx};
use energydx_workload::scenario::Variant;
use energydx_workload::{fleet, FleetApp};

/// One ablation configuration with a display name.
#[derive(Debug, Clone)]
pub struct AblationConfig {
    /// Short label for the results table.
    pub name: String,
    /// The analysis configuration to evaluate.
    pub config: AnalysisConfig,
}

/// Aggregate quality of one configuration over the evaluation slice.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// The configuration label.
    pub name: String,
    /// Detection precision over traces (TP / (TP + FP)).
    pub precision: f64,
    /// Detection recall over traces (TP / (TP + FN)).
    pub recall: f64,
    /// Mean event distance over apps where it was measurable.
    pub mean_distance: f64,
    /// Apps with a measurable distance.
    pub distance_measured: usize,
    /// Mean code reduction.
    pub mean_reduction: f64,
}

/// The default ablation grid: each paper/design choice toggled in
/// isolation around the defaults.
pub fn grid() -> Vec<AblationConfig> {
    let base = AnalysisConfig::default();
    let named = |name: &str, config: AnalysisConfig| AblationConfig {
        name: name.to_string(),
        config,
    };
    vec![
        named("default", base.clone()),
        // Step-4 detection amplitude: the paper's raw run-difference
        // formula vs the sustained (windowed-median) variant.
        named("paper-amplitude (sustained off)", {
            let mut c = base.clone();
            c.sustained_window = 0;
            c
        }),
        named("sustained w=1", {
            let mut c = base.clone();
            c.sustained_window = 1;
            c
        }),
        named("sustained w=5", {
            let mut c = base.clone();
            c.sustained_window = 5;
            c
        }),
        // Step-3 base: the paper's raw 10th percentile vs the guarded
        // base, and coarser percentiles.
        named("no base guard", {
            let mut c = base.clone();
            c.base_guard_fraction = 0.0;
            c
        }),
        named(
            "base percentile 25",
            base.clone().with_base_percentile(25.0),
        ),
        named(
            "base percentile 50",
            base.clone().with_base_percentile(50.0),
        ),
        // Step-4 fence: conventional Tukey 1.5 vs the paper's outer 3.
        named("fence k=1.5", base.clone().with_fence_k(1.5)),
        named("no fence excess", {
            let mut c = base.clone();
            c.min_fence_excess = 0.0;
            c
        }),
        // Step-5 window size.
        named("window 2", base.clone().with_window(2)),
        named("window 10", base.with_window(10)),
    ]
}

/// The fleet slice ablations run on: every fourth app plus the three
/// bespoke case studies — 13 apps covering all fault classes and both
/// intensities.
pub fn evaluation_slice() -> Vec<FleetApp> {
    fleet()
        .into_iter()
        .filter(|a| a.id % 4 == 0 || [3, 18, 28].contains(&a.id))
        .collect()
}

/// Evaluates one configuration over the slice.
pub fn evaluate(config: &AblationConfig, apps: &[FleetApp]) -> AblationResult {
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    let mut distances = Vec::new();
    let mut reductions = Vec::new();

    for app in apps {
        let scenario = app.scenario();
        let collected = scenario
            .collect(Variant::Faulty)
            .expect("fleet scripts are legal");
        let input = collected.diagnosis_input();
        let analysis_config = config
            .config
            .clone()
            .with_developer_fraction(scenario.developer_fraction());
        let report = EnergyDx::new(analysis_config).diagnose(&input);

        let impacted_users = (scenario.impacted_fraction
            * scenario.n_users as f64)
            .round() as usize;
        let detected: std::collections::BTreeSet<usize> =
            report.impacted_traces().into_iter().collect();
        for trace in 0..scenario.n_users {
            let truly_impacted = trace < impacted_users;
            match (truly_impacted, detected.contains(&trace)) {
                (true, true) => tp += 1,
                (true, false) => fn_ += 1,
                (false, true) => fp += 1,
                (false, false) => {}
            }
        }
        if let Some(d) = event_distance(&report, &scenario.root_cause_event()) {
            distances.push(d as f64);
        }
        reductions.push(
            scenario
                .code_index()
                .code_reduction(report.reported_events()),
        );
    }

    AblationResult {
        name: config.name.clone(),
        precision: if tp + fp == 0 {
            1.0
        } else {
            tp as f64 / (tp + fp) as f64
        },
        recall: if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        },
        mean_distance: if distances.is_empty() {
            f64::NAN
        } else {
            distances.iter().sum::<f64>() / distances.len() as f64
        },
        distance_measured: distances.len(),
        mean_reduction: reductions.iter().sum::<f64>()
            / reductions.len() as f64,
    }
}

/// Runs the whole grid over the slice.
pub fn run_grid() -> Vec<AblationResult> {
    let apps = evaluation_slice();
    grid().iter().map(|c| evaluate(c, &apps)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_covers_all_fault_classes() {
        use energydx_workload::FaultClass;
        let slice = evaluation_slice();
        for class in [
            FaultClass::NoSleep,
            FaultClass::Loop,
            FaultClass::Configuration,
        ] {
            assert!(slice.iter().any(|a| a.cause == class), "{class} missing");
        }
        assert!(slice.len() >= 10);
    }

    #[test]
    fn default_config_dominates_on_one_app() {
        // Spot check: the default beats the no-guard variant on
        // precision for a single weak app (the full grid runs in the
        // `ablations` binary).
        let apps: Vec<FleetApp> =
            fleet().into_iter().filter(|a| a.id == 4).collect();
        let grid = grid();
        let default = evaluate(&grid[0], &apps);
        assert!(default.recall > 0.99, "recall {}", default.recall);
        assert!(default.precision > 0.99, "precision {}", default.precision);
    }
}
