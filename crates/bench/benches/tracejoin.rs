//! Criterion micro-benchmarks of trace mechanics: event pairing, the
//! Step-1 timestamp join, and the wire format.

use criterion::{
    criterion_group, criterion_main, BenchmarkId, Criterion, Throughput,
};
use energydx_trace::event::{Direction, EventRecord, EventTrace};
use energydx_trace::join_power;
use energydx_trace::power::{PowerSample, PowerTrace};
use energydx_trace::store::TraceBundle;
use energydx_trace::util::Component;
use energydx_trace::wire;

fn event_trace(n: usize) -> EventTrace {
    let mut t = EventTrace::new();
    for i in 0..n as u64 {
        let event = format!("Lcom/example/A{};->cb{}", i % 7, i % 13);
        t.push(EventRecord::new(i * 200, Direction::Enter, event.clone()));
        t.push(EventRecord::new(i * 200 + 5, Direction::Exit, event));
    }
    t
}

fn power_trace(duration_ms: u64) -> PowerTrace {
    (1..=duration_ms / 500)
        .map(|i| {
            let mut s = PowerSample::new(i * 500);
            s.set_component(Component::Cpu, 100.0 + (i % 50) as f64);
            s
        })
        .collect()
}

fn bench_pairing_and_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("join");
    for &n in &[1_000usize, 10_000] {
        let events = event_trace(n);
        let power = power_trace((n as u64) * 200 + 2_000);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("pair_instances", n),
            &events,
            |b, e| b.iter(|| e.pair_instances()),
        );
        let instances = events.pair_instances();
        group.bench_with_input(
            BenchmarkId::new("join_power", n),
            &(instances, power),
            // The clone stands in for the per-instance copy the old
            // borrowing join performed internally, keeping the two
            // measurements comparable.
            |b, (instances, power)| {
                b.iter(|| join_power(instances.clone(), power))
            },
        );
    }
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut bundle = TraceBundle::new("bench-user", 1, "nexus6");
    bundle.events = event_trace(5_000);
    let bytes = wire::encode(&bundle);
    c.bench_function("wire_encode_10k_records", |b| {
        b.iter(|| wire::encode(&bundle))
    });
    c.bench_function("wire_decode_10k_records", |b| {
        b.iter(|| wire::decode(&bytes).unwrap())
    });
}

criterion_group!(benches, bench_pairing_and_join, bench_wire);
criterion_main!(benches);
