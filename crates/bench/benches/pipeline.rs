//! Criterion micro-benchmarks of the 5-step analysis pipeline:
//! throughput of each step and of the full diagnosis as trace length
//! and trace count grow.

use criterion::{
    criterion_group, criterion_main, BenchmarkId, Criterion, Throughput,
};
use energydx::pipeline::{
    step2_rank, step3_normalize, step4_detect, EventGroups,
};
use energydx::{AnalysisConfig, DiagnosisInput, EnergyDx};
use energydx_trace::event::EventInstance;
use energydx_trace::join::PoweredInstance;

/// Synthetic input: `traces` user traces of `len` instances over 12
/// event kinds, one trace carrying an ABD level shift.
fn synthetic_input(traces: usize, len: usize) -> DiagnosisInput {
    let mk = |t: usize, i: usize| {
        let event = format!("LA;->cb{}", (i * 7 + t) % 12);
        let base = 100.0 + ((i * 13 + t * 31) % 40) as f64;
        let power = if t == 0 && i > len / 2 {
            base * 5.0
        } else {
            base
        };
        PoweredInstance {
            instance: EventInstance::new(
                event,
                (i * 1000) as u64,
                (i * 1000 + 10) as u64,
            ),
            power_mw: power,
        }
    };
    DiagnosisInput::new(
        (0..traces)
            .map(|t| (0..len).map(|i| mk(t, i)).collect())
            .collect(),
    )
}

fn bench_full_diagnosis(c: &mut Criterion) {
    let mut group = c.benchmark_group("diagnose");
    for &len in &[100usize, 400, 1600] {
        let input = synthetic_input(12, len);
        group.throughput(Throughput::Elements((12 * len) as u64));
        group.bench_with_input(
            BenchmarkId::new("instances", len),
            &input,
            |b, input| {
                let analyzer = EnergyDx::default();
                b.iter(|| analyzer.diagnose(input));
            },
        );
    }
    group.finish();
}

fn bench_steps(c: &mut Criterion) {
    let input = synthetic_input(12, 400);
    let config = AnalysisConfig::default();
    let groups = EventGroups::collect(&input);
    let normalized = step3_normalize(&input, &groups, &config);

    c.bench_function("step2_rank", |b| b.iter(|| step2_rank(&groups)));
    c.bench_function("step3_normalize", |b| {
        b.iter(|| step3_normalize(&input, &groups, &config))
    });
    c.bench_function("step4_detect", |b| {
        b.iter(|| step4_detect(&normalized, &config))
    });
}

criterion_group!(benches, bench_full_diagnosis, bench_steps);
criterion_main!(benches);
