//! Criterion micro-benchmarks of the instrumenter and the smali
//! parser/assembler: the per-APK cost of the paper's §II-C tooling.

use criterion::{
    criterion_group, criterion_main, BenchmarkId, Criterion, Throughput,
};
use energydx_dexir::instrument::{EventPool, Instrumenter};
use energydx_dexir::text::{assemble_module, parse_module};
use energydx_workload::appgen::{generate, AppSpec};

fn bench_instrument(c: &mut Criterion) {
    let mut group = c.benchmark_group("instrument");
    for &loc in &[5_000u64, 20_000, 90_000] {
        let mut spec = AppSpec::small("com.example.bench", 42);
        spec.total_loc = loc;
        let module = generate(&spec);
        group.throughput(Throughput::Elements(module.total_source_lines()));
        group.bench_with_input(
            BenchmarkId::new("loc", loc),
            &module,
            |b, module| {
                let instrumenter = Instrumenter::new(EventPool::standard());
                b.iter(|| instrumenter.instrument(module).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_text_round_trip(c: &mut Criterion) {
    let mut spec = AppSpec::small("com.example.bench", 42);
    spec.total_loc = 20_000;
    let module = generate(&spec);
    let text = assemble_module(&module);

    c.bench_function("assemble_module_20k", |b| {
        b.iter(|| assemble_module(&module))
    });
    c.bench_function("parse_module_20k", |b| {
        b.iter(|| parse_module(&text).unwrap())
    });
}

criterion_group!(benches, bench_instrument, bench_text_round_trip);
criterion_main!(benches);
