//! Criterion micro-benchmarks of the power model: sampling the
//! hardware timeline, estimating power, and cross-device scaling —
//! the per-trace server-side cost before the analysis proper.

use criterion::{
    criterion_group, criterion_main, BenchmarkId, Criterion, Throughput,
};
use energydx_droidsim::Timeline;
use energydx_powermodel::{
    scale_trace, DeviceProfile, PowerModel, UtilizationSampler,
};
use energydx_trace::util::Component;

/// A busy one-hour timeline: bursts on every lane.
fn busy_timeline() -> Timeline {
    let mut t = Timeline::new();
    for i in 0..3_600u64 {
        let start = i * 1_000_000;
        t.add(Component::Cpu, start, start + 300_000, 0.5);
        if i % 3 == 0 {
            t.add(Component::Wifi, start, start + 400_000, 0.8);
        }
        if i % 5 == 0 {
            t.add(Component::Gps, start, start + 900_000, 1.0);
        }
    }
    t
}

fn bench_sampler(c: &mut Criterion) {
    let timeline = busy_timeline();
    let mut group = c.benchmark_group("sampler");
    for &duration_s in &[60u64, 600] {
        group.throughput(Throughput::Elements(duration_s * 2));
        group.bench_with_input(
            BenchmarkId::new("duration_s", duration_s),
            &duration_s,
            |b, &secs| {
                let sampler = UtilizationSampler::default();
                b.iter(|| sampler.sample(&timeline, secs * 1000));
            },
        );
    }
    group.finish();
}

fn bench_estimate_and_scale(c: &mut Criterion) {
    let timeline = busy_timeline();
    let utilization = UtilizationSampler::default().sample(&timeline, 600_000);
    let model = PowerModel::new(DeviceProfile::nexus5(), 7);
    c.bench_function("estimate_trace_10min", |b| {
        b.iter(|| model.estimate_trace(&utilization))
    });
    let power = model.estimate_trace(&utilization);
    let from = DeviceProfile::nexus5();
    let to = DeviceProfile::nexus6();
    c.bench_function("scale_trace_10min", |b| {
        b.iter(|| scale_trace(&power, &from, &to))
    });
}

criterion_group!(benches, bench_sampler, bench_estimate_and_scale);
criterion_main!(benches);
