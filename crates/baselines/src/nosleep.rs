//! The No-sleep Detection baseline (Pathak et al., MobiSys'12 \[9\]).
//!
//! Static dataflow analysis over app bytecode: a *no-sleep bug* is a
//! power-relevant resource that some callback may leave held at exit
//! while no teardown callback of the app ever releases it — the phone
//! can then go to "sleep" with the resource still active. The analysis
//! is flow-sensitive within methods (via
//! [`energydx_dexir::dataflow::leaked_at_exit`]) and conservative
//! across callbacks.
//!
//! Scope limits (the paper's point in §IV-B): only the **no-sleep**
//! ABD class is detectable, and only when the acquisition is visible
//! in bytecode — dynamically registered leaks and loop/configuration
//! ABDs produce no findings.

use energydx_dexir::dataflow::leaked_at_exit;
use energydx_dexir::instr::ResourceKind;
use energydx_dexir::module::{MethodKey, Module};
use energydx_dexir::DexError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Teardown callbacks in which a release "counts" as correct cleanup.
const TEARDOWN_CALLBACKS: [&str; 4] =
    ["onPause", "onStop", "onDestroy", "onUnbind"];

/// One detected no-sleep bug.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoSleepBug {
    /// The callback that may exit with the resource held.
    pub acquiring_method: MethodKey,
    /// The leaked resource.
    pub resource: ResourceKind,
}

/// Runs the analysis over a whole app package.
///
/// # Errors
///
/// Returns [`DexError`] when a method body is malformed.
///
/// # Examples
///
/// ```
/// # use energydx_baselines::detect_no_sleep;
/// # use energydx_dexir::{Class, ComponentKind, Module};
/// # use energydx_dexir::module::Method;
/// # use energydx_dexir::instr::{Instruction, ResourceKind};
/// let mut m = Module::new("x");
/// let mut c = Class::new("LA;", ComponentKind::Activity);
/// let mut cb = Method::new("onResume", "()V");
/// cb.body = vec![
///     Instruction::AcquireResource { kind: ResourceKind::Gps },
///     Instruction::ReturnVoid,
/// ];
/// c.methods.push(cb);
/// m.add_class(c)?;
/// let bugs = detect_no_sleep(&m)?;
/// assert_eq!(bugs.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn detect_no_sleep(module: &Module) -> Result<Vec<NoSleepBug>, DexError> {
    // Resources released in any teardown callback anywhere in the app:
    // released there, the resource cannot outlive the component.
    let mut released_in_teardown: BTreeSet<ResourceKind> = BTreeSet::new();
    for class in module.classes.values() {
        for method in &class.methods {
            if TEARDOWN_CALLBACKS.contains(&method.name.as_str()) {
                released_in_teardown.extend(method.released_resources());
            }
        }
    }

    let mut bugs = Vec::new();
    for class in module.classes.values() {
        for method in &class.methods {
            let leaked = leaked_at_exit(method)?;
            for resource in leaked.iter() {
                if !released_in_teardown.contains(&resource) {
                    bugs.push(NoSleepBug {
                        acquiring_method: MethodKey::new(
                            class.name.clone(),
                            method.name.clone(),
                        ),
                        resource,
                    });
                }
            }
        }
    }
    Ok(bugs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use energydx_dexir::instr::Instruction;
    use energydx_dexir::module::{Class, ComponentKind, Method};
    use energydx_workload::fleet;
    use energydx_workload::FaultClass;

    fn method(name: &str, body: Vec<Instruction>) -> Method {
        let mut m = Method::new(name, "()V");
        m.body = body;
        m
    }

    fn app(
        resume_body: Vec<Instruction>,
        pause_body: Vec<Instruction>,
    ) -> Module {
        let mut module = Module::new("x");
        let mut class = Class::new("LA;", ComponentKind::Activity);
        class.methods.push(method("onResume", resume_body));
        class.methods.push(method("onPause", pause_body));
        module.add_class(class).unwrap();
        module
    }

    #[test]
    fn leak_without_teardown_release_is_a_bug() {
        let module = app(
            vec![
                Instruction::AcquireResource {
                    kind: ResourceKind::WakeLock,
                },
                Instruction::ReturnVoid,
            ],
            vec![Instruction::ReturnVoid],
        );
        let bugs = detect_no_sleep(&module).unwrap();
        assert_eq!(bugs.len(), 1);
        assert_eq!(bugs[0].resource, ResourceKind::WakeLock);
        assert_eq!(bugs[0].acquiring_method.name, "onResume");
    }

    #[test]
    fn release_in_teardown_suppresses_the_bug() {
        let module = app(
            vec![
                Instruction::AcquireResource {
                    kind: ResourceKind::WakeLock,
                },
                Instruction::ReturnVoid,
            ],
            vec![
                Instruction::ReleaseResource {
                    kind: ResourceKind::WakeLock,
                },
                Instruction::ReturnVoid,
            ],
        );
        assert!(detect_no_sleep(&module).unwrap().is_empty());
    }

    #[test]
    fn balanced_acquire_release_within_method_is_clean() {
        let module = app(
            vec![
                Instruction::AcquireResource {
                    kind: ResourceKind::Gps,
                },
                Instruction::ReleaseResource {
                    kind: ResourceKind::Gps,
                },
                Instruction::ReturnVoid,
            ],
            vec![Instruction::ReturnVoid],
        );
        assert!(detect_no_sleep(&module).unwrap().is_empty());
    }

    #[test]
    fn teardown_release_of_other_resource_does_not_help() {
        let module = app(
            vec![
                Instruction::AcquireResource {
                    kind: ResourceKind::Gps,
                },
                Instruction::ReturnVoid,
            ],
            vec![
                Instruction::ReleaseResource {
                    kind: ResourceKind::WakeLock,
                },
                Instruction::ReturnVoid,
            ],
        );
        assert_eq!(detect_no_sleep(&module).unwrap().len(), 1);
    }

    #[test]
    fn fleet_static_nosleep_apps_are_detected() {
        for fleet_app in fleet().iter().filter(|a| {
            a.cause == FaultClass::NoSleep
                && !a.dynamic_leak
                && ![3, 18, 28].contains(&a.id)
        }) {
            let s = fleet_app.scenario();
            let bugs = detect_no_sleep(&s.faulty_module()).unwrap();
            assert!(!bugs.is_empty(), "{} must be detected", fleet_app.name);
            // The fixed build is clean.
            let fixed = detect_no_sleep(&s.fixed_module()).unwrap();
            assert!(fixed.is_empty(), "{} fix must pass", fleet_app.name);
        }
    }

    #[test]
    fn fleet_dynamic_leaks_are_missed() {
        for fleet_app in fleet().iter().filter(|a| a.dynamic_leak) {
            let s = fleet_app.scenario();
            assert!(
                detect_no_sleep(&s.faulty_module()).unwrap().is_empty(),
                "{} leak is dynamic and must be invisible",
                fleet_app.name
            );
        }
    }

    #[test]
    fn loop_and_configuration_apps_produce_no_findings() {
        for fleet_app in fleet().iter().filter(|a| {
            a.cause != FaultClass::NoSleep && ![3, 18, 28].contains(&a.id)
        }) {
            let s = fleet_app.scenario();
            assert!(
                detect_no_sleep(&s.faulty_module()).unwrap().is_empty(),
                "{} has no no-sleep bug",
                fleet_app.name
            );
        }
    }
}
