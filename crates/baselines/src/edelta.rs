//! The eDelta baseline (Li et al., IGSC'17 \[10\]): "Pinpointing Energy
//! Deviations in Smartphone Apps via **Comparative Trace Analysis**".
//!
//! eDelta instruments APIs at fine granularity and compares their
//! energy against a normal reference execution; an API whose energy
//! rises far above its reference after the ABD manifests is flagged.
//! Our trace-level proxy keeps the decision rule: for every API event,
//! compare a high quantile of its per-instance power in the *suspect*
//! traces against the same quantile in the *reference* traces (e.g.
//! the developer's in-lab runs of the fixed or unaffected build).
//!
//! The §V limitations are preserved by construction:
//!
//! - an ABD whose per-API deviation is small — even if it lasts the
//!   whole session — stays below the threshold and goes undetected;
//! - behaviour with no instrumented API behind it (background idle
//!   drain reported by the synthetic `Idle(No_Display)` logger event)
//!   is invisible.

use energydx::pipeline::EventGroups;
use energydx::DiagnosisInput;
use energydx_dexir::MethodKey;
use energydx_stats::percentile;
use serde::{Deserialize, Serialize};

/// One flagged high-deviation API event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EDeltaFinding {
    /// The flagged event.
    pub event: String,
    /// The measured deviation ratio (suspect quantile over reference
    /// quantile).
    pub deviation: f64,
}

/// The eDelta analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct EDelta {
    /// Deviation ratio above which an API is flagged.
    pub threshold: f64,
    /// The quantile compared between suspect and reference.
    pub high_quantile: f64,
    /// Minimum instances per group on each side; tiny groups have
    /// meaningless quantiles.
    pub min_instances: usize,
}

impl Default for EDelta {
    fn default() -> Self {
        EDelta {
            threshold: 1.52,
            high_quantile: 95.0,
            min_instances: 4,
        }
    }
}

impl EDelta {
    /// Creates the baseline with default parameters.
    pub fn new() -> Self {
        EDelta::default()
    }

    /// Flags API events whose suspect-side power deviates from the
    /// reference by more than the threshold, sorted by descending
    /// deviation.
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_baselines::EDelta;
    /// # use energydx::DiagnosisInput;
    /// # use energydx_trace::event::EventInstance;
    /// # use energydx_trace::join::PoweredInstance;
    /// let mk = |mw: f64, i: u64| PoweredInstance {
    ///     instance: EventInstance::new("LA;->api", i * 1000, i * 1000 + 10),
    ///     power_mw: mw,
    /// };
    /// let reference = DiagnosisInput::new(vec![(0..20).map(|i| mk(100.0, i)).collect()]);
    /// let suspect = DiagnosisInput::new(vec![(0..20).map(|i| mk(500.0, i)).collect()]);
    /// let findings = EDelta::new().detect(&reference, &suspect);
    /// assert_eq!(findings[0].event, "LA;->api");
    /// ```
    pub fn detect(
        &self,
        reference: &DiagnosisInput,
        suspect: &DiagnosisInput,
    ) -> Vec<EDeltaFinding> {
        let ref_groups = EventGroups::collect(reference);
        let sus_groups = EventGroups::collect(suspect);
        let mut findings: Vec<EDeltaFinding> = sus_groups
            .powers
            .iter()
            // eDelta instruments *APIs*; synthetic logger events such
            // as `Idle(No_Display)` have no API behind them.
            .filter(|(event, _)| MethodKey::parse(event).is_some())
            .filter(|(_, powers)| powers.len() >= self.min_instances)
            .filter_map(|(event, suspect_powers)| {
                let reference_powers = ref_groups.powers.get(event)?;
                if reference_powers.len() < self.min_instances {
                    return None;
                }
                let ref_high = percentile(reference_powers, self.high_quantile)
                    .expect("non-empty");
                let sus_high = percentile(suspect_powers, self.high_quantile)
                    .expect("non-empty");
                let deviation = if ref_high <= 0.0 {
                    if sus_high > 0.0 {
                        f64::INFINITY
                    } else {
                        1.0
                    }
                } else {
                    sus_high / ref_high
                };
                (deviation > self.threshold).then(|| EDeltaFinding {
                    event: event.clone(),
                    deviation,
                })
            })
            .collect();
        findings.sort_by(|a, b| {
            b.deviation
                .partial_cmp(&a.deviation)
                .expect("deviations are comparable")
                .then_with(|| a.event.cmp(&b.event))
        });
        findings
    }

    /// Whether the ABD is detected at all (the §IV-B scoring:
    /// detected apps count their reduction, undetected count 0).
    pub fn detects(
        &self,
        reference: &DiagnosisInput,
        suspect: &DiagnosisInput,
    ) -> bool {
        !self.detect(reference, suspect).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use energydx_trace::event::EventInstance;
    use energydx_trace::join::PoweredInstance;

    fn mk(e: &str, i: u64, mw: f64) -> PoweredInstance {
        PoweredInstance {
            instance: EventInstance::new(e, i * 1000, i * 1000 + 10),
            power_mw: mw,
        }
    }

    fn input_of(event: &str, powers: &[f64]) -> DiagnosisInput {
        DiagnosisInput::new(vec![powers
            .iter()
            .enumerate()
            .map(|(i, &mw)| mk(event, i as u64, mw))
            .collect()])
    }

    #[test]
    fn strong_deviation_is_detected() {
        let reference = input_of("LA;->api", &[100.0; 20]);
        let suspect = input_of(
            "LA;->api",
            &[100.0, 100.0, 100.0, 100.0, 400.0, 400.0, 400.0, 400.0],
        );
        let findings = EDelta::new().detect(&reference, &suspect);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].deviation >= 3.9);
    }

    #[test]
    fn small_but_long_deviation_is_missed() {
        // The paper's stated eDelta blind spot: +30 % for the whole
        // session — large total energy, small per-API deviation.
        let reference = input_of("LA;->api", &[100.0; 20]);
        let suspect = input_of("LA;->api", &[130.0; 20]);
        assert!(EDelta::new().detect(&reference, &suspect).is_empty());
    }

    #[test]
    fn context_variance_present_on_both_sides_cancels() {
        // Bimodal context (100/400) in both reference and suspect:
        // the comparative quantiles cancel and nothing is flagged.
        let bimodal: Vec<f64> = (0..20)
            .map(|i| if i % 4 == 0 { 400.0 } else { 100.0 })
            .collect();
        let reference = input_of("LA;->onStop", &bimodal);
        let suspect = input_of("LA;->onStop", &bimodal);
        assert!(EDelta::new().detect(&reference, &suspect).is_empty());
    }

    #[test]
    fn non_api_events_are_invisible() {
        let reference = input_of("Idle(No_Display)", &[10.0; 20]);
        let suspect = input_of("Idle(No_Display)", &[400.0; 20]);
        assert!(EDelta::new().detect(&reference, &suspect).is_empty());
    }

    #[test]
    fn events_missing_from_the_reference_are_skipped() {
        let reference = input_of("LA;->other", &[100.0; 20]);
        let suspect = input_of("LA;->api", &[900.0; 20]);
        assert!(EDelta::new().detect(&reference, &suspect).is_empty());
    }

    #[test]
    fn tiny_groups_are_ignored() {
        let reference = input_of("LA;->api", &[100.0; 20]);
        let suspect = input_of("LA;->api", &[900.0, 900.0]);
        assert!(EDelta::new().detect(&reference, &suspect).is_empty());
    }

    #[test]
    fn zero_reference_with_positive_suspect_is_infinite_deviation() {
        let reference = input_of("LA;->api", &[0.0; 10]);
        let suspect = input_of("LA;->api", &[50.0; 10]);
        let findings = EDelta::new().detect(&reference, &suspect);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].deviation.is_infinite());
    }

    #[test]
    fn findings_sorted_by_deviation() {
        let mut ref_trace =
            input_of("LA;->mild", &[100.0; 20]).traces()[0].clone();
        ref_trace
            .extend(input_of("LB;->wild", &[100.0; 20]).traces()[0].clone());
        let reference = DiagnosisInput::new(vec![ref_trace]);
        let mut sus_trace =
            input_of("LA;->mild", &[250.0; 20]).traces()[0].clone();
        sus_trace
            .extend(input_of("LB;->wild", &[900.0; 20]).traces()[0].clone());
        let suspect = DiagnosisInput::new(vec![sus_trace]);
        let findings = EDelta::new().detect(&reference, &suspect);
        assert_eq!(findings[0].event, "LB;->wild");
        assert_eq!(findings.len(), 2);
    }
}
