//! Baselines for the EnergyDx evaluation (§IV-B, §IV-D):
//!
//! - [`checkall`] — **CheckAll**: performs Step 1 (per-event power)
//!   but skips the normalization/differentiation steps and simply
//!   reports the events around *every* raw power transition point.
//!   The Fig.-16 comparison quantifies how much of EnergyDx's code
//!   reduction comes from distinguishing real manifestation points.
//! - [`nosleep`] — **No-sleep Detection** (Pathak et al. \[9\]): static
//!   dataflow analysis over the app bytecode finding resources
//!   acquired on some path but never released on the teardown path.
//!   Detects only the no-sleep ABD class, and only leaks visible in
//!   bytecode.
//! - [`edelta`] — **eDelta** (Li et al. \[10\]): flags events whose
//!   energy deviates strongly from their own baseline; misses ABDs
//!   whose deviation is small but long-lasting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkall;
pub mod edelta;
pub mod nosleep;

pub use checkall::CheckAll;
pub use edelta::{EDelta, EDeltaFinding};
pub use nosleep::{detect_no_sleep, NoSleepBug};
