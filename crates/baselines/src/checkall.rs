//! The CheckAll baseline (§IV-D).
//!
//! CheckAll estimates per-event power (Step 1) and then reports the
//! events around **all** power transition points — no ranking, no
//! normalization, no percentage filtering. Because raw power differs
//! between events by functionality alone (the paper's Checkmail
//! example), CheckAll's windows blanket much more code: the paper
//! reports 1 205 lines to read on average versus EnergyDx's 168.

use energydx::amplitude::variation_amplitudes;
use energydx::report::RankedEvent;
use energydx::DiagnosisInput;
use energydx_stats::TukeyFences;
use std::collections::{BTreeMap, BTreeSet};

/// The CheckAll analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckAll {
    /// Fence multiplier for calling a raw amplitude a transition
    /// point. CheckAll is deliberately lenient (conventional Tukey
    /// 1.5, not the outer 3.0): it flags every visible transition.
    pub fence_k: f64,
    /// Window half-width around each transition point (same as
    /// EnergyDx for a fair comparison).
    pub window: usize,
}

impl Default for CheckAll {
    fn default() -> Self {
        CheckAll {
            fence_k: 1.5,
            window: 5,
        }
    }
}

impl CheckAll {
    /// Creates the baseline with default parameters.
    pub fn new() -> Self {
        CheckAll::default()
    }

    /// Reports every event appearing in a window around any raw power
    /// transition point, with the fraction of traces it impacted
    /// (reported for symmetry with EnergyDx — CheckAll itself does no
    /// filtering on it).
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_baselines::CheckAll;
    /// # use energydx::DiagnosisInput;
    /// # use energydx_trace::event::EventInstance;
    /// # use energydx_trace::join::PoweredInstance;
    /// let mk = |e: &str, i: u64, mw: f64| PoweredInstance {
    ///     instance: EventInstance::new(e, i * 1000, i * 1000 + 10),
    ///     power_mw: mw,
    /// };
    /// // A flat trace with one big spike: CheckAll reports around it.
    /// let mut t: Vec<_> = (0..20).map(|i| mk("quiet", i, 100.0)).collect();
    /// t[10] = mk("spike", 10, 900.0);
    /// let report = CheckAll::new().report(&DiagnosisInput::new(vec![t]));
    /// assert!(report.iter().any(|e| e.event == "spike"));
    /// ```
    pub fn report(&self, input: &DiagnosisInput) -> Vec<RankedEvent> {
        let total = input.len();
        if total == 0 {
            return Vec::new();
        }
        let mut impacted: BTreeMap<String, usize> = BTreeMap::new();
        for trace in input.traces() {
            let raw: Vec<f64> = trace.iter().map(|p| p.power_mw).collect();
            let amplitudes = variation_amplitudes(&raw);
            if amplitudes.len() < 4 {
                continue;
            }
            let fences = TukeyFences::from_data(&amplitudes, self.fence_k)
                .expect("amplitudes are non-empty and finite");
            // Raw power both rises and falls at a transition; CheckAll
            // flags both directions (it has no notion of "manifestation").
            let centers: Vec<usize> = amplitudes
                .iter()
                .enumerate()
                .filter(|(_, &v)| {
                    fences.is_upper_outlier(v) || fences.is_lower_outlier(v)
                })
                .map(|(i, _)| i)
                .collect();
            let mut events: BTreeSet<&str> = BTreeSet::new();
            for center in centers {
                let lo = center.saturating_sub(self.window);
                let hi = (center + self.window).min(trace.len() - 1);
                for p in &trace[lo..=hi] {
                    events.insert(p.instance.event.as_str());
                }
            }
            for e in events {
                *impacted.entry(e.to_string()).or_default() += 1;
            }
        }
        let mut out: Vec<RankedEvent> = impacted
            .into_iter()
            .map(|(event, count)| RankedEvent {
                event,
                impacted_fraction: count as f64 / total as f64,
                // CheckAll has no manifestation point to measure from.
                proximity: 0,
            })
            .collect();
        out.sort_by(|a, b| {
            b.impacted_fraction
                .partial_cmp(&a.impacted_fraction)
                .expect("fractions are finite")
                .then_with(|| a.event.cmp(&b.event))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use energydx_trace::event::EventInstance;
    use energydx_trace::join::PoweredInstance;

    fn mk(e: &str, i: u64, mw: f64) -> PoweredInstance {
        PoweredInstance {
            instance: EventInstance::new(e, i * 1000, i * 1000 + 10),
            power_mw: mw,
        }
    }

    /// A trace with functional power differences (periodic expensive
    /// "checkmail") plus one real ABD.
    fn mixed_trace() -> Vec<PoweredInstance> {
        (0..40)
            .map(|i| {
                if i % 10 == 4 {
                    mk("checkmail", i, 450.0)
                } else if i >= 30 {
                    mk("cheap", i, 520.0) // the ABD region
                } else {
                    mk("cheap", i, 100.0)
                }
            })
            .collect()
    }

    #[test]
    fn checkall_reports_normal_functional_transitions_too() {
        let input = DiagnosisInput::new(vec![mixed_trace()]);
        let report = CheckAll::new().report(&input);
        let names: Vec<&str> =
            report.iter().map(|e| e.event.as_str()).collect();
        // CheckAll cannot distinguish the checkmail spikes from the ABD.
        assert!(names.contains(&"checkmail"));
        assert!(names.contains(&"cheap"));
    }

    #[test]
    fn energydx_reports_fewer_events_than_checkall() {
        // Three clean traces plus the faulty one: EnergyDx normalizes
        // the checkmail spikes away, CheckAll keeps flagging them.
        let clean: Vec<PoweredInstance> = (0..40)
            .map(|i| {
                if i % 10 == 4 {
                    mk("checkmail", i, 450.0)
                } else {
                    mk("cheap", i, 100.0)
                }
            })
            .collect();
        let input = DiagnosisInput::new(vec![
            clean.clone(),
            mixed_trace(),
            clean.clone(),
            clean,
        ]);
        let checkall = CheckAll::new().report(&input);
        let energydx = energydx::EnergyDx::default().diagnose(&input);
        // CheckAll windows every trace (the checkmail transitions);
        // EnergyDx only windows the faulty trace.
        let checkall_impacted: f64 = checkall
            .iter()
            .map(|e| e.impacted_fraction)
            .fold(0.0, f64::max);
        assert_eq!(checkall_impacted, 1.0, "checkall flags all traces");
        assert_eq!(energydx.impacted_traces(), vec![1]);
    }

    #[test]
    fn flat_traces_produce_no_report() {
        let flat: Vec<PoweredInstance> =
            (0..30).map(|i| mk("e", i, 200.0)).collect();
        let report = CheckAll::new().report(&DiagnosisInput::new(vec![flat]));
        assert!(report.is_empty());
    }

    #[test]
    fn empty_input_is_empty_report() {
        assert!(CheckAll::new()
            .report(&DiagnosisInput::default())
            .is_empty());
    }

    #[test]
    fn report_is_sorted_by_fraction_descending() {
        let input = DiagnosisInput::new(vec![mixed_trace(), mixed_trace()]);
        let report = CheckAll::new().report(&input);
        for w in report.windows(2) {
            assert!(w[0].impacted_fraction >= w[1].impacted_fraction);
        }
    }
}
