//! Property tests for the observability layer: folding shard-local
//! registries into a global one is order-independent, byte-for-byte.

use energydx_obsv::{duration_buckets, MetricsRegistry};
use energydx_stats::histogram::{Buckets, HistogramCells};
use proptest::prelude::*;

/// One recorded operation, routed to one of a few shard registries.
#[derive(Debug, Clone)]
enum Op {
    Inc {
        shard: usize,
        family: usize,
        by: u64,
    },
    Gauge {
        shard: usize,
        family: usize,
        by: f64,
    },
    Observe {
        shard: usize,
        family: usize,
        v: f64,
    },
}

const FAMILIES: [&str; 3] = ["a_total", "b_total", "c_total"];
const SHARDS: usize = 3;

/// Floats on a dyadic grid (multiples of 2^-10, small magnitude), so
/// every partial sum is exactly representable and float addition is
/// associative for the generated workload — merge order can then be
/// compared byte-for-byte on the rendered exposition.
fn grid(range: std::ops::Range<i32>) -> impl Strategy<Value = f64> {
    range.prop_map(|n| f64::from(n) / 1024.0)
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..SHARDS, 0..FAMILIES.len(), 0u64..100)
            .prop_map(|(shard, family, by)| Op::Inc { shard, family, by }),
        (0..SHARDS, 0..FAMILIES.len(), grid(-51_200..51_200))
            .prop_map(|(shard, family, by)| Op::Gauge { shard, family, by }),
        (0..SHARDS, 0..FAMILIES.len(), grid(0..10_240))
            .prop_map(|(shard, family, v)| Op::Observe { shard, family, v }),
    ]
}

fn shards_from(ops: &[Op]) -> Vec<MetricsRegistry> {
    let shards: Vec<MetricsRegistry> = (0..SHARDS)
        .map(|_| MetricsRegistry::deterministic())
        .collect();
    let layout = duration_buckets();
    for op in ops {
        match *op {
            Op::Inc { shard, family, by } => shards[shard]
                .counter(FAMILIES[family], &[("f", FAMILIES[family])])
                .add(by),
            Op::Gauge { shard, family, by } => shards[shard]
                .gauge("gauge", &[("f", FAMILIES[family])])
                .add(by),
            Op::Observe { shard, family, v } => shards[shard]
                .histogram("dur", &[("f", FAMILIES[family])], &layout)
                .observe(v),
        }
    }
    shards
}

fn fold_in_order(shards: &[MetricsRegistry], order: &[usize]) -> String {
    let global = MetricsRegistry::deterministic();
    for &i in order {
        global.merge_from(&shards[i]);
    }
    global.render_prometheus()
}

proptest! {
    #[test]
    fn merge_is_order_independent(ops in prop::collection::vec(op(), 0..60)) {
        let shards = shards_from(&ops);
        let reference = fold_in_order(&shards, &[0, 1, 2]);
        for order in
            [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]]
        {
            prop_assert_eq!(&fold_in_order(&shards, &order), &reference);
        }
        // Folding pre-merged pairs (associativity) matches too.
        let pair = MetricsRegistry::deterministic();
        pair.merge_from(&shards[1]);
        pair.merge_from(&shards[2]);
        let global = MetricsRegistry::deterministic();
        global.merge_from(&shards[0]);
        global.merge_from(&pair);
        prop_assert_eq!(&global.render_prometheus(), &reference);
    }

    #[test]
    fn merged_totals_equal_direct_recording(ops in prop::collection::vec(op(), 0..60)) {
        // A single registry fed every op renders the same bytes as the
        // fold of per-shard registries (counters/histograms add; the
        // gauge ops here are adds as well, so the law holds for all
        // three primitives).
        let shards = shards_from(&ops);
        let folded = fold_in_order(&shards, &[0, 1, 2]);
        let all_on_one: Vec<Op> = ops
            .iter()
            .map(|o| {
                let mut o = o.clone();
                match &mut o {
                    Op::Inc { shard, .. }
                    | Op::Gauge { shard, .. }
                    | Op::Observe { shard, .. } => *shard = 0,
                }
                o
            })
            .collect();
        let direct = shards_from(&all_on_one);
        let global = MetricsRegistry::deterministic();
        global.merge_from(&direct[0]);
        // Gauge float adds reorder under sharding, so compare counters
        // and histogram cell counts (exact) rather than raw bytes.
        let folded_parsed = energydx_obsv::parse_exposition(&folded).unwrap();
        let direct_parsed = energydx_obsv::parse_exposition(
            &global.render_prometheus(),
        )
        .unwrap();
        prop_assert_eq!(
            folded_parsed.keys().collect::<Vec<_>>(),
            direct_parsed.keys().collect::<Vec<_>>()
        );
        for (key, value) in &folded_parsed {
            let other = direct_parsed[key];
            if key.starts_with("gauge") || key.contains("_sum") {
                prop_assert!((value - other).abs() < 1e-6);
            } else {
                prop_assert_eq!(*value, other, "series {}", key);
            }
        }
    }
}

#[test]
fn histogram_cells_merge_matches_atomic_merge() {
    let layout = Buckets::new(vec![0.5, 1.0, 2.0]).unwrap();
    let a = MetricsRegistry::deterministic();
    let b = MetricsRegistry::deterministic();
    let mut plain = HistogramCells::new(layout.clone());
    for (reg, vals) in
        [(&a, vec![0.1, 0.6, 3.0]), (&b, vec![0.9, 1.5, 1.5, 9.0])]
    {
        let h = reg.histogram("h", &[], &layout);
        for v in vals {
            h.observe(v);
            plain.observe(v);
        }
    }
    a.merge_from(&b);
    let snap = a.histogram_snapshot("h", &[]).unwrap();
    assert_eq!(snap.counts(), plain.counts());
    assert!((snap.sum() - plain.sum()).abs() < 1e-12);
    assert_eq!(snap.quantile(0.5), plain.quantile(0.5));
}
