//! Observability for the EnergyDx pipeline and fleet daemon.
//!
//! A hand-rolled, offline metrics + tracing layer: no external crates,
//! nothing that phones home, cheap enough to leave compiled in and
//! enabled. Three pieces:
//!
//! - [`MetricsRegistry`] — named families of atomic counters, gauges,
//!   and fixed-bucket histograms. Registration takes a write lock
//!   once per series; after that every increment/observation is a
//!   handful of atomic ops on shared [`Counter`]/[`Gauge`]/
//!   [`Histogram`] handles, so the hot path never blocks.
//! - Span timing — [`MetricsRegistry::span`] returns an RAII
//!   [`SpanGuard`] that records elapsed seconds into the per-stage
//!   duration histogram when dropped. Under
//!   `ENERGYDX_DETERMINISTIC_TIME=1` (or a registry built with
//!   [`MetricsRegistry::deterministic`]) durations record as zero, so
//!   expositions are byte-stable and golden-testable.
//! - [`EventRing`] — a bounded ring of recent notable events
//!   (quarantine, shed, RetryAfter, checkpoint save/load, compaction,
//!   epoch rollover) with a monotone sequence number, mirrored into
//!   an `energydx_events_total{kind=...}` counter family.
//!
//! Exposition is Prometheus text format ([`render_prometheus`]), with
//! families and series in sorted order so two registries holding the
//! same numbers render the same bytes. [`parse_exposition`] is the
//! matching validator used by scrape smoke tests.
//!
//! Shard-local registries fold into a global one with
//! [`MetricsRegistry::merge_from`]; counters, gauges, and histogram
//! cells all merge by addition, so the fold is order-independent
//! (property-tested in `tests/properties.rs`).
//!
//! # Example
//!
//! ```
//! use energydx_obsv::{EventKind, MetricsRegistry};
//!
//! let reg = MetricsRegistry::deterministic();
//! reg.counter("uploads_total", &[("outcome", "clean")]).inc();
//! {
//!     let _span = reg.span("detect"); // records on drop
//! }
//! reg.event(EventKind::Quarantine, "app=mail reason=bad-magic");
//! let text = reg.render_prometheus();
//! assert!(text.contains("uploads_total{outcome=\"clean\"} 1"));
//! assert!(energydx_obsv::parse_exposition(&text).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expo;
mod metrics;
mod ring;

pub use expo::{parse_exposition, render_prometheus};
pub use metrics::{
    duration_buckets, Counter, Gauge, Histogram, Metrics, MetricsRegistry,
    SpanGuard, STAGE_FAMILY,
};
pub use ring::{EventKind, EventRing, ObsEvent};

use std::sync::{Arc, OnceLock};

/// The process-wide registry, for call sites with no natural owner to
/// thread a registry through (the trace uploader's retry loop, the
/// power join). Created on first use; honors
/// `ENERGYDX_DETERMINISTIC_TIME` at that moment.
pub fn global() -> &'static Arc<MetricsRegistry> {
    static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new()))
}
