//! The bounded ring of recent notable events.

use std::collections::VecDeque;
use std::sync::Mutex;

/// The categories of notable events the daemon and uploader record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An upload was rejected and preserved for offline inspection.
    Quarantine,
    /// An upload was dropped at the full ingest queue.
    Shed,
    /// A client was told (or an uploader was told) to back off.
    RetryAfter,
    /// A checkpoint was encoded and persisted.
    CheckpointSave,
    /// A checkpoint was restored into a fresh state.
    CheckpointLoad,
    /// An epoch's deltas were folded down.
    Compaction,
    /// An app's epoch counter advanced.
    Rollover,
    /// A coordinator replicated one worker's checkpoint.
    Replication,
    /// A replicated checkpoint was handed off to a restarted or
    /// replacement worker.
    Handoff,
    /// A cluster query was answered without every shard.
    DegradedQuery,
    /// An epoch's resident deltas were folded into an on-disk segment.
    Spill,
}

impl EventKind {
    /// The stable snake-case name used in labels and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Quarantine => "quarantine",
            EventKind::Shed => "shed",
            EventKind::RetryAfter => "retry_after",
            EventKind::CheckpointSave => "checkpoint_save",
            EventKind::CheckpointLoad => "checkpoint_load",
            EventKind::Compaction => "compaction",
            EventKind::Rollover => "rollover",
            EventKind::Replication => "replication",
            EventKind::Handoff => "handoff",
            EventKind::DegradedQuery => "degraded_query",
            EventKind::Spill => "spill",
        }
    }
}

/// One recorded event. `seq` is monotone per ring, so a consumer can
/// tell how many events fell off the window between two snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEvent {
    /// Monotone sequence number (0 for the first event ever pushed).
    pub seq: u64,
    /// Category.
    pub kind: EventKind,
    /// Free-form context, e.g. `app=mail reason=bad-magic`.
    pub detail: String,
}

/// A bounded FIFO of recent events; pushing past capacity drops the
/// oldest. All operations take one short mutex — events are rare
/// (sheds, quarantines, checkpoints), never per-instance.
#[derive(Debug)]
pub struct EventRing {
    cap: usize,
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    next_seq: u64,
    items: VecDeque<ObsEvent>,
}

impl EventRing {
    /// A ring keeping the last `cap` events (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        EventRing {
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                next_seq: 0,
                items: VecDeque::new(),
            }),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, kind: EventKind, detail: String) {
        let mut inner = self.inner.lock().expect("ring lock");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.items.len() == self.cap {
            inner.items.pop_front();
        }
        inner.items.push_back(ObsEvent { seq, kind, detail });
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<ObsEvent> {
        self.inner
            .lock()
            .expect("ring lock")
            .items
            .iter()
            .cloned()
            .collect()
    }

    /// Total events ever pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.inner.lock().expect("ring lock").next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_newest_events() {
        let ring = EventRing::new(3);
        for i in 0..5 {
            ring.push(EventKind::Shed, format!("n={i}"));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].seq, 2);
        assert_eq!(snap[2].seq, 4);
        assert_eq!(snap[2].detail, "n=4");
        assert_eq!(ring.total_pushed(), 5);
    }

    #[test]
    fn capacity_floor_is_one() {
        let ring = EventRing::new(0);
        ring.push(EventKind::Rollover, "a".into());
        ring.push(EventKind::Rollover, "b".into());
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].detail, "b");
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(EventKind::Quarantine.as_str(), "quarantine");
        assert_eq!(EventKind::CheckpointSave.as_str(), "checkpoint_save");
        assert_eq!(EventKind::RetryAfter.as_str(), "retry_after");
    }
}
