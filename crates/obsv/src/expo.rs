//! Prometheus text exposition: deterministic rendering and a strict
//! parser for scrape smoke tests.

use crate::metrics::{Metric, MetricsRegistry};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Shortest-round-trip float rendering; non-finite values use the
/// Prometheus spellings (they do not occur in practice).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Escapes a label value per the exposition format.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn label_block(
    set: &[(String, String)],
    extra: Option<(&str, &str)>,
) -> String {
    let mut parts: Vec<String> = set
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders every family of `reg` in Prometheus text format. Families
/// and series are emitted in sorted order and floats use shortest
/// round-trip rendering, so equal registries render equal bytes.
pub fn render_prometheus(reg: &MetricsRegistry) -> String {
    let fams = reg.families.read().expect("registry lock");
    let mut out = String::new();
    for (name, fam) in fams.iter() {
        let _ = writeln!(out, "# TYPE {name} {}", fam.kind.as_str());
        for (set, metric) in &fam.series {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{name}{} {}",
                        label_block(set, None),
                        c.get()
                    );
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{name}{} {}",
                        label_block(set, None),
                        fmt_value(g.get())
                    );
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cum = 0u64;
                    for (bound, count) in
                        snap.buckets().bounds().iter().zip(snap.counts())
                    {
                        cum += count;
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cum}",
                            label_block(set, Some(("le", &fmt_value(*bound))))
                        );
                    }
                    cum += snap.counts().last().expect("overflow cell");
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {cum}",
                        label_block(set, Some(("le", "+Inf")))
                    );
                    let _ = writeln!(
                        out,
                        "{name}_sum{} {}",
                        label_block(set, None),
                        fmt_value(snap.sum())
                    );
                    let _ = writeln!(
                        out,
                        "{name}_count{} {cum}",
                        label_block(set, None)
                    );
                }
            }
        }
    }
    out
}

/// One parsed sample line: metric name, sorted label pairs, value.
type Sample = (String, Vec<(String, String)>, f64);

fn parse_line(line: &str) -> Result<Sample, String> {
    let err = |what: &str| format!("{what}: {line:?}");
    let (name_end, has_labels) = match line.find(['{', ' ']) {
        Some(i) => (i, line.as_bytes()[i] == b'{'),
        None => return Err(err("sample line without value")),
    };
    let name = &line[..name_end];
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(err("invalid metric name"));
    }
    let mut labels = Vec::new();
    let mut rest = &line[name_end..];
    if has_labels {
        rest = &rest[1..];
        loop {
            let eq = rest.find('=').ok_or_else(|| err("label without ="))?;
            let key = rest[..eq].to_string();
            rest = rest
                .get(eq + 1..)
                .filter(|r| r.starts_with('"'))
                .ok_or_else(|| err("label value not quoted"))?;
            let mut value = String::new();
            let mut chars = rest[1..].char_indices();
            let close;
            loop {
                match chars.next() {
                    Some((_, '\\')) => match chars.next() {
                        Some((_, 'n')) => value.push('\n'),
                        Some((_, c @ ('\\' | '"'))) => value.push(c),
                        _ => return Err(err("bad escape")),
                    },
                    Some((i, '"')) => {
                        close = i;
                        break;
                    }
                    Some((_, c)) => value.push(c),
                    None => return Err(err("unterminated label value")),
                }
            }
            labels.push((key, value));
            rest = &rest[1 + close + 1..];
            match rest.as_bytes().first() {
                Some(b',') => rest = &rest[1..],
                Some(b'}') => {
                    rest = &rest[1..];
                    break;
                }
                _ => return Err(err("label list not closed")),
            }
        }
    }
    let value_str = rest
        .strip_prefix(' ')
        .ok_or_else(|| err("no space before value"))?;
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        s => s.parse().map_err(|_| err("unparsable value"))?,
    };
    labels.sort();
    Ok((name.to_string(), labels, value))
}

fn series_key(name: &str, labels: &[(String, String)]) -> String {
    let mut key = name.to_string();
    for (k, v) in labels {
        key.push(';');
        key.push_str(k);
        key.push('=');
        key.push_str(v);
    }
    key
}

/// Parses an exposition and checks it is well formed: every line is a
/// comment or a valid sample, and every histogram is internally
/// consistent (cumulative buckets are monotone and the `+Inf` bucket
/// equals `_count`). Returns the samples keyed by
/// `name;label=value;...` with sorted labels.
pub fn parse_exposition(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut samples = BTreeMap::new();
    // (family, labels-minus-le) -> [(le, cumulative)]
    let mut buckets: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let rest = comment.trim_start();
            if !(rest.starts_with("TYPE ") || rest.starts_with("HELP ")) {
                return Err(format!("unrecognized comment: {line:?}"));
            }
            continue;
        }
        let (name, labels, value) = parse_line(line)?;
        if samples.insert(series_key(&name, &labels), value).is_some() {
            return Err(format!("duplicate series: {line:?}"));
        }
        if let Some(family) = name.strip_suffix("_bucket") {
            let le = labels
                .iter()
                .find(|(k, _)| k == "le")
                .ok_or_else(|| format!("bucket without le: {line:?}"))?;
            let bound = match le.1.as_str() {
                "+Inf" => f64::INFINITY,
                s => {
                    s.parse().map_err(|_| format!("bad le bound: {line:?}"))?
                }
            };
            let rest: Vec<(String, String)> =
                labels.iter().filter(|(k, _)| k != "le").cloned().collect();
            buckets
                .entry(series_key(family, &rest))
                .or_default()
                .push((bound, value));
        }
    }
    for (series, mut cells) in buckets {
        cells.sort_by(|a, b| a.0.total_cmp(&b.0));
        if cells.windows(2).any(|w| w[0].1 > w[1].1) {
            return Err(format!("non-monotone buckets for {series}"));
        }
        let (last_bound, last_cum) =
            *cells.last().expect("grouped series is non-empty");
        if !last_bound.is_infinite() {
            return Err(format!("missing +Inf bucket for {series}"));
        }
        let (family, labels) = match series.split_once(';') {
            Some((f, rest)) => (f, format!(";{rest}")),
            None => (series.as_str(), String::new()),
        };
        let count = samples
            .get(&format!("{family}_count{labels}"))
            .ok_or_else(|| format!("missing _count for {series}"))?;
        if *count != last_cum {
            return Err(format!("+Inf bucket != _count for {series}"));
        }
        if !samples.contains_key(&format!("{family}_sum{labels}")) {
            return Err(format!("missing _sum for {series}"));
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::EventKind;
    use energydx_stats::histogram::Buckets;

    #[test]
    fn renders_sorted_families_and_series() {
        let reg = MetricsRegistry::deterministic();
        reg.counter("z_total", &[]).inc();
        reg.counter("a_total", &[("app", "b")]).add(2);
        reg.counter("a_total", &[("app", "a")]).inc();
        reg.gauge("depth", &[]).set(4.0);
        let text = reg.render_prometheus();
        let a = text.find("# TYPE a_total counter").unwrap();
        let d = text.find("# TYPE depth gauge").unwrap();
        let z = text.find("# TYPE z_total counter").unwrap();
        assert!(a < d && d < z);
        let aa = text.find("a_total{app=\"a\"} 1").unwrap();
        let ab = text.find("a_total{app=\"b\"} 2").unwrap();
        assert!(aa < ab);
        assert!(text.contains("depth 4\n"));
    }

    #[test]
    fn renders_cumulative_histogram() {
        let reg = MetricsRegistry::deterministic();
        let layout = Buckets::new(vec![1.0, 2.0]).unwrap();
        let h = reg.histogram("lat", &[("op", "get")], &layout);
        h.observe(0.5);
        h.observe(0.7);
        h.observe(1.5);
        h.observe(9.0);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{op=\"get\",le=\"1\"} 2"));
        assert!(text.contains("lat_bucket{op=\"get\",le=\"2\"} 3"));
        assert!(text.contains("lat_bucket{op=\"get\",le=\"+Inf\"} 4"));
        assert!(text.contains("lat_count{op=\"get\"} 4"));
        let samples = parse_exposition(&text).unwrap();
        assert!((samples["lat_sum;op=get"] - 11.7).abs() < 1e-9);
    }

    #[test]
    fn render_parse_round_trip() {
        let reg = MetricsRegistry::deterministic();
        reg.counter("ups_total", &[("outcome", "clean")]).add(7);
        reg.gauge("queue_depth", &[]).set(3.0);
        {
            let _s = reg.span("map");
        }
        reg.event(EventKind::Shed, "app=mail");
        let samples = parse_exposition(&reg.render_prometheus()).unwrap();
        assert_eq!(samples.get("ups_total;outcome=clean"), Some(&7.0));
        assert_eq!(samples.get("queue_depth"), Some(&3.0));
        assert_eq!(
            samples.get("energydx_stage_duration_seconds_count;stage=map"),
            Some(&1.0)
        );
        assert_eq!(samples.get("energydx_events_total;kind=shed"), Some(&1.0));
    }

    #[test]
    fn label_values_are_escaped_and_unescaped() {
        let reg = MetricsRegistry::deterministic();
        reg.counter("odd_total", &[("path", "a\"b\\c\nd")]).inc();
        let text = reg.render_prometheus();
        assert!(text.contains(r#"odd_total{path="a\"b\\c\nd"} 1"#));
        let samples = parse_exposition(&text).unwrap();
        assert_eq!(samples.get("odd_total;path=a\"b\\c\nd"), Some(&1.0));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_exposition("garbage").is_err());
        assert!(parse_exposition("x 1\nx 2\n").is_err());
        assert!(parse_exposition("# random comment\n").is_err());
        assert!(parse_exposition("x{a=\"1\" 2\n").is_err());
        assert!(parse_exposition("x nope\n").is_err());
        // Histogram with a missing +Inf bucket is rejected.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\n\
                   h_sum 1\nh_count 1\n";
        assert!(parse_exposition(bad).is_err());
        // Non-monotone cumulative buckets are rejected.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 2\n\
                   h_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n";
        assert!(parse_exposition(bad).is_err());
    }

    #[test]
    fn equal_registries_render_equal_bytes() {
        let make = || {
            let reg = MetricsRegistry::deterministic();
            reg.counter("a_total", &[("k", "v")]).add(3);
            {
                let _s = reg.span("detect");
            }
            reg.gauge("g", &[]).set(0.25);
            reg.render_prometheus()
        };
        assert_eq!(make(), make());
    }
}
