//! The registry: atomic metric primitives, families, span guards.

use crate::ring::{EventKind, EventRing, ObsEvent};
use energydx_stats::histogram::{Buckets, HistogramCells};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// The family every [`MetricsRegistry::span`] guard records into.
pub const STAGE_FAMILY: &str = "energydx_stage_duration_seconds";

/// The default duration bucket layout: 1 µs growing ×4 up to ~1074 s.
/// Sixteen buckets cover a cache-hit map shard and a stuck checkpoint
/// alike without per-family tuning.
pub fn duration_buckets() -> Buckets {
    Buckets::exponential(1e-6, 4.0, 16)
        .expect("static layout parameters are valid")
}

/// A monotonically increasing integer. Increments are single atomic
/// adds; reads are relaxed loads.
#[derive(Debug, Default)]
pub struct Counter {
    cell: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A settable float, stored as its bit pattern in an atomic word.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `v` (compare-and-swap loop; gauges are low-traffic).
    pub fn add(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram with atomic cells. Bucket math lives in
/// [`energydx_stats::histogram`]; this adds the concurrent recording.
#[derive(Debug)]
pub struct Histogram {
    buckets: Buckets,
    cells: Vec<AtomicU64>,
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(buckets: Buckets) -> Self {
        let cells = (0..buckets.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets,
            cells,
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation: one atomic add on the bucket cell plus
    /// a CAS loop on the sum.
    pub fn observe(&self, v: f64) {
        let idx = self.buckets.index_for(v);
        self.cells[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The bucket layout.
    pub fn buckets(&self) -> &Buckets {
        &self.buckets
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.cells.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy of the cells, as the plain mergeable type.
    pub fn snapshot(&self) -> HistogramCells {
        let counts = self
            .cells
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let sum = f64::from_bits(self.sum_bits.load(Ordering::Relaxed));
        HistogramCells::from_parts(self.buckets.clone(), counts, sum)
            .expect("cells match their own layout")
    }
}

/// What a family holds; fixed by the first registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Sorted `(label, value)` pairs identifying one series in a family.
pub(crate) type LabelSet = Vec<(String, String)>;

#[derive(Debug)]
pub(crate) struct Family {
    pub(crate) kind: Kind,
    pub(crate) series: BTreeMap<LabelSet, Metric>,
}

fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    set.sort();
    set
}

/// Named families of counters, gauges, and histograms, plus the event
/// ring. Lookup takes a read lock; first registration of a series
/// takes the write lock once. Handles are `Arc`s — cache them in hot
/// loops and the registry is never touched at all.
pub struct MetricsRegistry {
    zero_time: bool,
    pub(crate) families: RwLock<BTreeMap<String, Family>>,
    events: EventRing,
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("zero_time", &self.zero_time)
            .field(
                "families",
                &self.families.read().expect("registry lock").len(),
            )
            .finish()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// A registry on the wall clock — unless
    /// `ENERGYDX_DETERMINISTIC_TIME=1` is set, in which case spans
    /// record zero (checked once, here, so a registry's behavior never
    /// changes mid-flight).
    pub fn new() -> Self {
        let zero = std::env::var("ENERGYDX_DETERMINISTIC_TIME")
            .map(|v| v == "1")
            .unwrap_or(false);
        Self::with_zero_time(zero)
    }

    /// A registry whose spans always record zero duration, for
    /// byte-stable expositions in tests regardless of environment.
    pub fn deterministic() -> Self {
        Self::with_zero_time(true)
    }

    fn with_zero_time(zero_time: bool) -> Self {
        MetricsRegistry {
            zero_time,
            families: RwLock::new(BTreeMap::new()),
            events: EventRing::new(64),
        }
    }

    /// True when spans record zero duration.
    pub fn is_deterministic(&self) -> bool {
        self.zero_time
    }

    fn get_or_register(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        make: impl Fn() -> Metric,
    ) -> Metric {
        let set = label_set(labels);
        {
            let fams = self.families.read().expect("registry lock");
            if let Some(fam) = fams.get(family) {
                if fam.kind != kind {
                    // Type clash: hand back a detached primitive so
                    // the caller keeps working; the registered family
                    // keeps its original type.
                    return make();
                }
                if let Some(m) = fam.series.get(&set) {
                    return m.clone();
                }
            }
        }
        let mut fams = self.families.write().expect("registry lock");
        let fam = fams.entry(family.to_string()).or_insert_with(|| Family {
            kind,
            series: BTreeMap::new(),
        });
        if fam.kind != kind {
            return make();
        }
        fam.series.entry(set).or_insert_with(make).clone()
    }

    /// The counter for `family{labels}`, registering it on first use.
    pub fn counter(
        &self,
        family: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        match self.get_or_register(family, labels, Kind::Counter, || {
            Metric::Counter(Arc::new(Counter::default()))
        }) {
            Metric::Counter(c) => c,
            _ => Arc::new(Counter::default()),
        }
    }

    /// The gauge for `family{labels}`, registering it on first use.
    pub fn gauge(&self, family: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_register(family, labels, Kind::Gauge, || {
            Metric::Gauge(Arc::new(Gauge::default()))
        }) {
            Metric::Gauge(g) => g,
            _ => Arc::new(Gauge::default()),
        }
    }

    /// The histogram for `family{labels}` over `buckets`, registering
    /// it on first use (an existing series keeps its original layout).
    pub fn histogram(
        &self,
        family: &str,
        labels: &[(&str, &str)],
        buckets: &Buckets,
    ) -> Arc<Histogram> {
        match self.get_or_register(family, labels, Kind::Histogram, || {
            Metric::Histogram(Arc::new(Histogram::new(buckets.clone())))
        }) {
            Metric::Histogram(h) => h,
            _ => Arc::new(Histogram::new(buckets.clone())),
        }
    }

    /// An RAII guard timing one pipeline stage into
    /// [`STAGE_FAMILY`]`{stage=...}`.
    pub fn span(&self, stage: &str) -> SpanGuard {
        self.timer(STAGE_FAMILY, &[("stage", stage)])
    }

    /// An RAII guard timing into an arbitrary duration family.
    pub fn timer(&self, family: &str, labels: &[(&str, &str)]) -> SpanGuard {
        let hist = self.histogram(family, labels, &duration_buckets());
        SpanGuard {
            hist: Some(hist),
            start: if self.zero_time {
                None
            } else {
                Some(Instant::now())
            },
        }
    }

    /// Records a notable event into the ring and bumps
    /// `energydx_events_total{kind=...}`.
    pub fn event(&self, kind: EventKind, detail: impl Into<String>) {
        self.events.push(kind, detail.into());
        self.counter("energydx_events_total", &[("kind", kind.as_str())])
            .inc();
    }

    /// The most recent events, oldest first.
    pub fn recent_events(&self) -> Vec<ObsEvent> {
        self.events.snapshot()
    }

    /// The value of a registered counter, if any — for assertions.
    pub fn counter_value(
        &self,
        family: &str,
        labels: &[(&str, &str)],
    ) -> Option<u64> {
        let fams = self.families.read().expect("registry lock");
        match fams.get(family)?.series.get(&label_set(labels))? {
            Metric::Counter(c) => Some(c.get()),
            _ => None,
        }
    }

    /// The value of a registered gauge, if any — for assertions.
    pub fn gauge_value(
        &self,
        family: &str,
        labels: &[(&str, &str)],
    ) -> Option<f64> {
        let fams = self.families.read().expect("registry lock");
        match fams.get(family)?.series.get(&label_set(labels))? {
            Metric::Gauge(g) => Some(g.get()),
            _ => None,
        }
    }

    /// A snapshot of a registered histogram, if any — for assertions.
    pub fn histogram_snapshot(
        &self,
        family: &str,
        labels: &[(&str, &str)],
    ) -> Option<HistogramCells> {
        let fams = self.families.read().expect("registry lock");
        match fams.get(family)?.series.get(&label_set(labels))? {
            Metric::Histogram(h) => Some(h.snapshot()),
            _ => None,
        }
    }

    /// Folds another registry's numeric series into this one by
    /// addition: counters and gauges add, histogram cells add
    /// bucket-wise. Families whose type (or bucket layout) disagrees
    /// are skipped rather than corrupted. The event ring is *not*
    /// merged — rings are per-registry recency windows, but the
    /// mirrored `energydx_events_total` counters do merge, so counts
    /// survive the fold. Addition is commutative and associative, so
    /// folding shard registries in any order yields the same totals.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        let theirs = other.families.read().expect("registry lock");
        for (name, fam) in theirs.iter() {
            for (set, metric) in &fam.series {
                let labels: Vec<(&str, &str)> =
                    set.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                match metric {
                    Metric::Counter(c) => {
                        self.counter(name, &labels).add(c.get());
                    }
                    Metric::Gauge(g) => {
                        self.gauge(name, &labels).add(g.get());
                    }
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        let mine =
                            self.histogram(name, &labels, snap.buckets());
                        if mine.buckets() == snap.buckets() {
                            for (i, n) in snap.counts().iter().enumerate() {
                                mine.cells[i].fetch_add(*n, Ordering::Relaxed);
                            }
                            let mut cur = mine.sum_bits.load(Ordering::Relaxed);
                            loop {
                                let next = (f64::from_bits(cur) + snap.sum())
                                    .to_bits();
                                match mine.sum_bits.compare_exchange_weak(
                                    cur,
                                    next,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                ) {
                                    Ok(_) => break,
                                    Err(seen) => cur = seen,
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Renders the registry in Prometheus text format.
    pub fn render_prometheus(&self) -> String {
        crate::expo::render_prometheus(self)
    }
}

/// RAII span: records elapsed seconds into its histogram on drop (or
/// exactly zero on a deterministic-time registry).
#[derive(Debug)]
pub struct SpanGuard {
    hist: Option<Arc<Histogram>>,
    start: Option<Instant>,
}

impl SpanGuard {
    /// A guard that records nothing — the disabled-metrics case.
    pub fn noop() -> Self {
        SpanGuard {
            hist: None,
            start: None,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(h) = self.hist.take() {
            let secs =
                self.start.map(|s| s.elapsed().as_secs_f64()).unwrap_or(0.0);
            h.observe(secs);
        }
    }
}

/// An optional handle to a shared registry: `Clone` is an `Arc` clone,
/// and every recording method is a no-op when disabled, so structs can
/// carry one unconditionally (the default is disabled).
#[derive(Clone, Default)]
pub struct Metrics {
    reg: Option<Arc<MetricsRegistry>>,
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Metrics")
            .field("enabled", &self.reg.is_some())
            .finish()
    }
}

impl Metrics {
    /// The no-op handle.
    pub fn disabled() -> Self {
        Metrics { reg: None }
    }

    /// A handle recording into `reg`.
    pub fn enabled(reg: Arc<MetricsRegistry>) -> Self {
        Metrics { reg: Some(reg) }
    }

    /// True when recordings land somewhere.
    pub fn is_enabled(&self) -> bool {
        self.reg.is_some()
    }

    /// The underlying registry, when enabled.
    pub fn registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.reg.as_ref()
    }

    /// Bumps a counter by one.
    pub fn inc(&self, family: &str, labels: &[(&str, &str)]) {
        if let Some(reg) = &self.reg {
            reg.counter(family, labels).inc();
        }
    }

    /// Bumps a counter by `n`.
    pub fn add(&self, family: &str, labels: &[(&str, &str)], n: u64) {
        if let Some(reg) = &self.reg {
            reg.counter(family, labels).add(n);
        }
    }

    /// Sets a gauge.
    pub fn set_gauge(&self, family: &str, labels: &[(&str, &str)], v: f64) {
        if let Some(reg) = &self.reg {
            reg.gauge(family, labels).set(v);
        }
    }

    /// Records into a histogram over the default duration buckets.
    pub fn observe(&self, family: &str, labels: &[(&str, &str)], v: f64) {
        if let Some(reg) = &self.reg {
            reg.histogram(family, labels, &duration_buckets())
                .observe(v);
        }
    }

    /// Times a pipeline stage (see [`MetricsRegistry::span`]).
    pub fn span(&self, stage: &str) -> SpanGuard {
        match &self.reg {
            Some(reg) => reg.span(stage),
            None => SpanGuard::noop(),
        }
    }

    /// Times into an arbitrary duration family.
    pub fn timer(&self, family: &str, labels: &[(&str, &str)]) -> SpanGuard {
        match &self.reg {
            Some(reg) => reg.timer(family, labels),
            None => SpanGuard::noop(),
        }
    }

    /// Records a notable event (see [`MetricsRegistry::event`]).
    pub fn event(&self, kind: EventKind, detail: impl Into<String>) {
        if let Some(reg) = &self.reg {
            reg.event(kind, detail);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::EventKind;

    #[test]
    fn counter_registers_once_and_accumulates() {
        let reg = MetricsRegistry::deterministic();
        let a = reg.counter("hits_total", &[("app", "mail")]);
        let b = reg.counter("hits_total", &[("app", "mail")]);
        a.inc();
        b.add(2);
        assert_eq!(
            reg.counter_value("hits_total", &[("app", "mail")]),
            Some(3)
        );
        assert_eq!(reg.counter_value("hits_total", &[]), None);
        assert_eq!(reg.counter_value("absent", &[]), None);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let reg = MetricsRegistry::deterministic();
        reg.counter("x_total", &[("a", "1"), ("b", "2")]).inc();
        reg.counter("x_total", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(
            reg.counter_value("x_total", &[("a", "1"), ("b", "2")]),
            Some(2)
        );
    }

    #[test]
    fn gauge_set_and_add() {
        let reg = MetricsRegistry::deterministic();
        let g = reg.gauge("depth", &[]);
        g.set(4.0);
        g.add(-1.5);
        assert_eq!(reg.gauge_value("depth", &[]), Some(2.5));
    }

    #[test]
    fn kind_clash_returns_detached_handle() {
        let reg = MetricsRegistry::deterministic();
        reg.counter("thing", &[]).inc();
        // Asking for the same family as a gauge must not panic or
        // clobber the counter.
        reg.gauge("thing", &[]).set(9.0);
        assert_eq!(reg.counter_value("thing", &[]), Some(1));
        assert_eq!(reg.gauge_value("thing", &[]), None);
    }

    #[test]
    fn deterministic_spans_record_zero() {
        let reg = MetricsRegistry::deterministic();
        {
            let _s = reg.span("detect");
        }
        let snap = reg
            .histogram_snapshot(STAGE_FAMILY, &[("stage", "detect")])
            .unwrap();
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.sum(), 0.0);
        assert_eq!(snap.counts()[0], 1); // zero lands in the first bucket
    }

    #[test]
    fn wall_clock_spans_record_positive_elapsed() {
        let reg = MetricsRegistry::with_zero_time(false);
        {
            let _s = reg.span("sleepy");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = reg
            .histogram_snapshot(STAGE_FAMILY, &[("stage", "sleepy")])
            .unwrap();
        assert_eq!(snap.count(), 1);
        assert!(snap.sum() >= 0.002);
    }

    #[test]
    fn events_feed_ring_and_counter() {
        let reg = MetricsRegistry::deterministic();
        reg.event(EventKind::Shed, "app=mail");
        reg.event(EventKind::Shed, "app=gps");
        reg.event(EventKind::Compaction, "folded=3");
        let events = reg.recent_events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[2].kind, EventKind::Compaction);
        assert_eq!(
            reg.counter_value("energydx_events_total", &[("kind", "shed")]),
            Some(2)
        );
    }

    #[test]
    fn merge_adds_counters_gauges_and_cells() {
        let a = MetricsRegistry::deterministic();
        let b = MetricsRegistry::deterministic();
        a.counter("n_total", &[]).add(2);
        b.counter("n_total", &[]).add(3);
        b.counter("only_b_total", &[("x", "y")]).inc();
        a.gauge("level", &[]).set(1.5);
        b.gauge("level", &[]).set(2.0);
        let layout = duration_buckets();
        a.histogram("dur", &[], &layout).observe(0.5);
        b.histogram("dur", &[], &layout).observe(0.5);
        b.histogram("dur", &[], &layout).observe(2e-6);

        a.merge_from(&b);
        assert_eq!(a.counter_value("n_total", &[]), Some(5));
        assert_eq!(a.counter_value("only_b_total", &[("x", "y")]), Some(1));
        assert_eq!(a.gauge_value("level", &[]), Some(3.5));
        let snap = a.histogram_snapshot("dur", &[]).unwrap();
        assert_eq!(snap.count(), 3);
        assert!((snap.sum() - 1.000002).abs() < 1e-9);
    }

    #[test]
    fn disabled_metrics_are_noops() {
        let m = Metrics::disabled();
        m.inc("a_total", &[]);
        m.set_gauge("g", &[], 1.0);
        m.observe("h", &[], 1.0);
        m.event(EventKind::Shed, "x");
        drop(m.span("stage"));
        assert!(!m.is_enabled());
        assert!(m.registry().is_none());

        let reg = Arc::new(MetricsRegistry::deterministic());
        let m = Metrics::enabled(Arc::clone(&reg));
        m.inc("a_total", &[]);
        drop(m.span("stage"));
        assert_eq!(reg.counter_value("a_total", &[]), Some(1));
        assert!(m.is_enabled());
    }
}
