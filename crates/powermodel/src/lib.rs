//! Component power model, utilization sampler, and power-model scaling.
//!
//! The paper estimates app power with the PowerTutor-style online model
//! of Zhang et al. \[20\]: per-component linear coefficients applied to
//! per-app utilization read from procfs every 500 ms, with a reported
//! estimation error under 2.5 %. Traces from heterogeneous phones are
//! made comparable through power-model scaling (Mittal et al. \[22\]).
//! This crate reproduces all three pieces over the simulated hardware
//! timeline of `energydx-droidsim`:
//!
//! - [`profile`] — per-device power coefficients (mW at full
//!   utilization per component) for several phone models.
//! - [`sampler`] — the 500 ms procfs sampler turning a
//!   [`energydx_droidsim::Timeline`] into a
//!   [`energydx_trace::UtilizationTrace`], with its own measurable
//!   power overhead (§IV-F reports 32 mW).
//! - [`model`] — utilization → power estimation with bounded
//!   multiplicative noise (the ≤2.5 % estimation error).
//! - [`scaling`] — cross-device power-trace normalization.
//! - [`battery`] — battery lifetime estimation, the user-visible cost
//!   of an ABD.
//!
//! # Examples
//!
//! ```
//! use energydx_powermodel::{DeviceProfile, PowerModel, UtilizationSampler};
//! use energydx_droidsim::Timeline;
//! use energydx_trace::util::Component;
//!
//! let mut timeline = Timeline::new();
//! timeline.add(Component::Gps, 0, 10_000_000, 1.0);
//!
//! let sampler = UtilizationSampler::default();
//! let utilization = sampler.sample(&timeline, 10_000);
//! let model = PowerModel::noiseless(DeviceProfile::nexus6());
//! let power = model.estimate_trace(&utilization);
//! assert!(power.mean_mw() > 300.0); // GPS fully on
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod model;
pub mod profile;
pub mod sampler;
pub mod scaling;

pub use battery::Battery;
pub use model::PowerModel;
pub use profile::DeviceProfile;
pub use sampler::UtilizationSampler;
pub use scaling::scale_trace;
