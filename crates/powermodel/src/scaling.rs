//! Power-model scaling across heterogeneous devices.
//!
//! Traces come from "more than 30 different volunteer users with
//! various smartphones"; the analysis compares power values across
//! traces, so §III-A Step 1 performs "power model scaling \[22\] ... to
//! make their power data comparable". With a linear component model the
//! exact transformation is per-component: multiply each component's
//! power by the ratio of the reference profile's coefficient to the
//! source profile's coefficient.

use crate::profile::DeviceProfile;
use energydx_trace::power::{PowerSample, PowerTrace};
use energydx_trace::util::Component;

/// Rescales `trace` (measured under `from`) to what the `to` device
/// would have drawn for the same utilization.
///
/// Components with a zero coefficient in `from` carry no information
/// and are passed through unchanged.
///
/// # Examples
///
/// ```
/// # use energydx_powermodel::{scale_trace, DeviceProfile, PowerModel, UtilizationSampler};
/// # use energydx_droidsim::Timeline;
/// # use energydx_trace::util::Component;
/// let mut tl = Timeline::new();
/// tl.add(Component::Gps, 0, 5_000_000, 1.0);
/// let util = UtilizationSampler::default().sample(&tl, 5_000);
///
/// // Same workload measured on two phones...
/// let on_n5 = PowerModel::noiseless(DeviceProfile::nexus5()).estimate_trace(&util);
/// let on_n6 = PowerModel::noiseless(DeviceProfile::nexus6()).estimate_trace(&util);
/// // ...scaled to the same reference, they agree.
/// let scaled = scale_trace(&on_n5, &DeviceProfile::nexus5(), &DeviceProfile::nexus6());
/// assert!((scaled.mean_mw() - on_n6.mean_mw()).abs() < 1.0);
/// ```
pub fn scale_trace(
    trace: &PowerTrace,
    from: &DeviceProfile,
    to: &DeviceProfile,
) -> PowerTrace {
    trace
        .samples()
        .iter()
        .map(|s| scale_sample(s, from, to))
        .collect()
}

/// Rescales one sample; see [`scale_trace`].
pub fn scale_sample(
    sample: &PowerSample,
    from: &DeviceProfile,
    to: &DeviceProfile,
) -> PowerSample {
    let mut out = PowerSample::new(sample.timestamp_ms);
    for c in Component::ALL {
        let mw = sample.component(c);
        let scaled = if c == Component::Cpu {
            // The CPU lane carries base power: scale the base and the
            // dynamic part separately.
            let dynamic = (mw - from.base_mw).max(0.0);
            to.base_mw + dynamic * ratio(from.coefficient(c), to.coefficient(c))
        } else {
            mw * ratio(from.coefficient(c), to.coefficient(c))
        };
        out.set_component(c, scaled);
    }
    out
}

fn ratio(from: f64, to: f64) -> f64 {
    if from <= 0.0 {
        1.0
    } else {
        to / from
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PowerModel;
    use energydx_trace::util::UtilizationSample;

    fn power_of(
        profile: &DeviceProfile,
        c: Component,
        level: f64,
    ) -> PowerSample {
        let model = PowerModel::noiseless(profile.clone());
        let mut u = UtilizationSample::new(500);
        u.set(c, level);
        model.estimate(&u)
    }

    #[test]
    fn scaling_to_self_is_identity() {
        let p = DeviceProfile::nexus6();
        let s = power_of(&p, Component::Wifi, 0.7);
        let scaled = scale_sample(&s, &p, &p);
        assert!((scaled.total_mw - s.total_mw).abs() < 1e-9);
    }

    #[test]
    fn scaling_recovers_reference_measurement_exactly() {
        let from = DeviceProfile::galaxy_s5();
        let to = DeviceProfile::nexus6();
        for c in Component::ALL {
            for level in [0.25, 0.5, 1.0] {
                let measured = power_of(&from, c, level);
                let expected = power_of(&to, c, level);
                let scaled = scale_sample(&measured, &from, &to);
                assert!(
                    (scaled.total_mw - expected.total_mw).abs() < 1e-6,
                    "{c} at {level}: {} vs {}",
                    scaled.total_mw,
                    expected.total_mw
                );
            }
        }
    }

    #[test]
    fn scaling_is_invertible() {
        let a = DeviceProfile::nexus5();
        let b = DeviceProfile::galaxy_s5();
        let s = power_of(&a, Component::Cpu, 0.6);
        let round = scale_sample(&scale_sample(&s, &a, &b), &b, &a);
        assert!((round.total_mw - s.total_mw).abs() < 1e-6);
    }

    #[test]
    fn zero_coefficient_passes_through() {
        let from = DeviceProfile::new("flat", 5.0);
        let to = DeviceProfile::nexus6();
        let mut s = PowerSample::new(0);
        s.set_component(Component::Audio, 100.0);
        let scaled = scale_sample(&s, &from, &to);
        assert_eq!(scaled.component(Component::Audio), 100.0);
    }

    #[test]
    fn trace_scaling_preserves_length() {
        let from = DeviceProfile::nexus5();
        let to = DeviceProfile::nexus6();
        let trace: PowerTrace = (1..=5)
            .map(|i| {
                let mut s = PowerSample::new(i * 500);
                s.set_component(Component::Cpu, 50.0 * i as f64);
                s
            })
            .collect();
        let scaled = scale_trace(&trace, &from, &to);
        assert_eq!(scaled.len(), 5);
        assert_eq!(scaled.samples()[4].timestamp_ms, 2500);
    }
}
