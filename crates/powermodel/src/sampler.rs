//! The 500 ms procfs utilization sampler.
//!
//! The paper's background service reads procfs every 500 ms — "a
//! trade-off between power estimation accuracy and runtime logging
//! overhead" — and attributes utilization to the suspect app by PID.
//! Here the sampler reads the simulated hardware timeline instead; the
//! attribution-by-PID property holds by construction because the
//! timeline only ever contains the suspect app's activity.

use energydx_droidsim::Timeline;
use energydx_trace::util::{Component, UtilizationSample, UtilizationTrace};

/// Power drawn by the sampler itself (utilization + event collection),
/// in milliwatts. §IV-F reports 32 mW ≈ 4.5 % of typical phone power.
pub const SAMPLER_OVERHEAD_MW: f64 = 32.0;

/// Periodic reader of the hardware timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationSampler {
    period_ms: u64,
}

impl UtilizationSampler {
    /// Creates a sampler with the paper's 500 ms period.
    pub fn new() -> Self {
        UtilizationSampler { period_ms: 500 }
    }

    /// Creates a sampler with a custom period (≥ 1 ms).
    pub fn with_period(period_ms: u64) -> Self {
        UtilizationSampler {
            period_ms: period_ms.max(1),
        }
    }

    /// The sampling period in milliseconds.
    pub fn period_ms(&self) -> u64 {
        self.period_ms
    }

    /// Samples the timeline from 0 to `duration_ms`. Each sample at
    /// timestamp `t` reports the mean utilization over the preceding
    /// window `[t - period, t)`, which is how a procfs counter delta
    /// behaves.
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_powermodel::UtilizationSampler;
    /// # use energydx_droidsim::Timeline;
    /// # use energydx_trace::util::Component;
    /// let mut tl = Timeline::new();
    /// tl.add(Component::Cpu, 0, 1_000_000, 1.0);
    /// let trace = UtilizationSampler::default().sample(&tl, 2_000);
    /// assert_eq!(trace.len(), 4);
    /// assert_eq!(trace.samples()[0].get(Component::Cpu), 1.0);
    /// assert_eq!(trace.samples()[3].get(Component::Cpu), 0.0);
    /// ```
    pub fn sample(
        &self,
        timeline: &Timeline,
        duration_ms: u64,
    ) -> UtilizationTrace {
        let mut trace = UtilizationTrace::with_period(self.period_ms);
        let period_us = self.period_ms * 1000;
        let mut t = self.period_ms;
        while t <= duration_ms {
            let t_us = t * 1000;
            let mut sample = UtilizationSample::new(t);
            for c in Component::ALL {
                sample.set(
                    c,
                    timeline.mean_utilization(c, t_us - period_us, t_us),
                );
            }
            trace.push(sample);
            t += self.period_ms;
        }
        trace
    }

    /// The sampler's own power draw in milliwatts — the §IV-F "power
    /// overhead" experiment compares this against total phone power.
    pub fn overhead_mw(&self) -> f64 {
        // Overhead scales inversely with the period: sampling twice as
        // often costs twice the wakeups. 500 ms ↦ 32 mW.
        SAMPLER_OVERHEAD_MW * 500.0 / self.period_ms as f64
    }
}

impl Default for UtilizationSampler {
    fn default() -> Self {
        UtilizationSampler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_period_is_500ms() {
        assert_eq!(UtilizationSampler::default().period_ms(), 500);
    }

    #[test]
    fn sample_count_matches_duration() {
        let tl = Timeline::new();
        let trace = UtilizationSampler::default().sample(&tl, 10_000);
        assert_eq!(trace.len(), 20);
        assert_eq!(trace.period_ms, 500);
    }

    #[test]
    fn windows_are_trailing() {
        let mut tl = Timeline::new();
        // Active only during the second window [500, 1000).
        tl.add(Component::Wifi, 500_000, 1_000_000, 1.0);
        let trace = UtilizationSampler::default().sample(&tl, 1_500);
        assert_eq!(trace.samples()[0].get(Component::Wifi), 0.0);
        assert_eq!(trace.samples()[1].get(Component::Wifi), 1.0);
        assert_eq!(trace.samples()[2].get(Component::Wifi), 0.0);
    }

    #[test]
    fn partial_window_activity_is_prorated() {
        let mut tl = Timeline::new();
        tl.add(Component::Cpu, 0, 250_000, 1.0);
        let trace = UtilizationSampler::default().sample(&tl, 500);
        assert!((trace.samples()[0].get(Component::Cpu) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn finer_period_costs_more_power() {
        let fast = UtilizationSampler::with_period(100);
        let slow = UtilizationSampler::with_period(1000);
        assert!(fast.overhead_mw() > SAMPLER_OVERHEAD_MW);
        assert!(slow.overhead_mw() < SAMPLER_OVERHEAD_MW);
        assert_eq!(UtilizationSampler::default().overhead_mw(), 32.0);
    }

    #[test]
    fn zero_duration_yields_empty_trace() {
        let tl = Timeline::new();
        assert!(UtilizationSampler::default().sample(&tl, 0).is_empty());
    }

    #[test]
    fn custom_period_is_clamped_to_one_ms() {
        assert_eq!(UtilizationSampler::with_period(0).period_ms(), 1);
    }
}
