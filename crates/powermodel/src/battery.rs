//! Battery lifetime estimation.
//!
//! The paper's motivation is that an ABD "consumes an unnecessarily
//! high amount of energy and causes short battery lifetime" (§I). This
//! module turns mean power draws into the user-visible quantity: hours
//! of battery life, and how many of them an ABD costs.

use serde::{Deserialize, Serialize};

/// A phone battery: capacity and nominal voltage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    /// Capacity in milliamp-hours.
    pub capacity_mah: f64,
    /// Nominal voltage in volts.
    pub voltage_v: f64,
}

impl Battery {
    /// The Nexus 6 battery (3220 mAh, 3.8 V nominal).
    pub fn nexus6() -> Self {
        Battery {
            capacity_mah: 3_220.0,
            voltage_v: 3.8,
        }
    }

    /// Total energy content in milliwatt-hours.
    pub fn capacity_mwh(&self) -> f64 {
        self.capacity_mah * self.voltage_v
    }

    /// Hours until empty at a constant draw of `mean_mw` milliwatts.
    /// Returns infinity for non-positive draw.
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_powermodel::battery::Battery;
    /// let b = Battery::nexus6();
    /// // A phone averaging ~700 mW lasts around 17.5 hours.
    /// let hours = b.lifetime_hours(700.0);
    /// assert!((17.0..18.0).contains(&hours));
    /// ```
    pub fn lifetime_hours(&self, mean_mw: f64) -> f64 {
        if mean_mw <= 0.0 {
            return f64::INFINITY;
        }
        self.capacity_mwh() / mean_mw
    }

    /// Battery percentage drained per hour at a constant draw.
    pub fn drain_pct_per_hour(&self, mean_mw: f64) -> f64 {
        (mean_mw.max(0.0) / self.capacity_mwh()) * 100.0
    }

    /// Hours of battery life an ABD costs, given the phone's baseline
    /// draw and the app's extra draw caused by the ABD: the difference
    /// between lifetime without and with the anomaly.
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_powermodel::battery::Battery;
    /// let b = Battery::nexus6();
    /// // A 400 mW GPS leak on top of a 300 mW baseline roughly halves
    /// // standby life.
    /// let lost = b.lifetime_lost_hours(300.0, 400.0);
    /// assert!(lost > 20.0);
    /// ```
    pub fn lifetime_lost_hours(
        &self,
        baseline_mw: f64,
        abd_extra_mw: f64,
    ) -> f64 {
        let without = self.lifetime_hours(baseline_mw);
        let with = self.lifetime_hours(baseline_mw + abd_extra_mw.max(0.0));
        if without.is_infinite() {
            return f64::INFINITY;
        }
        without - with
    }
}

impl Default for Battery {
    fn default() -> Self {
        Battery::nexus6()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_volt_amp_hours() {
        let b = Battery::nexus6();
        assert!((b.capacity_mwh() - 12_236.0).abs() < 1.0);
    }

    #[test]
    fn lifetime_is_inverse_in_power() {
        let b = Battery::nexus6();
        let at_500 = b.lifetime_hours(500.0);
        let at_1000 = b.lifetime_hours(1_000.0);
        assert!((at_500 / at_1000 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_draw_lasts_forever() {
        assert!(Battery::nexus6().lifetime_hours(0.0).is_infinite());
        assert!(Battery::nexus6().lifetime_hours(-5.0).is_infinite());
    }

    #[test]
    fn drain_percentage_complements_lifetime() {
        let b = Battery::nexus6();
        let mw = 611.8;
        let pct_per_hour = b.drain_pct_per_hour(mw);
        let hours = b.lifetime_hours(mw);
        assert!((pct_per_hour * hours - 100.0).abs() < 1e-6);
    }

    #[test]
    fn abd_cost_is_positive_and_monotone() {
        let b = Battery::nexus6();
        let small = b.lifetime_lost_hours(300.0, 100.0);
        let large = b.lifetime_lost_hours(300.0, 400.0);
        assert!(small > 0.0);
        assert!(large > small);
        assert_eq!(b.lifetime_lost_hours(300.0, 0.0), 0.0);
    }
}
