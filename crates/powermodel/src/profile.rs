//! Device power profiles: per-component coefficients.
//!
//! A profile gives, for each hardware component, the app-attributable
//! power draw in milliwatts when the component runs at full utilization
//! for the app. Coefficients are in the range published for the
//! PowerTutor model's reference handsets and the Nexus-class phones the
//! paper measures with a Monsoon monitor.

use energydx_trace::util::Component;
use serde::{Deserialize, Serialize};

/// Per-component power coefficients of one phone model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Profile name (matches `TraceBundle::device`).
    pub name: String,
    coefficients_mw: [f64; 6],
    /// Residual app-attributed power while the app process is alive (mW).
    pub base_mw: f64,
}

impl DeviceProfile {
    /// Builds a custom profile.
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_powermodel::DeviceProfile;
    /// # use energydx_trace::util::Component;
    /// let p = DeviceProfile::new("custom", 10.0)
    ///     .with_coefficient(Component::Cpu, 900.0);
    /// assert_eq!(p.coefficient(Component::Cpu), 900.0);
    /// ```
    pub fn new(name: impl Into<String>, base_mw: f64) -> Self {
        DeviceProfile {
            name: name.into(),
            coefficients_mw: [0.0; 6],
            base_mw: base_mw.max(0.0),
        }
    }

    /// Sets one component's full-utilization coefficient (mW).
    pub fn with_coefficient(mut self, component: Component, mw: f64) -> Self {
        self.coefficients_mw[component as usize] = mw.max(0.0);
        self
    }

    /// The coefficient of one component (mW at utilization 1.0).
    pub fn coefficient(&self, component: Component) -> f64 {
        self.coefficients_mw[component as usize]
    }

    /// The Nexus 6 profile — the phone the paper's §IV-F overhead
    /// numbers were measured on.
    pub fn nexus6() -> Self {
        DeviceProfile::new("nexus6", 12.0)
            .with_coefficient(Component::Cpu, 1100.0)
            .with_coefficient(Component::Display, 414.0)
            .with_coefficient(Component::Wifi, 720.0)
            .with_coefficient(Component::Gps, 429.0)
            .with_coefficient(Component::Cellular, 800.0)
            .with_coefficient(Component::Audio, 384.0)
    }

    /// A Nexus 5-class profile (smaller display, weaker radios).
    pub fn nexus5() -> Self {
        DeviceProfile::new("nexus5", 10.0)
            .with_coefficient(Component::Cpu, 950.0)
            .with_coefficient(Component::Display, 350.0)
            .with_coefficient(Component::Wifi, 650.0)
            .with_coefficient(Component::Gps, 400.0)
            .with_coefficient(Component::Cellular, 720.0)
            .with_coefficient(Component::Audio, 330.0)
    }

    /// A Galaxy-S5-class profile (AMOLED display dominates).
    pub fn galaxy_s5() -> Self {
        DeviceProfile::new("galaxy_s5", 14.0)
            .with_coefficient(Component::Cpu, 1250.0)
            .with_coefficient(Component::Display, 520.0)
            .with_coefficient(Component::Wifi, 700.0)
            .with_coefficient(Component::Gps, 445.0)
            .with_coefficient(Component::Cellular, 830.0)
            .with_coefficient(Component::Audio, 360.0)
    }

    /// Looks up a built-in profile by name (the `device` field of a
    /// trace bundle). Unknown names fall back to the Nexus 6.
    pub fn by_name(name: &str) -> Self {
        match name {
            "nexus5" => DeviceProfile::nexus5(),
            "galaxy_s5" => DeviceProfile::galaxy_s5(),
            _ => DeviceProfile::nexus6(),
        }
    }

    /// All built-in profiles.
    pub fn builtin() -> Vec<Self> {
        vec![
            DeviceProfile::nexus6(),
            DeviceProfile::nexus5(),
            DeviceProfile::galaxy_s5(),
        ]
    }
}

impl Default for DeviceProfile {
    fn default() -> Self {
        DeviceProfile::nexus6()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_profiles_have_positive_coefficients() {
        for p in DeviceProfile::builtin() {
            for c in Component::ALL {
                assert!(
                    p.coefficient(c) > 0.0,
                    "{} {c} must be positive",
                    p.name
                );
            }
            assert!(p.base_mw > 0.0);
        }
    }

    #[test]
    fn by_name_resolves_and_falls_back() {
        assert_eq!(DeviceProfile::by_name("nexus5").name, "nexus5");
        assert_eq!(DeviceProfile::by_name("galaxy_s5").name, "galaxy_s5");
        assert_eq!(DeviceProfile::by_name("unknown-phone").name, "nexus6");
    }

    #[test]
    fn negative_inputs_are_clamped() {
        let p = DeviceProfile::new("x", -5.0)
            .with_coefficient(Component::Cpu, -1.0);
        assert_eq!(p.base_mw, 0.0);
        assert_eq!(p.coefficient(Component::Cpu), 0.0);
    }

    #[test]
    fn profiles_differ_across_devices() {
        let a = DeviceProfile::nexus6();
        let b = DeviceProfile::galaxy_s5();
        assert_ne!(
            a.coefficient(Component::Display),
            b.coefficient(Component::Display)
        );
    }
}
