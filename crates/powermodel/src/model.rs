//! Utilization → power estimation.
//!
//! A linear component model in the PowerTutor tradition:
//! `P_app = base + Σ_c coeff_c · util_c`, with optional bounded
//! multiplicative noise reproducing the paper's "estimation error is
//! reported to be less than 2.5 %". Noise is deterministic given the
//! seed so every experiment is reproducible.

use crate::profile::DeviceProfile;
use energydx_trace::power::{PowerSample, PowerTrace};
use energydx_trace::util::{Component, UtilizationSample, UtilizationTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;

/// The power model: a device profile plus a noise source.
#[derive(Debug)]
pub struct PowerModel {
    profile: DeviceProfile,
    noise_fraction: f64,
    rng: RefCell<StdRng>,
}

impl PowerModel {
    /// A model with the paper's ≤2.5 % estimation error, seeded for
    /// reproducibility.
    pub fn new(profile: DeviceProfile, seed: u64) -> Self {
        PowerModel {
            profile,
            noise_fraction: 0.025,
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// A noise-free model (unit tests, baselines that need exact
    /// arithmetic).
    pub fn noiseless(profile: DeviceProfile) -> Self {
        PowerModel {
            profile,
            noise_fraction: 0.0,
            rng: RefCell::new(StdRng::seed_from_u64(0)),
        }
    }

    /// Overrides the noise bound (fraction of the estimate).
    pub fn with_noise_fraction(mut self, fraction: f64) -> Self {
        self.noise_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// The profile the model applies.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Estimates one power sample from one utilization sample. Noise
    /// is applied per component, uniformly in `±noise_fraction`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_powermodel::{DeviceProfile, PowerModel};
    /// # use energydx_trace::util::{Component, UtilizationSample};
    /// let model = PowerModel::noiseless(DeviceProfile::nexus6());
    /// let mut u = UtilizationSample::new(500);
    /// u.set(Component::Gps, 1.0);
    /// let p = model.estimate(&u);
    /// let expected = model.profile().base_mw
    ///     + model.profile().coefficient(Component::Gps);
    /// assert_eq!(p.total_mw, expected);
    /// ```
    pub fn estimate(&self, sample: &UtilizationSample) -> PowerSample {
        let mut out = PowerSample::new(sample.timestamp_ms);
        let mut rng = self.rng.borrow_mut();
        let mut noisy = |mw: f64| {
            if self.noise_fraction == 0.0 || mw == 0.0 {
                mw
            } else {
                let eps: f64 =
                    rng.gen_range(-self.noise_fraction..=self.noise_fraction);
                mw * (1.0 + eps)
            }
        };
        // Base power rides on the CPU lane (the process exists ⇒ the
        // kernel schedules it occasionally).
        let mut cpu_mw = noisy(self.profile.base_mw);
        cpu_mw += noisy(
            self.profile.coefficient(Component::Cpu)
                * sample.get(Component::Cpu),
        );
        out.set_component(Component::Cpu, cpu_mw);
        for c in [
            Component::Display,
            Component::Wifi,
            Component::Gps,
            Component::Cellular,
            Component::Audio,
        ] {
            out.set_component(
                c,
                noisy(self.profile.coefficient(c) * sample.get(c)),
            );
        }
        out
    }

    /// Estimates a whole power trace from a utilization trace.
    pub fn estimate_trace(&self, utilization: &UtilizationTrace) -> PowerTrace {
        utilization
            .samples()
            .iter()
            .map(|s| self.estimate(s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_with(c: Component, level: f64) -> UtilizationSample {
        let mut s = UtilizationSample::new(500);
        s.set(c, level);
        s
    }

    #[test]
    fn idle_app_draws_base_power_only() {
        let model = PowerModel::noiseless(DeviceProfile::nexus6());
        let p = model.estimate(&UtilizationSample::new(500));
        assert_eq!(p.total_mw, model.profile().base_mw);
    }

    #[test]
    fn power_is_monotone_in_utilization() {
        let model = PowerModel::noiseless(DeviceProfile::nexus6());
        for c in Component::ALL {
            let low = model.estimate(&sample_with(c, 0.3)).total_mw;
            let high = model.estimate(&sample_with(c, 0.9)).total_mw;
            assert!(high > low, "{c}: {high} <= {low}");
        }
    }

    #[test]
    fn breakdown_attributes_to_the_right_component() {
        let model = PowerModel::noiseless(DeviceProfile::nexus6());
        let p = model.estimate(&sample_with(Component::Gps, 1.0));
        assert_eq!(
            p.component(Component::Gps),
            model.profile().coefficient(Component::Gps)
        );
        assert_eq!(p.component(Component::Wifi), 0.0);
    }

    #[test]
    fn noise_is_bounded_by_fraction() {
        let model = PowerModel::new(DeviceProfile::nexus6(), 7);
        let exact = PowerModel::noiseless(DeviceProfile::nexus6());
        for i in 0..200 {
            let mut s = UtilizationSample::new(i * 500);
            s.set(Component::Cpu, 0.5);
            s.set(Component::Wifi, 0.5);
            let noisy = model.estimate(&s).total_mw;
            let truth = exact.estimate(&s).total_mw;
            assert!(
                (noisy - truth).abs() <= truth * 0.025 + 1e-9,
                "sample {i}: {noisy} vs {truth}"
            );
        }
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let a = PowerModel::new(DeviceProfile::nexus6(), 42);
        let b = PowerModel::new(DeviceProfile::nexus6(), 42);
        let s = sample_with(Component::Cpu, 0.7);
        assert_eq!(a.estimate(&s), b.estimate(&s));
    }

    #[test]
    fn different_seeds_differ() {
        let a = PowerModel::new(DeviceProfile::nexus6(), 1);
        let b = PowerModel::new(DeviceProfile::nexus6(), 2);
        let s = sample_with(Component::Cpu, 0.7);
        assert_ne!(a.estimate(&s), b.estimate(&s));
    }

    #[test]
    fn estimate_trace_preserves_length_and_timestamps() {
        let model = PowerModel::noiseless(DeviceProfile::nexus5());
        let mut trace = UtilizationTrace::new();
        for t in [500u64, 1000, 1500] {
            trace.push(UtilizationSample::new(t));
        }
        let p = model.estimate_trace(&trace);
        assert_eq!(p.len(), 3);
        assert_eq!(p.samples()[2].timestamp_ms, 1500);
    }

    #[test]
    fn noise_fraction_is_clamped() {
        let m = PowerModel::new(DeviceProfile::nexus6(), 0)
            .with_noise_fraction(5.0);
        let s = sample_with(Component::Cpu, 1.0);
        // Even clamped to 1.0, power never goes negative.
        for _ in 0..100 {
            assert!(m.estimate(&s).total_mw >= 0.0);
        }
    }
}
