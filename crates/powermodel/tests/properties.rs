//! Property tests for the power model (DESIGN.md §6): monotonicity,
//! noise bounds, sampler conservation, and scaling invertibility.

use energydx_droidsim::Timeline;
use energydx_powermodel::{
    scale_trace, DeviceProfile, PowerModel, UtilizationSampler,
};
use energydx_trace::util::{Component, UtilizationSample};
use proptest::prelude::*;

fn component() -> impl Strategy<Value = Component> {
    prop_oneof![
        Just(Component::Cpu),
        Just(Component::Display),
        Just(Component::Wifi),
        Just(Component::Gps),
        Just(Component::Cellular),
        Just(Component::Audio),
    ]
}

fn profile() -> impl Strategy<Value = DeviceProfile> {
    prop_oneof![
        Just(DeviceProfile::nexus6()),
        Just(DeviceProfile::nexus5()),
        Just(DeviceProfile::galaxy_s5()),
    ]
}

proptest! {
    /// Estimated power grows monotonically with any component's
    /// utilization.
    #[test]
    fn power_is_monotone_in_every_component(
        p in profile(),
        c in component(),
        base in prop::array::uniform6(0.0f64..1.0),
        lo in 0.0f64..1.0,
        delta in 0.01f64..1.0,
    ) {
        let model = PowerModel::noiseless(p);
        let mut s_lo = UtilizationSample::new(500);
        let mut s_hi = UtilizationSample::new(500);
        for (i, comp) in Component::ALL.into_iter().enumerate() {
            s_lo.set(comp, base[i]);
            s_hi.set(comp, base[i]);
        }
        s_lo.set(c, lo);
        s_hi.set(c, (lo + delta).min(1.0));
        prop_assert!(model.estimate(&s_hi).total_mw >= model.estimate(&s_lo).total_mw - 1e-9);
    }

    /// Noisy estimates stay within the configured fraction of the
    /// exact value, component-wise and in total.
    #[test]
    fn noise_is_bounded(
        p in profile(),
        seed in any::<u64>(),
        util in prop::array::uniform6(0.0f64..1.0),
    ) {
        let noisy = PowerModel::new(p.clone(), seed);
        let exact = PowerModel::noiseless(p);
        let mut s = UtilizationSample::new(500);
        for (i, comp) in Component::ALL.into_iter().enumerate() {
            s.set(comp, util[i]);
        }
        let a = noisy.estimate(&s);
        let b = exact.estimate(&s);
        prop_assert!((a.total_mw - b.total_mw).abs() <= b.total_mw * 0.025 + 1e-9);
        for comp in Component::ALL {
            prop_assert!(a.component(comp) >= 0.0);
        }
    }

    /// Scaling a measured trace from A to B and back to A is the
    /// identity, for any profile pair.
    #[test]
    fn scaling_round_trips(
        from in profile(),
        to in profile(),
        util in prop::collection::vec(prop::array::uniform6(0.0f64..1.0), 1..20),
    ) {
        let model = PowerModel::noiseless(from.clone());
        let trace = model.estimate_trace(
            &util
                .iter()
                .enumerate()
                .map(|(i, u)| {
                    let mut s = UtilizationSample::new((i as u64 + 1) * 500);
                    for (j, comp) in Component::ALL.into_iter().enumerate() {
                        s.set(comp, u[j]);
                    }
                    s
                })
                .collect(),
        );
        let round = scale_trace(&scale_trace(&trace, &from, &to), &to, &from);
        for (a, b) in trace.samples().iter().zip(round.samples()) {
            prop_assert!((a.total_mw - b.total_mw).abs() < 1e-6);
        }
    }

    /// The sampler's readings are bounded by the timeline's levels:
    /// every sampled utilization is within [0, max level added].
    #[test]
    fn sampler_readings_are_bounded(
        spans in prop::collection::vec((0u64..60_000, 1u64..20_000, 0.0f64..1.0), 0..25),
        duration_s in 1u64..90,
    ) {
        let mut t = Timeline::new();
        let mut level_sum = 0.0f64;
        for &(start, len, level) in &spans {
            t.add(Component::Cpu, start * 1000, (start + len) * 1000, level);
            level_sum += level;
        }
        // Overlapping spans add (clamped to 1.0 per instant), so the
        // tightest general bound is min(1, sum of levels).
        let bound = level_sum.min(1.0);
        let trace = UtilizationSampler::default().sample(&t, duration_s * 1000);
        for s in trace.samples() {
            let u = s.get(Component::Cpu);
            prop_assert!(u >= 0.0 && u <= bound + 1e-9, "u {u} > bound {bound}");
        }
    }

    /// A finer sampling period never loses energy: the utilization
    /// integral (mean × duration) is period-independent up to boundary
    /// effects of one period.
    #[test]
    fn sampling_conserves_energy_across_periods(
        spans in prop::collection::vec((0u64..30_000, 500u64..10_000, 0.1f64..1.0), 1..10),
    ) {
        let mut t = Timeline::new();
        let mut end = 0u64;
        for &(start, len, level) in &spans {
            t.add(Component::Wifi, start * 1000, (start + len) * 1000, level);
            end = end.max(start + len);
        }
        // Round the horizon to a common multiple of both periods so
        // neither sampler truncates a partial window.
        let horizon = end.div_ceil(1_000) * 1_000 + 1_000;
        let fine = UtilizationSampler::with_period(100).sample(&t, horizon);
        let coarse = UtilizationSampler::with_period(1_000).sample(&t, horizon);
        let fine_sum: f64 = fine.samples().iter().map(|s| s.get(Component::Wifi) * 100.0).sum();
        let coarse_sum: f64 =
            coarse.samples().iter().map(|s| s.get(Component::Wifi) * 1_000.0).sum();
        prop_assert!(
            (fine_sum - coarse_sum).abs() < 1.0,
            "fine {fine_sum} vs coarse {coarse_sum}"
        );
    }
}
