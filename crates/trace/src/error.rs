//! Error type for trace parsing, pairing, and wire encoding.

use std::error::Error;
use std::fmt;

/// Error type for the `energydx-trace` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A text log line did not match the Fig.-5 format.
    ParseLine {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// An exit record appeared without a matching enter record.
    UnmatchedExit {
        /// The event identifier.
        event: String,
        /// The exit timestamp.
        timestamp_ms: u64,
    },
    /// The wire payload was truncated or corrupt.
    Wire {
        /// What was wrong.
        message: String,
    },
    /// Records were not in non-decreasing timestamp order.
    OutOfOrder {
        /// Index of the first out-of-order record.
        index: usize,
    },
    /// A bundle for this `(user, session)` was already accepted — a
    /// retrying client re-uploaded the same session.
    DuplicateUpload {
        /// The (anonymized) user id.
        user: String,
        /// The session id.
        session: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::ParseLine { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
            TraceError::UnmatchedExit {
                event,
                timestamp_ms,
            } => {
                write!(f, "exit without enter for {event} at {timestamp_ms} ms")
            }
            TraceError::Wire { message } => {
                write!(f, "wire format error: {message}")
            }
            TraceError::OutOfOrder { index } => {
                write!(f, "record {index} is out of timestamp order")
            }
            TraceError::DuplicateUpload { user, session } => {
                write!(f, "session {session} for user {user} already uploaded")
            }
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = TraceError::UnmatchedExit {
            event: "LA;->onPause".into(),
            timestamp_ms: 42,
        };
        assert!(e.to_string().contains("LA;->onPause"));
        assert!(e.to_string().contains("42"));
    }
}
