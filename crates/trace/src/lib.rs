//! Trace types and infrastructure for EnergyDx.
//!
//! EnergyDx collects two runtime traces per user session (paper §II-C):
//! an **event trace** — timestamped entry/exit records of instrumented
//! callbacks (Fig. 5) — and a **utilization trace** — periodic samples
//! of per-app hardware utilization. The power model turns the latter
//! into a **power trace**. This crate provides:
//!
//! - [`event`] — event records, entry/exit pairing into event
//!   *instances*, and the Fig.-5 text log format.
//! - [`util`] — utilization samples over the simulated hardware
//!   components.
//! - [`power`] — power samples and per-component power breakdowns
//!   (Figs. 11/14).
//! - [`join`] — the timestamp join assigning app power to event
//!   instances (the substrate of analysis Step 1).
//! - [`intern`] — dense `u32` event symbols and structure-of-arrays
//!   traces, the zero-copy representation of the analysis hot path.
//! - [`anonymize`] — removal of user identifiers (phone numbers, IP
//!   addresses, email addresses) before upload, per §II-B.
//! - [`wire`] — a compact binary wire format for uploading trace
//!   bundles, with CRC32-framed v2 payloads and a salvaging decoder
//!   for damaged ones.
//! - [`store`] — the backend trace store that aggregates bundles from
//!   many users (thread-safe; uploads happen "when the smartphone is
//!   charging with WiFi"), with a reject/repair/salvage ingest
//!   taxonomy and a quarantine for what cannot be kept.
//! - [`repair`] — bounded, conservative fixes for common upload
//!   defects (logger races, clock steps, stray exits).
//! - [`upload`] — the retrying phone-side upload path: exponential
//!   backoff with seeded jitter over a virtual clock.
//! - [`fault`] — seeded fault injection over wire payloads, for chaos
//!   testing the whole ingest path.
//!
//! # Examples
//!
//! ```
//! use energydx_trace::event::{Direction, EventRecord, EventTrace};
//!
//! let mut t = EventTrace::new();
//! t.push(EventRecord::new(28223867, Direction::Enter, "Lcom/fsck/k9/service/MailService;->onDestroy"));
//! t.push(EventRecord::new(28223899, Direction::Exit, "Lcom/fsck/k9/service/MailService;->onDestroy"));
//! let instances = t.pair_instances();
//! assert_eq!(instances.len(), 1);
//! assert_eq!(instances[0].duration_ms(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anonymize;
pub mod error;
pub mod event;
pub mod fault;
pub mod intern;
pub mod join;
pub mod power;
pub mod repair;
mod rng;
pub mod store;
pub mod upload;
pub mod util;
pub mod wire;

pub use error::TraceError;
pub use event::{Direction, EventInstance, EventRecord, EventTrace};
pub use fault::{FaultInjector, FaultKind, InjectionReport};
pub use intern::{EventId, EventInterner, InternedTrace};
pub use join::join_power;
pub use power::{PowerBreakdown, PowerSample, PowerTrace};
pub use repair::{RepairAction, RepairPolicy, RepairReject};
pub use store::{
    IngestOutcome, IngestReport, PhoneState, QuarantineEntry, RejectReason,
    TraceBundle, TraceStore, Uploader,
};
pub use upload::{
    FlakyBackend, RetryPolicy, StoreBackend, UploadBackend, UploadStats,
};
pub use util::{UtilizationSample, UtilizationTrace};
pub use wire::{SalvageReport, Salvaged};
