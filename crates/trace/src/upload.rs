//! Retrying wire uploads from the phone to the backend.
//!
//! Phones upload over residential WiFi: requests time out, servers
//! shed load, captive portals eat connections. The uploader therefore
//! pushes each encoded bundle through an [`UploadBackend`] with
//! exponential backoff and seeded jitter, over a *virtual* clock — the
//! simulation accumulates the waits it would have slept instead of
//! sleeping, so a thousand-phone fleet run finishes in milliseconds
//! and is replayable from its seed.
//!
//! [`FlakyBackend`] wraps any backend with seeded transient failures,
//! which is how the chaos tests exercise the retry loop.

use crate::rng::SplitMix64;
use crate::store::{IngestOutcome, PhoneState, TraceStore, Uploader};
use crate::wire;
use std::fmt;

/// A transient upload failure: the payload may succeed if retried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransientUploadError {
    /// What went wrong (timeout, 503, connection reset, ...).
    pub message: String,
    /// Server-directed pacing: how long the backend asked the client
    /// to wait before retrying (a `RetryAfter` response from a daemon
    /// shedding load). The retry loop waits at least this long,
    /// whichever of it and the exponential backoff is larger.
    pub retry_after_ms: Option<u64>,
}

impl TransientUploadError {
    /// A plain transient failure with no server pacing hint.
    pub fn new(message: impl Into<String>) -> Self {
        TransientUploadError {
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// A failure carrying the server's `RetryAfter` pacing hint.
    pub fn with_retry_after(message: impl Into<String>, ms: u64) -> Self {
        TransientUploadError {
            message: message.into(),
            retry_after_ms: Some(ms),
        }
    }
}

impl fmt::Display for TransientUploadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transient upload failure: {}", self.message)?;
        if let Some(ms) = self.retry_after_ms {
            write!(f, " (server asked to retry after {ms} ms)")?;
        }
        Ok(())
    }
}

impl std::error::Error for TransientUploadError {}

/// Where encoded payloads go. `Err` means a *transient* failure worth
/// retrying; permanent rejection is an `Ok` carrying
/// [`IngestOutcome::Rejected`].
pub trait UploadBackend {
    /// Receives one wire payload.
    ///
    /// # Errors
    ///
    /// Returns [`TransientUploadError`] when the attempt failed in a
    /// retryable way.
    fn receive(
        &mut self,
        payload: &[u8],
    ) -> Result<IngestOutcome, TransientUploadError>;
}

/// The straightforward backend: hand payloads to a [`TraceStore`].
#[derive(Debug)]
pub struct StoreBackend<'a> {
    store: &'a TraceStore,
}

impl<'a> StoreBackend<'a> {
    /// Wraps a store.
    pub fn new(store: &'a TraceStore) -> Self {
        StoreBackend { store }
    }
}

impl UploadBackend for StoreBackend<'_> {
    fn receive(
        &mut self,
        payload: &[u8],
    ) -> Result<IngestOutcome, TransientUploadError> {
        Ok(self.store.ingest_wire(payload))
    }
}

/// A backend that transiently fails a seeded fraction of attempts
/// before delegating to the inner backend.
#[derive(Debug)]
pub struct FlakyBackend<B> {
    inner: B,
    failure_rate: f64,
    rng: SplitMix64,
    /// Attempts failed so far (for assertions).
    pub failures: usize,
}

impl<B> FlakyBackend<B> {
    /// Wraps `inner`, failing each attempt with probability
    /// `failure_rate`.
    ///
    /// # Panics
    ///
    /// Panics if `failure_rate` is not in `[0, 1)` — a rate of 1 would
    /// make every retry loop give up.
    pub fn new(inner: B, failure_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&failure_rate),
            "failure_rate must be within [0, 1)"
        );
        FlakyBackend {
            inner,
            failure_rate,
            rng: SplitMix64::new(seed),
            failures: 0,
        }
    }
}

impl<B: UploadBackend> UploadBackend for FlakyBackend<B> {
    fn receive(
        &mut self,
        payload: &[u8],
    ) -> Result<IngestOutcome, TransientUploadError> {
        if self.rng.unit_f64() < self.failure_rate {
            self.failures += 1;
            return Err(TransientUploadError::new(
                "simulated connection reset",
            ));
        }
        self.inner.receive(payload)
    }
}

/// Backoff schedule for retried uploads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Most attempts per bundle (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds.
    pub base_backoff_ms: u64,
    /// Ceiling on any single backoff, in milliseconds.
    pub max_backoff_ms: u64,
    /// Jitter as a fraction of the backoff: each wait is scaled by a
    /// uniform factor in `[1 - jitter, 1 + jitter]`, decorrelating a
    /// fleet of phones that all lost the same server at once.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff_ms: 200,
            max_backoff_ms: 30_000,
            jitter: 0.2,
        }
    }
}

impl RetryPolicy {
    /// The jittered wait before retry number `retry` (0-based).
    pub(crate) fn backoff_ms(&self, retry: u32, rng: &mut SplitMix64) -> u64 {
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64.checked_shl(retry).unwrap_or(u64::MAX))
            .min(self.max_backoff_ms);
        let factor = 1.0 + self.jitter * (2.0 * rng.unit_f64() - 1.0);
        (exp as f64 * factor).round().max(0.0) as u64
    }
}

/// What one [`Uploader::upload_with_retry`] drain did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UploadStats {
    /// Backend outcome per delivered bundle, in queue order.
    pub outcomes: Vec<IngestOutcome>,
    /// Bundles delivered to the backend (any outcome).
    pub delivered: usize,
    /// Bundles still queued after exhausting every attempt.
    pub gave_up: usize,
    /// Total attempts across all bundles.
    pub attempts: usize,
    /// Attempts that failed transiently and were retried.
    pub retries: usize,
    /// Transient failures that carried a server `RetryAfter` pacing
    /// hint (backpressure made visible to the phone).
    pub retry_after_hints: usize,
    /// Total backoff the phone would have slept, in milliseconds
    /// (virtual clock — nothing actually sleeps).
    pub backoff_ms: u64,
}

/// Delivers one encoded payload with retries; returns whether it made
/// it. The wait before each retry is the larger of the policy's
/// jittered exponential backoff and the server's `RetryAfter` hint, so
/// an overloaded daemon can slow a whole fleet down without any phone
/// abandoning its bundle.
fn deliver_with_retry(
    payload: &[u8],
    backend: &mut dyn UploadBackend,
    policy: &RetryPolicy,
    rng: &mut SplitMix64,
    stats: &mut UploadStats,
) -> bool {
    // Retry-loop visibility goes to the process-wide registry: the
    // uploader runs phone-side (or in a soak driver) with no daemon
    // registry to report into.
    let obs = energydx_obsv::global();
    for attempt in 0..policy.max_attempts {
        stats.attempts += 1;
        obs.counter("uploader_attempts_total", &[]).inc();
        match backend.receive(payload) {
            Ok(outcome) => {
                stats.outcomes.push(outcome);
                stats.delivered += 1;
                obs.counter("uploader_delivered_total", &[]).inc();
                return true;
            }
            Err(e) => {
                stats.retries += 1;
                obs.counter("uploader_retries_total", &[]).inc();
                if let Some(ms) = e.retry_after_ms {
                    stats.retry_after_hints += 1;
                    obs.counter("uploader_retry_after_hints_total", &[]).inc();
                    obs.event(
                        energydx_obsv::EventKind::RetryAfter,
                        format!("side=uploader hint_ms={ms}"),
                    );
                }
                if attempt + 1 < policy.max_attempts {
                    stats.backoff_ms += policy
                        .backoff_ms(attempt, rng)
                        .max(e.retry_after_ms.unwrap_or(0));
                }
            }
        }
    }
    obs.counter("uploader_gave_up_total", &[]).inc();
    false
}

/// Drains pre-encoded wire payloads through `backend` with the same
/// retry loop as [`Uploader::upload_with_retry`], **in order**: each
/// payload is retried in place until delivered or its attempts are
/// exhausted, so the backend observes payloads in slice order — the
/// property the fleet daemon's accept-order/batch-order equivalence
/// rests on. Payloads whose attempts are exhausted count as `gave_up`
/// (the caller still owns the slice and can re-drive them).
pub fn upload_payloads_with_retry(
    payloads: &[Vec<u8>],
    backend: &mut dyn UploadBackend,
    policy: &RetryPolicy,
    seed: u64,
) -> UploadStats {
    let mut stats = UploadStats::default();
    let mut rng = SplitMix64::new(seed);
    for payload in payloads {
        if !deliver_with_retry(payload, backend, policy, &mut rng, &mut stats) {
            stats.gave_up += 1;
        }
    }
    stats
}

impl Uploader {
    /// Drains the queue through `backend`, retrying transient failures
    /// per `policy`. Gated on [`PhoneState::may_upload`] like
    /// [`Uploader::try_upload`]. Bundles whose attempts are exhausted
    /// stay queued for the next charge-and-WiFi window.
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_trace::store::{PhoneState, TraceBundle, TraceStore, Uploader};
    /// # use energydx_trace::upload::{FlakyBackend, RetryPolicy, StoreBackend};
    /// let store = TraceStore::new();
    /// let mut up = Uploader::new();
    /// up.enqueue(TraceBundle::new("u", 0, "nexus6"));
    /// let mut backend = FlakyBackend::new(StoreBackend::new(&store), 0.3, 42);
    /// let stats = up.upload_with_retry(
    ///     PhoneState { charging: true, on_wifi: true },
    ///     &mut backend,
    ///     &RetryPolicy::default(),
    ///     7,
    /// );
    /// assert_eq!(stats.delivered + stats.gave_up, 1);
    /// ```
    pub fn upload_with_retry(
        &mut self,
        state: PhoneState,
        backend: &mut dyn UploadBackend,
        policy: &RetryPolicy,
        seed: u64,
    ) -> UploadStats {
        let mut stats = UploadStats::default();
        if !state.may_upload() {
            return stats;
        }
        let mut rng = SplitMix64::new(seed);
        let mut requeue = Vec::new();
        for bundle in self.queue.drain(..) {
            let payload = match wire::try_encode_v2(&bundle) {
                Ok(bytes) => bytes,
                Err(_) => {
                    // A bundle too large for the wire format cannot
                    // succeed on retry either; drop it from the queue.
                    stats.gave_up += 1;
                    continue;
                }
            };
            if !deliver_with_retry(
                &payload, backend, policy, &mut rng, &mut stats,
            ) {
                stats.gave_up += 1;
                requeue.push(bundle);
            }
        }
        self.queue = requeue;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Direction, EventRecord};
    use crate::store::TraceBundle;

    fn bundle(user: &str, session: u64) -> TraceBundle {
        let mut b = TraceBundle::new(user, session, "nexus6");
        b.events
            .push(EventRecord::new(10, Direction::Enter, "LA;->onResume"));
        b.events
            .push(EventRecord::new(20, Direction::Exit, "LA;->onResume"));
        b
    }

    fn charged() -> PhoneState {
        PhoneState {
            charging: true,
            on_wifi: true,
        }
    }

    #[test]
    fn retry_loop_reports_into_the_global_registry() {
        let obs = energydx_obsv::global();
        let read = |family: &str| obs.counter_value(family, &[]).unwrap_or(0);
        let (attempts0, delivered0, hints0) = (
            read("uploader_attempts_total"),
            read("uploader_delivered_total"),
            read("uploader_retry_after_hints_total"),
        );
        let events0 = obs
            .counter_value("energydx_events_total", &[("kind", "retry_after")])
            .unwrap_or(0);

        // A backend that always hints RetryAfter before accepting.
        struct Hinting {
            store: TraceStore,
            failed_once: bool,
        }
        impl UploadBackend for Hinting {
            fn receive(
                &mut self,
                payload: &[u8],
            ) -> Result<IngestOutcome, TransientUploadError> {
                if !self.failed_once {
                    self.failed_once = true;
                    return Err(TransientUploadError::with_retry_after(
                        "busy", 25,
                    ));
                }
                self.failed_once = false;
                Ok(self.store.ingest_wire(payload))
            }
        }
        let mut backend = Hinting {
            store: TraceStore::new(),
            failed_once: false,
        };
        let payloads = vec![wire::encode_v2(&bundle("u1", 0)).to_vec()];
        let stats = upload_payloads_with_retry(
            &payloads,
            &mut backend,
            &RetryPolicy::default(),
            3,
        );
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.retry_after_hints, 1);

        // Counters are process-global and tests run in parallel, so
        // assert deltas as lower bounds.
        assert!(read("uploader_attempts_total") >= attempts0 + 2);
        assert!(read("uploader_delivered_total") > delivered0);
        assert!(read("uploader_retry_after_hints_total") > hints0);
        let events1 = obs
            .counter_value("energydx_events_total", &[("kind", "retry_after")])
            .unwrap_or(0);
        assert!(events1 > events0, "RetryAfter event not recorded");
    }

    #[test]
    fn reliable_backend_delivers_everything_first_try() {
        let store = TraceStore::new();
        let mut up = Uploader::new();
        for s in 0..10 {
            up.enqueue(bundle("u1", s));
        }
        let mut backend = StoreBackend::new(&store);
        let stats = up.upload_with_retry(
            charged(),
            &mut backend,
            &RetryPolicy::default(),
            1,
        );
        assert_eq!(stats.delivered, 10);
        assert_eq!(stats.attempts, 10);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.backoff_ms, 0);
        assert_eq!(store.len(), 10);
        assert!(stats.outcomes.iter().all(|o| o == &IngestOutcome::Clean));
    }

    #[test]
    fn flaky_backend_is_survived_by_retries() {
        let store = TraceStore::new();
        let mut up = Uploader::new();
        for s in 0..50 {
            up.enqueue(bundle("u1", s));
        }
        let mut backend = FlakyBackend::new(StoreBackend::new(&store), 0.4, 99);
        let stats = up.upload_with_retry(
            charged(),
            &mut backend,
            &RetryPolicy::default(),
            7,
        );
        // With 5 attempts against 40% flakiness, losing a bundle takes
        // a 1-in-98 streak; this seed loses none.
        assert_eq!(stats.delivered, 50);
        assert_eq!(up.pending(), 0);
        assert!(stats.retries > 0, "the flaky backend must have failed some");
        assert!(stats.backoff_ms > 0);
        assert_eq!(store.len(), 50);
        assert_eq!(backend.failures, stats.retries);
    }

    #[test]
    fn exhausted_attempts_requeue_the_bundle() {
        struct AlwaysDown;
        impl UploadBackend for AlwaysDown {
            fn receive(
                &mut self,
                _: &[u8],
            ) -> Result<IngestOutcome, TransientUploadError> {
                Err(TransientUploadError::new("503"))
            }
        }
        let mut up = Uploader::new();
        up.enqueue(bundle("u1", 0));
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let stats =
            up.upload_with_retry(charged(), &mut AlwaysDown, &policy, 5);
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.gave_up, 1);
        assert_eq!(stats.attempts, 3);
        // The bundle survives for the next upload window.
        assert_eq!(up.pending(), 1);
    }

    #[test]
    fn retry_gates_on_phone_state() {
        let store = TraceStore::new();
        let mut up = Uploader::new();
        up.enqueue(bundle("u1", 0));
        let mut backend = StoreBackend::new(&store);
        let stats = up.upload_with_retry(
            PhoneState {
                charging: false,
                on_wifi: true,
            },
            &mut backend,
            &RetryPolicy::default(),
            1,
        );
        assert_eq!(stats, UploadStats::default());
        assert_eq!(up.pending(), 1);
        assert!(store.is_empty());
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff_ms: 100,
            max_backoff_ms: 1_000,
            jitter: 0.0,
        };
        let mut rng = SplitMix64::new(0);
        let waits: Vec<u64> =
            (0..6).map(|r| policy.backoff_ms(r, &mut rng)).collect();
        assert_eq!(waits, vec![100, 200, 400, 800, 1_000, 1_000]);
    }

    #[test]
    fn jitter_spreads_waits_within_bounds() {
        let policy = RetryPolicy {
            jitter: 0.5,
            base_backoff_ms: 1_000,
            ..RetryPolicy::default()
        };
        let mut rng = SplitMix64::new(3);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..32 {
            let w = policy.backoff_ms(0, &mut rng);
            assert!(
                (500..=1_500).contains(&w),
                "wait {w} outside jitter bounds"
            );
            distinct.insert(w);
        }
        assert!(distinct.len() > 1, "jitter must actually vary the waits");
    }

    #[test]
    fn retry_after_hint_raises_the_wait_floor() {
        // A backend that sheds load with a RetryAfter far above the
        // exponential backoff: the virtual waits must honor the
        // server's pacing, not the (smaller) client-side schedule.
        struct Shedding {
            remaining_failures: u32,
        }
        impl UploadBackend for Shedding {
            fn receive(
                &mut self,
                _: &[u8],
            ) -> Result<IngestOutcome, TransientUploadError> {
                if self.remaining_failures > 0 {
                    self.remaining_failures -= 1;
                    return Err(TransientUploadError::with_retry_after(
                        "queue full",
                        5_000,
                    ));
                }
                Ok(IngestOutcome::Clean)
            }
        }
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 10,
            max_backoff_ms: 100,
            jitter: 0.0,
        };
        let payloads = vec![wire::encode_v2(&bundle("u1", 0)).to_vec()];
        let mut backend = Shedding {
            remaining_failures: 2,
        };
        let stats =
            upload_payloads_with_retry(&payloads, &mut backend, &policy, 1);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.retry_after_hints, 2);
        // Two waits, both floored at the server's 5 s hint.
        assert_eq!(stats.backoff_ms, 10_000);
    }

    #[test]
    fn payload_drain_preserves_delivery_order_under_flakiness() {
        // Transient failures must not reorder deliveries: each payload
        // is retried in place before the next one is attempted, so the
        // store accepts payloads in slice order even on a flaky link.
        struct Recording<'a> {
            inner: FlakyBackend<StoreBackend<'a>>,
            accepted: Vec<Vec<u8>>,
        }
        impl UploadBackend for Recording<'_> {
            fn receive(
                &mut self,
                payload: &[u8],
            ) -> Result<IngestOutcome, TransientUploadError> {
                let outcome = self.inner.receive(payload)?;
                if outcome.accepted() {
                    self.accepted.push(payload.to_vec());
                }
                Ok(outcome)
            }
        }
        let store = TraceStore::new();
        let payloads: Vec<Vec<u8>> = (0..30)
            .map(|s| wire::encode_v2(&bundle("u1", s)).to_vec())
            .collect();
        let mut backend = Recording {
            inner: FlakyBackend::new(StoreBackend::new(&store), 0.35, 11),
            accepted: Vec::new(),
        };
        let policy = RetryPolicy {
            max_attempts: 12,
            ..RetryPolicy::default()
        };
        let stats =
            upload_payloads_with_retry(&payloads, &mut backend, &policy, 3);
        assert_eq!(stats.delivered, 30, "12 attempts at 35% never exhaust");
        assert_eq!(stats.gave_up, 0);
        assert!(stats.retries > 0, "the flaky link must have failed some");
        assert_eq!(backend.accepted, payloads, "delivery order changed");
        assert_eq!(store.len(), 30);
    }

    #[test]
    fn duplicate_retries_are_deduped_by_the_store() {
        // A phone that gave up mid-session and retried later: the
        // second delivery of the same session is rejected as a
        // duplicate, not double-counted.
        let store = TraceStore::new();
        let mut up = Uploader::new();
        up.enqueue(bundle("u1", 0));
        up.enqueue(bundle("u1", 0));
        let mut backend = StoreBackend::new(&store);
        let stats = up.upload_with_retry(
            charged(),
            &mut backend,
            &RetryPolicy::default(),
            1,
        );
        assert_eq!(stats.delivered, 2);
        assert_eq!(store.len(), 1);
        assert_eq!(
            stats.outcomes[1],
            IngestOutcome::Rejected(crate::store::RejectReason::Duplicate)
        );
    }
}
