//! The timestamp join between event instances and power samples.
//!
//! This is the mechanical substrate of analysis Step 1 ("the power
//! consumption of each of the three events is calculated by mapping
//! each pair of power and event traces according to the timestamps").
//!
//! An instance's power is the mean of the samples inside its
//! *attribution window* `[start, start + max(duration, horizon)]`. The
//! forward-looking horizon (default one sampling period, 500 ms)
//! matters: most callbacks finish in single-digit milliseconds, far
//! below the sampling period, and the power their work causes — the
//! network request an `onClick` fires, the service an `onCreate`
//! starts — lands in the sample *after* them. Attributing the
//! following window keeps instances of the same event comparable
//! across contexts, which Step 3's percentile normalization depends
//! on.

use crate::event::EventInstance;
use crate::power::PowerTrace;
use serde::{Deserialize, Serialize};

/// Default forward attribution horizon, matching the 500 ms sampling
/// period.
pub const DEFAULT_HORIZON_MS: u64 = 500;

/// How an event instance's power is attributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Attribution {
    /// The last full sampling window *before* the event: the state the
    /// event is ending. Used for teardown callbacks (`onPause`,
    /// `onStop`, ...) — whether an `onPause` precedes an activity
    /// switch or a trip to the background, the power just before it is
    /// the same foreground state, so instances stay comparable.
    Before,
    /// The full sampling windows *after* the event: the work the event
    /// causes. Used for everything else (creation/start/resume
    /// callbacks, UI handlers, idle heartbeats).
    After,
}

/// The default attribution policy: teardown lifecycle callbacks read
/// backward, everything else reads forward.
///
/// # Examples
///
/// ```
/// # use energydx_trace::join::{default_attribution, Attribution};
/// assert_eq!(default_attribution("LA;->onPause"), Attribution::Before);
/// assert_eq!(default_attribution("LA;->onResume"), Attribution::After);
/// assert_eq!(default_attribution("Idle(No_Display)"), Attribution::After);
/// ```
pub fn default_attribution(event: &str) -> Attribution {
    const TEARDOWN: [&str; 4] = ["onPause", "onStop", "onDestroy", "onUnbind"];
    if TEARDOWN.iter().any(|t| event.ends_with(t)) {
        Attribution::Before
    } else {
        Attribution::After
    }
}

/// An event instance annotated with its estimated power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoweredInstance {
    /// The underlying event instance.
    pub instance: EventInstance,
    /// Estimated app power during and right after the instance, in
    /// milliwatts.
    pub power_mw: f64,
}

/// Joins event instances with a power trace using the default horizon.
///
/// Instances whose attribution window contains no sample inherit the
/// sample nearest their midpoint; if the power trace is empty they get
/// 0 mW (and the analysis will treat the trace as flat).
///
/// # Examples
///
/// ```
/// use energydx_trace::event::EventInstance;
/// use energydx_trace::power::{PowerSample, PowerTrace};
/// use energydx_trace::join_power;
/// use energydx_trace::util::Component;
///
/// let mut trace = PowerTrace::new();
/// for (ts, mw) in [(0u64, 100.0), (500, 300.0), (1000, 300.0)] {
///     let mut s = PowerSample::new(ts);
///     s.set_component(Component::Cpu, mw);
///     trace.push(s);
/// }
/// let inst = vec![EventInstance::new("LA;->onResume", 0, 40)];
/// let joined = join_power(inst, &trace);
/// // The sample at t = 1000 covers [500, 1000) — the first full
/// // window after the callback, free of pre-event history.
/// assert_eq!(joined[0].power_mw, 300.0);
/// ```
pub fn join_power(
    instances: Vec<EventInstance>,
    power: &PowerTrace,
) -> Vec<PoweredInstance> {
    join_power_with_horizon(instances, power, DEFAULT_HORIZON_MS)
}

/// Joins with an explicit forward horizon in milliseconds.
///
/// Takes the instances by value: each one is *moved* into its
/// [`PoweredInstance`], so the join allocates nothing per instance (no
/// event-name clone).
pub fn join_power_with_horizon(
    instances: Vec<EventInstance>,
    power: &PowerTrace,
    horizon_ms: u64,
) -> Vec<PoweredInstance> {
    instances
        .into_iter()
        .map(|instance| {
            let power_mw = instance_power(&instance, power, horizon_ms);
            PoweredInstance { instance, power_mw }
        })
        .collect()
}

/// Estimates one instance's power against a power trace.
fn instance_power(
    instance: &EventInstance,
    power: &PowerTrace,
    horizon_ms: u64,
) -> f64 {
    match default_attribution(&instance.event) {
        // The last sample at or before the event entry covers
        // a full window of pure pre-event state.
        Attribution::Before => power
            .samples()
            .get(
                power
                    .samples()
                    .partition_point(|s| s.timestamp_ms <= instance.start_ms)
                    .wrapping_sub(1),
            )
            .map(|s| s.total_mw)
            .or_else(|| power.nearest(instance.start_ms).map(|s| s.total_mw)),
        // Samples are trailing-window aggregates: the sample
        // at timestamp `t` covers `[t - period, t)`. The first
        // sample after the event entry therefore still
        // contains up to one period of *pre-event* history;
        // skipping it and reading the following full windows —
        // through the event's end for long instances, two
        // windows for short ones (averaging two samples halves
        // the grid-alignment variance) — attributes exactly
        // the power the event's own work and after-effects
        // cause.
        Attribution::After => {
            let lo = instance.start_ms + horizon_ms;
            let hi = instance.end_ms.max(instance.start_ms + 3 * horizon_ms);
            power.mean_between(lo + 1, hi).or_else(|| {
                power.nearest(instance.midpoint_ms()).map(|s| s.total_mw)
            })
        }
    }
    .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerSample;
    use crate::util::Component;

    fn trace(points: &[(u64, f64)]) -> PowerTrace {
        points
            .iter()
            .map(|&(ts, mw)| {
                let mut s = PowerSample::new(ts);
                s.set_component(Component::Cpu, mw);
                s
            })
            .collect()
    }

    #[test]
    fn long_instance_reads_its_interior() {
        let p =
            trace(&[(0, 100.0), (500, 200.0), (1000, 600.0), (1500, 600.0)]);
        // A 1.5 s instance starting at 0: the first (boundary) sample
        // is skipped; interior samples at 1000 and 1500 count.
        let joined = join_power(vec![EventInstance::new("E", 0, 1500)], &p);
        assert_eq!(joined[0].power_mw, 600.0);
    }

    #[test]
    fn short_instance_reads_the_following_window() {
        let p =
            trace(&[(0, 100.0), (500, 200.0), (1000, 600.0), (1500, 600.0)]);
        // A 60 ms callback at t = 120: the full windows after it are
        // the samples at t = 1000 and t = 1500.
        let joined = join_power(vec![EventInstance::new("E", 120, 180)], &p);
        assert_eq!(joined[0].power_mw, 600.0);
        // A callback at t = 600 attributes the t = 1500 sample (the
        // t = 2000 window does not exist in this trace).
        let joined = join_power(vec![EventInstance::new("E", 600, 610)], &p);
        assert_eq!(joined[0].power_mw, 600.0);
    }

    #[test]
    fn boundary_event_reads_forward_not_backward() {
        // Background (10 mW) then the user resumes the app at t = 1000
        // (400 mW foreground). onStart at t = 1000 must read 400, not
        // the quiet sample behind it.
        let p =
            trace(&[(500, 10.0), (1000, 10.0), (1500, 400.0), (2000, 400.0)]);
        let joined = join_power(
            vec![EventInstance::new("LA;->onStart", 1000, 1002)],
            &p,
        );
        assert_eq!(joined[0].power_mw, 400.0);
    }

    #[test]
    fn instance_past_the_last_sample_falls_back_to_nearest() {
        let p = trace(&[(0, 100.0), (500, 200.0)]);
        let joined = join_power(vec![EventInstance::new("E", 900, 910)], &p);
        assert_eq!(joined[0].power_mw, 200.0);
    }

    #[test]
    fn empty_power_trace_yields_zero() {
        let joined = join_power(
            vec![EventInstance::new("E", 0, 10)],
            &PowerTrace::new(),
        );
        assert_eq!(joined[0].power_mw, 0.0);
    }

    #[test]
    fn join_preserves_order_and_length() {
        let p = trace(&[(0, 50.0)]);
        let inst =
            vec![EventInstance::new("B", 5, 6), EventInstance::new("A", 0, 1)];
        let joined = join_power(inst, &p);
        assert_eq!(joined.len(), 2);
        assert_eq!(joined[0].instance.event, "B");
        assert_eq!(joined[1].instance.event, "A");
    }

    #[test]
    fn teardown_events_read_the_window_before_them() {
        // Foreground at 400 mW, then the app backgrounds at t = 2000
        // (10 mW after). onPause must read the pre-event foreground
        // regardless of what follows.
        let p = trace(&[
            (500, 400.0),
            (1000, 400.0),
            (1500, 400.0),
            (2000, 400.0),
            (2500, 10.0),
            (3000, 10.0),
        ]);
        let joined = join_power(
            vec![EventInstance::new("LA;->onPause", 2000, 2002)],
            &p,
        );
        assert_eq!(joined[0].power_mw, 400.0);
        // An onPause mid-switch (foreground continues) reads the same.
        let p2 = trace(&[
            (500, 400.0),
            (1000, 400.0),
            (1500, 400.0),
            (2000, 400.0),
            (2500, 400.0),
        ]);
        let joined2 = join_power(
            vec![EventInstance::new("LA;->onPause", 2000, 2002)],
            &p2,
        );
        assert_eq!(joined2[0].power_mw, 400.0);
    }

    #[test]
    fn teardown_event_before_first_sample_falls_back_to_nearest() {
        let p = trace(&[(500, 50.0)]);
        let joined =
            join_power(vec![EventInstance::new("LA;->onStop", 100, 101)], &p);
        assert_eq!(joined[0].power_mw, 50.0);
    }

    #[test]
    fn custom_horizon_widens_the_window() {
        let p = trace(&[
            (0, 100.0),
            (500, 200.0),
            (1000, 600.0),
            (1500, 800.0),
            (2000, 1000.0),
        ]);
        let inst = [EventInstance::new("E", 0, 10)];
        let near = join_power_with_horizon(inst.to_vec(), &p, 500);
        let wide = join_power_with_horizon(inst.to_vec(), &p, 1000);
        assert_eq!(near[0].power_mw, 700.0); // samples at 1000 and 1500
        assert_eq!(wide[0].power_mw, 900.0); // samples at 1500 and 2000
    }
}
