//! Power traces and per-component power breakdowns.
//!
//! A power trace is the output of the power model: one estimated
//! app-level power value (milliwatts) per utilization sample. The
//! per-component breakdown reproduces Figs. 11 and 14, which show e.g.
//! GPS continuing to draw power after OpenGPS goes to the background.

use crate::util::Component;
use serde::{Deserialize, Serialize};

/// One power sample: total app power plus the per-component split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Milliseconds since device boot.
    pub timestamp_ms: u64,
    /// Estimated app power in milliwatts.
    pub total_mw: f64,
    breakdown: [f64; 6],
}

impl PowerSample {
    /// Creates a sample from a per-component split; the total is the
    /// sum of parts.
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_trace::power::PowerSample;
    /// # use energydx_trace::util::Component;
    /// let mut s = PowerSample::new(500);
    /// s.set_component(Component::Cpu, 120.0);
    /// s.set_component(Component::Gps, 300.0);
    /// assert_eq!(s.total_mw, 420.0);
    /// ```
    pub fn new(timestamp_ms: u64) -> Self {
        PowerSample {
            timestamp_ms,
            total_mw: 0.0,
            breakdown: [0.0; 6],
        }
    }

    /// Power attributed to one component (mW).
    pub fn component(&self, c: Component) -> f64 {
        self.breakdown[c as usize]
    }

    /// Sets one component's power (mW, non-negative) and updates the
    /// total.
    pub fn set_component(&mut self, c: Component, mw: f64) {
        let mw = mw.max(0.0);
        self.breakdown[c as usize] = mw;
        self.total_mw = self.breakdown.iter().sum();
    }
}

/// A sequence of power samples for one session.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerTrace {
    samples: Vec<PowerSample>,
}

impl PowerTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        PowerTrace::default()
    }

    /// Appends a sample (timestamps must be non-decreasing for
    /// [`PowerTrace::mean_between`] to be meaningful).
    pub fn push(&mut self, sample: PowerSample) {
        debug_assert!(
            self.samples
                .last()
                .is_none_or(|l| sample.timestamp_ms >= l.timestamp_ms),
            "power samples must be appended in timestamp order"
        );
        self.samples.push(sample);
    }

    /// The samples in order.
    pub fn samples(&self) -> &[PowerSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean total power over the whole trace (0 if empty).
    pub fn mean_mw(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.total_mw).sum::<f64>()
            / self.samples.len() as f64
    }

    /// Mean total power of the samples with `start_ms <= t <= end_ms`,
    /// or `None` when no sample falls in the window.
    pub fn mean_between(&self, start_ms: u64, end_ms: u64) -> Option<f64> {
        let lo = self.samples.partition_point(|s| s.timestamp_ms < start_ms);
        let hi = self.samples.partition_point(|s| s.timestamp_ms <= end_ms);
        if lo >= hi {
            return None;
        }
        let slice = &self.samples[lo..hi];
        Some(slice.iter().map(|s| s.total_mw).sum::<f64>() / slice.len() as f64)
    }

    /// The sample nearest in time to `t`, or `None` for an empty trace.
    pub fn nearest(&self, t: u64) -> Option<&PowerSample> {
        if self.samples.is_empty() {
            return None;
        }
        let idx = self.samples.partition_point(|s| s.timestamp_ms < t);
        let candidates = [idx.checked_sub(1), Some(idx)];
        candidates
            .into_iter()
            .flatten()
            .filter_map(|i| self.samples.get(i))
            .min_by_key(|s| s.timestamp_ms.abs_diff(t))
    }

    /// Mean per-component breakdown of the samples with
    /// `start_ms <= t <= end_ms` (Figs. 11/14). Empty window → all-zero.
    pub fn breakdown_between(
        &self,
        start_ms: u64,
        end_ms: u64,
    ) -> PowerBreakdown {
        let lo = self.samples.partition_point(|s| s.timestamp_ms < start_ms);
        let hi = self.samples.partition_point(|s| s.timestamp_ms <= end_ms);
        let mut out = PowerBreakdown::default();
        if lo >= hi {
            return out;
        }
        let slice = &self.samples[lo..hi];
        for c in Component::ALL {
            let mean = slice.iter().map(|s| s.component(c)).sum::<f64>()
                / slice.len() as f64;
            out.set(c, mean);
        }
        out
    }
}

impl FromIterator<PowerSample> for PowerTrace {
    fn from_iter<T: IntoIterator<Item = PowerSample>>(iter: T) -> Self {
        let mut t = PowerTrace::new();
        for s in iter {
            t.push(s);
        }
        t
    }
}

/// Mean power per component over a window, in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerBreakdown {
    mw: [f64; 6],
}

impl PowerBreakdown {
    /// Power of one component (mW).
    pub fn get(&self, c: Component) -> f64 {
        self.mw[c as usize]
    }

    /// Sets one component's power (mW).
    pub fn set(&mut self, c: Component, mw: f64) {
        self.mw[c as usize] = mw.max(0.0);
    }

    /// Total across components (mW).
    pub fn total_mw(&self) -> f64 {
        self.mw.iter().sum()
    }

    /// `(component, mW)` pairs sorted by descending power — the order
    /// a Fig.-11-style stacked chart would list them.
    pub fn ranked(&self) -> Vec<(Component, f64)> {
        let mut v: Vec<(Component, f64)> = Component::ALL
            .into_iter()
            .map(|c| (c, self.get(c)))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("power is never NaN"));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ts: u64, cpu: f64, gps: f64) -> PowerSample {
        let mut s = PowerSample::new(ts);
        s.set_component(Component::Cpu, cpu);
        s.set_component(Component::Gps, gps);
        s
    }

    #[test]
    fn total_tracks_breakdown() {
        let s = sample(0, 100.0, 250.0);
        assert_eq!(s.total_mw, 350.0);
        assert_eq!(s.component(Component::Cpu), 100.0);
    }

    #[test]
    fn negative_component_power_is_clamped() {
        let mut s = PowerSample::new(0);
        s.set_component(Component::Audio, -5.0);
        assert_eq!(s.total_mw, 0.0);
    }

    #[test]
    fn mean_between_uses_inclusive_window() {
        let t: PowerTrace = (0..5)
            .map(|i| sample(i * 500, 100.0 * i as f64, 0.0))
            .collect();
        // Samples at 500 and 1000 → (100 + 200)/2.
        assert_eq!(t.mean_between(500, 1000), Some(150.0));
        assert_eq!(t.mean_between(501, 999), None);
        assert_eq!(t.mean_between(0, 10_000), Some(t.mean_mw()));
    }

    #[test]
    fn nearest_picks_closest_side() {
        let t: PowerTrace = [sample(0, 1.0, 0.0), sample(1000, 2.0, 0.0)]
            .into_iter()
            .collect();
        assert_eq!(t.nearest(400).unwrap().timestamp_ms, 0);
        assert_eq!(t.nearest(600).unwrap().timestamp_ms, 1000);
        assert_eq!(t.nearest(5000).unwrap().timestamp_ms, 1000);
        assert!(PowerTrace::new().nearest(0).is_none());
    }

    #[test]
    fn breakdown_between_averages_components() {
        let t: PowerTrace =
            [sample(0, 100.0, 300.0), sample(500, 200.0, 300.0)]
                .into_iter()
                .collect();
        let b = t.breakdown_between(0, 500);
        assert_eq!(b.get(Component::Cpu), 150.0);
        assert_eq!(b.get(Component::Gps), 300.0);
        assert_eq!(b.total_mw(), 450.0);
        // GPS dominates, as in Fig. 11.
        assert_eq!(b.ranked()[0].0, Component::Gps);
    }

    #[test]
    fn breakdown_of_empty_window_is_zero() {
        let t = PowerTrace::new();
        assert_eq!(t.breakdown_between(0, 100).total_mw(), 0.0);
    }

    #[test]
    fn mean_of_empty_trace_is_zero() {
        assert_eq!(PowerTrace::new().mean_mw(), 0.0);
    }
}
