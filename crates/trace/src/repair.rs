//! Bundle repair: conservative fixes for common upload defects.
//!
//! Some damaged bundles are worth keeping. A racy logger flushing two
//! records out of order, a clock stepped backwards by NTP, a stray
//! exit from a callback begun before logging started — all leave the
//! bulk of the session intact. The repair pass applies exactly the
//! fixes whose effect we can bound, and refuses anything beyond that:
//!
//! 1. **Bounded out-of-order sort** — if no record is displaced more
//!    than [`RepairPolicy::max_out_of_order_ms`] from timestamp order,
//!    a stable sort restores ordering. Larger displacements mean the
//!    trace's history cannot be trusted and the bundle is rejected.
//! 2. **Stray exit removal** — exits with no matching enter are
//!    dropped (begun-before-logging callbacks), but only up to
//!    [`RepairPolicy::max_stray_exits`] of them; more than that means
//!    the pairing structure itself is broken.
//! 3. **Utilization sample sort** — the same bounded out-of-order
//!    rule applied to the utilization trace. The power model requires
//!    non-decreasing sample timestamps; a damaged sample clock within
//!    the bound is sorted, beyond it the bundle is rejected.
//!
//! Deduplication of retried `(user, session)` uploads happens in the
//! store (it needs cross-bundle state); see
//! [`crate::store::TraceStore`].

use crate::event::{Direction, EventTrace};
use crate::store::TraceBundle;
use std::collections::HashMap;
use std::fmt;

/// Bounds on what [`repair`] may change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairPolicy {
    /// Largest backwards timestamp displacement (ms) the sort repair
    /// will fix. Displacements beyond this are rejected.
    pub max_out_of_order_ms: u64,
    /// Most stray exits the pairing repair will drop per bundle.
    pub max_stray_exits: usize,
}

impl Default for RepairPolicy {
    fn default() -> Self {
        RepairPolicy {
            // Generous against logger races and NTP steps (typically
            // tens of ms), far below anything that would reorder one
            // user interaction past another.
            max_out_of_order_ms: 5_000,
            max_stray_exits: 8,
        }
    }
}

/// One fix applied by [`repair`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairAction {
    /// Records were stably re-sorted into timestamp order.
    SortedOutOfOrder {
        /// Worst backwards displacement found, in milliseconds.
        displacement_ms: u64,
    },
    /// Stray exit records (no matching enter) were removed.
    DroppedStrayExits {
        /// How many were removed.
        count: usize,
    },
    /// Utilization samples were stably re-sorted into timestamp
    /// order. The power model requires non-decreasing sample
    /// timestamps, so un-repaired disorder here would corrupt every
    /// downstream power estimate.
    SortedUtilization {
        /// Worst backwards displacement found, in milliseconds.
        displacement_ms: u64,
    },
}

impl fmt::Display for RepairAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairAction::SortedOutOfOrder { displacement_ms } => {
                write!(
                    f,
                    "re-sorted records displaced up to {displacement_ms} ms"
                )
            }
            RepairAction::DroppedStrayExits { count } => {
                write!(f, "dropped {count} stray exit record(s)")
            }
            RepairAction::SortedUtilization { displacement_ms } => {
                write!(
                    f,
                    "re-sorted utilization samples displaced up to \
                     {displacement_ms} ms"
                )
            }
        }
    }
}

/// Why [`repair`] gave up on a bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairReject {
    /// A record was displaced further than the policy allows.
    OutOfOrderBeyondBound {
        /// The displacement found, in milliseconds.
        displacement_ms: u64,
    },
    /// More stray exits than the policy allows.
    TooManyStrayExits {
        /// How many stray exits were found.
        count: usize,
    },
}

impl fmt::Display for RepairReject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairReject::OutOfOrderBeyondBound { displacement_ms } => {
                write!(f, "records displaced {displacement_ms} ms, beyond the repair bound")
            }
            RepairReject::TooManyStrayExits { count } => {
                write!(f, "{count} stray exits, beyond the repair bound")
            }
        }
    }
}

/// Worst backwards displacement in the trace: how far (ms) the most
/// out-of-place record sits below the running maximum timestamp.
/// Zero means the trace is already in order.
pub fn max_displacement_ms(events: &EventTrace) -> u64 {
    let mut running_max = 0u64;
    let mut worst = 0u64;
    for r in events.records() {
        if r.timestamp_ms < running_max {
            worst = worst.max(running_max - r.timestamp_ms);
        } else {
            running_max = r.timestamp_ms;
        }
    }
    worst
}

/// Repairs a bundle in place, within the policy's bounds.
///
/// Returns the actions applied (empty if the bundle was already
/// clean). After a successful repair the bundle passes
/// [`TraceBundle::validate`].
///
/// # Errors
///
/// Returns a [`RepairReject`] — and leaves the bundle untouched — if
/// the damage exceeds what the policy allows.
pub fn repair(
    bundle: &mut TraceBundle,
    policy: &RepairPolicy,
) -> Result<Vec<RepairAction>, RepairReject> {
    let mut actions = Vec::new();

    // 1. Bounded out-of-order sort — events and utilization samples
    //    are judged against the same bound, and a reject leaves the
    //    bundle untouched, so both checks run before any mutation.
    let displacement_ms = max_displacement_ms(&bundle.events);
    if displacement_ms > policy.max_out_of_order_ms {
        return Err(RepairReject::OutOfOrderBeyondBound { displacement_ms });
    }
    let util_displacement_ms = bundle.utilization.max_displacement_ms();
    if util_displacement_ms > policy.max_out_of_order_ms {
        return Err(RepairReject::OutOfOrderBeyondBound {
            displacement_ms: util_displacement_ms,
        });
    }
    // 2. Count stray exits as they would pair after sorting, before
    //    mutating anything, so a reject leaves the bundle untouched.
    let mut records = bundle.events.records().to_vec();
    if displacement_ms > 0 {
        records.sort_by_key(|r| r.timestamp_ms);
    }
    let stray = stray_exit_indices(&records);
    if stray.len() > policy.max_stray_exits {
        return Err(RepairReject::TooManyStrayExits { count: stray.len() });
    }

    if displacement_ms > 0 {
        actions.push(RepairAction::SortedOutOfOrder { displacement_ms });
    }
    if !stray.is_empty() {
        let stray_set: std::collections::HashSet<usize> =
            stray.iter().copied().collect();
        records = records
            .into_iter()
            .enumerate()
            .filter(|(i, _)| !stray_set.contains(i))
            .map(|(_, r)| r)
            .collect();
        actions.push(RepairAction::DroppedStrayExits { count: stray.len() });
    }
    if !actions.is_empty() {
        bundle.events = records.into_iter().collect();
    }
    if util_displacement_ms > 0 {
        bundle.utilization.sort_by_timestamp();
        actions.push(RepairAction::SortedUtilization {
            displacement_ms: util_displacement_ms,
        });
    }
    Ok(actions)
}

/// Indices of exit records with no matching enter, under the same
/// per-event stack discipline the pairers use.
fn stray_exit_indices(records: &[crate::event::EventRecord]) -> Vec<usize> {
    let mut open: HashMap<&str, usize> = HashMap::new();
    let mut stray = Vec::new();
    for (i, r) in records.iter().enumerate() {
        match r.direction {
            Direction::Enter => *open.entry(r.event.as_str()).or_insert(0) += 1,
            Direction::Exit => match open.get_mut(r.event.as_str()) {
                Some(n) if *n > 0 => *n -= 1,
                _ => stray.push(i),
            },
        }
    }
    stray
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventRecord;

    fn clean_bundle() -> TraceBundle {
        let mut b = TraceBundle::new("u1", 0, "nexus6");
        b.events
            .push(EventRecord::new(10, Direction::Enter, "LA;->a"));
        b.events
            .push(EventRecord::new(20, Direction::Exit, "LA;->a"));
        b.events
            .push(EventRecord::new(30, Direction::Enter, "LB;->b"));
        b.events
            .push(EventRecord::new(45, Direction::Exit, "LB;->b"));
        b
    }

    #[test]
    fn clean_bundle_needs_no_repair() {
        let mut b = clean_bundle();
        let before = b.clone();
        let actions = repair(&mut b, &RepairPolicy::default()).unwrap();
        assert!(actions.is_empty());
        assert_eq!(b, before);
    }

    #[test]
    fn bounded_disorder_is_sorted() {
        let mut b = TraceBundle::new("u1", 0, "nexus6");
        b.events
            .push(EventRecord::new(30, Direction::Enter, "LB;->b"));
        b.events
            .push(EventRecord::new(10, Direction::Enter, "LA;->a"));
        b.events
            .push(EventRecord::new(20, Direction::Exit, "LA;->a"));
        b.events
            .push(EventRecord::new(45, Direction::Exit, "LB;->b"));
        let actions = repair(&mut b, &RepairPolicy::default()).unwrap();
        assert_eq!(
            actions,
            vec![RepairAction::SortedOutOfOrder {
                displacement_ms: 20
            }]
        );
        assert!(b.validate().is_ok());
        assert_eq!(b.events.records()[0].timestamp_ms, 10);
    }

    #[test]
    fn disorder_beyond_bound_is_rejected_untouched() {
        let mut b = TraceBundle::new("u1", 0, "nexus6");
        b.events
            .push(EventRecord::new(10_000, Direction::Enter, "LA;->a"));
        b.events
            .push(EventRecord::new(10, Direction::Exit, "LA;->a"));
        let before = b.clone();
        let err = repair(&mut b, &RepairPolicy::default()).unwrap_err();
        assert_eq!(
            err,
            RepairReject::OutOfOrderBeyondBound {
                displacement_ms: 9_990
            }
        );
        assert_eq!(b, before);
    }

    #[test]
    fn stray_exits_are_dropped() {
        let mut b = TraceBundle::new("u1", 0, "nexus6");
        // Session started mid-callback: its exit arrives unmatched.
        b.events
            .push(EventRecord::new(5, Direction::Exit, "LZ;->old"));
        b.events
            .push(EventRecord::new(10, Direction::Enter, "LA;->a"));
        b.events
            .push(EventRecord::new(20, Direction::Exit, "LA;->a"));
        let actions = repair(&mut b, &RepairPolicy::default()).unwrap();
        assert_eq!(actions, vec![RepairAction::DroppedStrayExits { count: 1 }]);
        assert!(b.validate().is_ok());
        assert_eq!(b.events.len(), 2);
    }

    #[test]
    fn too_many_stray_exits_rejected() {
        let mut b = TraceBundle::new("u1", 0, "nexus6");
        for i in 0..10u64 {
            b.events.push(EventRecord::new(
                i,
                Direction::Exit,
                format!("LZ;->e{i}"),
            ));
        }
        let err = repair(&mut b, &RepairPolicy::default()).unwrap_err();
        assert_eq!(err, RepairReject::TooManyStrayExits { count: 10 });
    }

    #[test]
    fn sort_and_stray_combine() {
        let mut b = TraceBundle::new("u1", 0, "nexus6");
        b.events
            .push(EventRecord::new(20, Direction::Enter, "LA;->a"));
        b.events
            .push(EventRecord::new(5, Direction::Exit, "LZ;->old"));
        b.events
            .push(EventRecord::new(30, Direction::Exit, "LA;->a"));
        let actions = repair(&mut b, &RepairPolicy::default()).unwrap();
        assert_eq!(actions.len(), 2);
        assert!(b.validate().is_ok());
        assert_eq!(b.events.len(), 2);
    }

    #[test]
    fn exit_counted_stray_only_after_sorting() {
        // Out of log order, but in-order once sorted: the exit is NOT
        // stray and must survive.
        let mut b = TraceBundle::new("u1", 0, "nexus6");
        b.events
            .push(EventRecord::new(20, Direction::Exit, "LA;->a"));
        b.events
            .push(EventRecord::new(10, Direction::Enter, "LA;->a"));
        let actions = repair(&mut b, &RepairPolicy::default()).unwrap();
        assert_eq!(
            actions,
            vec![RepairAction::SortedOutOfOrder {
                displacement_ms: 10
            }]
        );
        assert_eq!(b.events.len(), 2);
        assert!(b.validate().is_ok());
    }

    #[test]
    fn displacement_of_ordered_trace_is_zero() {
        assert_eq!(max_displacement_ms(&clean_bundle().events), 0);
    }

    #[test]
    fn disordered_utilization_is_sorted() {
        use crate::util::UtilizationSample;
        let mut b = clean_bundle();
        for ts in [0u64, 500, 1500, 1000, 2000] {
            b.utilization.push(UtilizationSample::new(ts));
        }
        let actions = repair(&mut b, &RepairPolicy::default()).unwrap();
        assert_eq!(
            actions,
            vec![RepairAction::SortedUtilization {
                displacement_ms: 500
            }]
        );
        let stamps: Vec<u64> = b
            .utilization
            .samples()
            .iter()
            .map(|s| s.timestamp_ms)
            .collect();
        assert_eq!(stamps, vec![0, 500, 1000, 1500, 2000]);
        assert!(b.validate().is_ok());
    }

    #[test]
    fn utilization_disorder_beyond_bound_is_rejected_untouched() {
        use crate::util::UtilizationSample;
        let mut b = clean_bundle();
        for ts in [10_000u64, 500] {
            b.utilization.push(UtilizationSample::new(ts));
        }
        let before = b.clone();
        let err = repair(&mut b, &RepairPolicy::default()).unwrap_err();
        assert_eq!(
            err,
            RepairReject::OutOfOrderBeyondBound {
                displacement_ms: 9_500
            }
        );
        assert_eq!(b, before);
    }
}
