//! Seeded fault injection over wire payloads.
//!
//! Fleet uploads cross flaky radios, mid-transfer battery pulls, and
//! buggy vendor ROMs; the collection backend must assume some fraction
//! of payloads arrive damaged. [`FaultInjector`] reproduces the damage
//! modes we have to survive — deterministically, from a seed, so every
//! chaos run is replayable:
//!
//! - [`FaultKind::Drop`] — the payload never arrives.
//! - [`FaultKind::Truncate`] — the connection died mid-transfer; only
//!   a prefix arrives.
//! - [`FaultKind::BitFlip`] — a byte is corrupted in flight or at
//!   rest.
//! - [`FaultKind::Duplicate`] — a retrying client uploads the same
//!   session twice.
//! - [`FaultKind::Reorder`] — two adjacent event records swap, the
//!   signature of a racy logger flushing out of order.
//! - [`FaultKind::ClockSkew`] — the device clock stepped backwards
//!   mid-session (NTP correction), shifting a suffix of event
//!   timestamps.
//!
//! `Reorder` and `ClockSkew` are semantic faults: the payload is
//! decoded, mutated, and re-encoded in its original frame version, so
//! it still parses — the damage surfaces later, in validation, where
//! the repair pass (see [`crate::repair`]) must deal with it.

use crate::rng::SplitMix64;
use crate::wire;
use std::collections::BTreeMap;
use std::fmt;

/// One of the injectable damage modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// Payload is lost entirely.
    Drop,
    /// Payload is cut to a random prefix.
    Truncate,
    /// One random byte past the version field is bit-flipped.
    BitFlip,
    /// Payload is delivered twice.
    Duplicate,
    /// Two adjacent event records are swapped.
    Reorder,
    /// A suffix of event timestamps is shifted backwards.
    ClockSkew,
}

impl FaultKind {
    /// All damage modes, in injection rotation order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::Drop,
        FaultKind::Truncate,
        FaultKind::BitFlip,
        FaultKind::Duplicate,
        FaultKind::Reorder,
        FaultKind::ClockSkew,
    ];
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Drop => "drop",
            FaultKind::Truncate => "truncate",
            FaultKind::BitFlip => "bit-flip",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::ClockSkew => "clock-skew",
        })
    }
}

/// What [`FaultInjector::inject`] did to a payload set.
#[derive(Debug, Clone, Default)]
pub struct InjectionReport {
    /// The payloads as delivered (drops removed, duplicates doubled).
    pub payloads: Vec<Vec<u8>>,
    /// Payloads that passed through untouched.
    pub clean: usize,
    /// Count of injections per fault kind.
    pub injected: BTreeMap<FaultKind, usize>,
}

impl InjectionReport {
    /// Payloads removed entirely ([`FaultKind::Drop`]).
    pub fn dropped(&self) -> usize {
        self.injected.get(&FaultKind::Drop).copied().unwrap_or(0)
    }

    /// Extra copies delivered ([`FaultKind::Duplicate`]).
    pub fn duplicated(&self) -> usize {
        self.injected
            .get(&FaultKind::Duplicate)
            .copied()
            .unwrap_or(0)
    }

    /// Total faults injected across all kinds.
    pub fn total_injected(&self) -> usize {
        self.injected.values().sum()
    }
}

/// Deterministic, seeded corruption of wire payloads.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: SplitMix64,
    corrupt_fraction: f64,
    kinds: Vec<FaultKind>,
    /// Largest backwards step `ClockSkew` applies, in milliseconds.
    pub max_skew_ms: u64,
}

impl FaultInjector {
    /// Creates an injector that corrupts roughly `corrupt_fraction` of
    /// payloads (each independently), rotating through every
    /// [`FaultKind`].
    pub fn new(seed: u64, corrupt_fraction: f64) -> Self {
        FaultInjector::with_kinds(
            seed,
            corrupt_fraction,
            FaultKind::ALL.to_vec(),
        )
    }

    /// Creates an injector restricted to the given damage modes.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` is empty or `corrupt_fraction` is not in
    /// `[0, 1]`.
    pub fn with_kinds(
        seed: u64,
        corrupt_fraction: f64,
        kinds: Vec<FaultKind>,
    ) -> Self {
        assert!(!kinds.is_empty(), "need at least one fault kind");
        assert!(
            (0.0..=1.0).contains(&corrupt_fraction),
            "corrupt_fraction must be within [0, 1]"
        );
        FaultInjector {
            rng: SplitMix64::new(seed),
            corrupt_fraction,
            kinds,
            max_skew_ms: 100,
        }
    }

    /// Runs the fleet's payloads through the injector. Each payload is
    /// independently corrupted with the configured probability; the
    /// fault kind cycles through the configured list so every mode
    /// gets exercised.
    pub fn inject(
        &mut self,
        payloads: impl IntoIterator<Item = Vec<u8>>,
    ) -> InjectionReport {
        let mut report = InjectionReport::default();
        let mut next_kind = 0usize;
        for payload in payloads {
            if self.rng.unit_f64() >= self.corrupt_fraction {
                report.payloads.push(payload);
                report.clean += 1;
                continue;
            }
            let kind = self.kinds[next_kind % self.kinds.len()];
            next_kind += 1;
            let delivered = self.corrupt(&payload, kind);
            *report.injected.entry(kind).or_insert(0) += 1;
            report.payloads.extend(delivered);
        }
        report
    }

    /// Applies one fault to one payload, returning what actually gets
    /// delivered (empty for a drop, two payloads for a duplicate).
    pub fn corrupt(&mut self, payload: &[u8], kind: FaultKind) -> Vec<Vec<u8>> {
        match kind {
            FaultKind::Drop => vec![],
            FaultKind::Truncate => {
                // Keep at least one byte and lose at least one, so the
                // fault is always material.
                let cut = 1 + self.rng.below(payload.len().max(2) - 1);
                vec![payload[..cut.min(payload.len())].to_vec()]
            }
            FaultKind::BitFlip => {
                let mut flipped = payload.to_vec();
                if flipped.len() > 5 {
                    // Spare magic+version: a flipped magic is just a
                    // drop with extra steps, and we model drops
                    // separately.
                    let idx = 5 + self.rng.below(flipped.len() - 5);
                    flipped[idx] ^= 1 << self.rng.below(8);
                }
                vec![flipped]
            }
            FaultKind::Duplicate => vec![payload.to_vec(), payload.to_vec()],
            FaultKind::Reorder => {
                self.mutate_events(payload, |rng, _max_skew, records| {
                    if records.len() < 2 {
                        return;
                    }
                    let i = rng.below(records.len() - 1);
                    records.swap(i, i + 1);
                })
            }
            FaultKind::ClockSkew => {
                self.mutate_events(payload, |rng, max_skew, records| {
                    if records.is_empty() {
                        return;
                    }
                    let start = rng.below(records.len());
                    let skew = 1 + rng.below(max_skew as usize) as u64;
                    for r in &mut records[start..] {
                        r.timestamp_ms = r.timestamp_ms.saturating_sub(skew);
                    }
                })
            }
        }
    }

    /// Decodes, mutates the event records, and re-encodes in the same
    /// frame version. If the payload does not parse (already damaged),
    /// falls back to a bit flip so the injection still happens.
    fn mutate_events(
        &mut self,
        payload: &[u8],
        mutate: impl FnOnce(
            &mut SplitMix64,
            u64,
            &mut Vec<crate::event::EventRecord>,
        ),
    ) -> Vec<Vec<u8>> {
        let Ok(mut bundle) = wire::decode(payload) else {
            return self.corrupt(payload, FaultKind::BitFlip);
        };
        let mut records = bundle.events.records().to_vec();
        mutate(&mut self.rng, self.max_skew_ms, &mut records);
        bundle.events = records.into_iter().collect();
        let v2 = payload.get(4) == Some(&wire::VERSION_V2);
        let encoded = if v2 {
            wire::try_encode_v2(&bundle)
        } else {
            wire::try_encode(&bundle)
        };
        match encoded {
            Ok(bytes) => vec![bytes.to_vec()],
            Err(_) => self.corrupt(payload, FaultKind::BitFlip),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Direction, EventRecord};
    use crate::store::TraceBundle;

    fn payload(n_events: u64) -> Vec<u8> {
        let mut b = TraceBundle::new("u1", 3, "nexus6");
        for i in 0..n_events {
            b.events.push(EventRecord::new(
                i * 10,
                Direction::Enter,
                format!("LA;->cb{i}"),
            ));
            b.events.push(EventRecord::new(
                i * 10 + 4,
                Direction::Exit,
                format!("LA;->cb{i}"),
            ));
        }
        wire::encode_v2(&b).to_vec()
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let payloads: Vec<Vec<u8>> = (0..20).map(|_| payload(5)).collect();
        let a = FaultInjector::new(7, 0.5).inject(payloads.clone());
        let b = FaultInjector::new(7, 0.5).inject(payloads.clone());
        assert_eq!(a.payloads, b.payloads);
        assert_eq!(a.injected, b.injected);
        let c = FaultInjector::new(8, 0.5).inject(payloads);
        assert_ne!(a.payloads, c.payloads);
    }

    #[test]
    fn zero_fraction_passes_everything_through() {
        let payloads: Vec<Vec<u8>> = (0..10).map(|_| payload(3)).collect();
        let report = FaultInjector::new(1, 0.0).inject(payloads.clone());
        assert_eq!(report.payloads, payloads);
        assert_eq!(report.clean, 10);
        assert_eq!(report.total_injected(), 0);
    }

    #[test]
    fn full_fraction_rotates_through_all_kinds() {
        let payloads: Vec<Vec<u8>> = (0..12).map(|_| payload(4)).collect();
        let report = FaultInjector::new(2, 1.0).inject(payloads);
        assert_eq!(report.clean, 0);
        assert_eq!(report.total_injected(), 12);
        for kind in FaultKind::ALL {
            assert_eq!(report.injected.get(&kind), Some(&2), "{kind}");
        }
        // 12 in, minus 2 drops, plus 2 duplicate copies.
        assert_eq!(report.payloads.len(), 12);
    }

    #[test]
    fn truncate_always_loses_bytes() {
        let p = payload(6);
        let mut inj = FaultInjector::new(3, 1.0);
        for _ in 0..50 {
            let out = inj.corrupt(&p, FaultKind::Truncate);
            assert_eq!(out.len(), 1);
            assert!(out[0].len() < p.len());
            assert!(!out[0].is_empty());
        }
    }

    #[test]
    fn bitflip_changes_exactly_one_bit() {
        let p = payload(6);
        let mut inj = FaultInjector::new(4, 1.0);
        let out = inj.corrupt(&p, FaultKind::BitFlip);
        let diff: u32 = p
            .iter()
            .zip(&out[0])
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1);
    }

    #[test]
    fn reorder_still_parses_but_breaks_ordering() {
        let p = payload(8);
        let mut inj = FaultInjector::new(5, 1.0);
        let out = inj.corrupt(&p, FaultKind::Reorder);
        let bundle =
            wire::decode(&out[0]).expect("reordered payload must still parse");
        assert!(bundle.events.validate().is_err());
    }

    #[test]
    fn clock_skew_shifts_a_suffix_backwards() {
        let p = payload(8);
        let mut inj = FaultInjector::new(6, 1.0);
        let out = inj.corrupt(&p, FaultKind::ClockSkew);
        let skewed =
            wire::decode(&out[0]).expect("skewed payload must still parse");
        let original = wire::decode(&p).unwrap();
        assert_ne!(skewed.events, original.events);
        assert_eq!(skewed.events.len(), original.events.len());
    }

    #[test]
    fn semantic_faults_on_garbage_fall_back_to_bitflip() {
        let garbage = vec![0xAB; 64];
        let mut inj = FaultInjector::new(9, 1.0);
        let out = inj.corrupt(&garbage, FaultKind::Reorder);
        assert_eq!(out.len(), 1);
        assert_ne!(out[0], garbage);
    }
}
