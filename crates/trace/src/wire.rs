//! Binary wire format for uploading trace bundles.
//!
//! Phones upload `(event trace, utilization trace)` bundles to the
//! backend "when the smartphone is in charge with WiFi" (§II-B). Two
//! frame versions are understood; [`decode`] negotiates on the version
//! byte.
//!
//! **v1** (legacy, written by [`encode`]) is a simple length-prefixed
//! little-endian encoding with no integrity protection:
//!
//! ```text
//! magic "EDXT" | version u8 = 1 | user str | session u64 | device str
//! | event count u32 | { ts u64, dir u8, event str }*
//! | period u64 | sample count u32 | { ts u64, util f64 ×6 }*
//! ```
//!
//! **v2** (written by [`encode_v2`], preferred for fleet uploads) adds
//! CRC32 section framing so that corruption is detected and confined:
//!
//! ```text
//! magic "EDXT" | version u8 = 2
//! | header len u32 | header { user str, session u64, device str, period u64 } | crc32 u32
//! | events  { count u32, { ts u64, dir u8, event str }* } | crc32 u32
//! | samples { count u32, { ts u64, util f64 ×6 }* }       | crc32 u32
//! ```
//!
//! Strings are `u32` length + UTF-8 bytes. Each v2 CRC covers the
//! whole preceding section (count included), so a bit flip pinpoints
//! the damaged section while the others stay trustworthy, and a
//! truncated payload still yields its valid record prefix through
//! [`decode_salvage`].
//!
//! **v3** (written by [`encode_v3`]) is v2 with one addition: the
//! CRC-covered header carries the app release the session ran under,
//! appended after the sampling period:
//!
//! ```text
//! header { user str, session u64, device str, period u64, app_version str }
//! ```
//!
//! v1/v2 payloads decode with an empty `app_version` (the implicit
//! unversioned release), so pre-v3 uploaders keep working unchanged.
//!
//! Both decoders bound every declared count against the bytes actually
//! remaining, so a corrupt count field cannot drive pre-allocation or
//! a long parse loop (no "4 billion records" DoS from a 40-byte
//! payload).

use crate::error::TraceError;
use crate::event::{Direction, EventRecord, EventTrace};
use crate::store::TraceBundle;
use crate::util::{Component, UtilizationSample, UtilizationTrace};
use bytes::{BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"EDXT";
/// The legacy unframed format version.
pub const VERSION_V1: u8 = 1;
/// The CRC32-framed format version.
pub const VERSION_V2: u8 = 2;
/// The CRC32-framed format version that carries an app-version stamp.
pub const VERSION_V3: u8 = 3;

/// Smallest possible encoded event record: ts u64 + dir u8 + empty str.
const MIN_EVENT_BYTES: usize = 8 + 1 + 4;
/// Encoded utilization sample: ts u64 + six f64 readings.
const SAMPLE_BYTES: usize = 8 + 6 * 8;
/// Upper bound on one event identifier; real identifiers are class
/// paths well under this, and the bound keeps salvage from treating a
/// corrupt length as a huge string.
const MAX_STRING_BYTES: usize = 4096;

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC32 (the `zlib`/`crc32` polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Encodes a bundle in the legacy v1 format.
///
/// # Panics
///
/// Panics if any count or string length exceeds `u32::MAX` (use
/// [`try_encode`] to handle that case as an error instead). No bundle
/// that fits in memory on a phone comes anywhere near the limit.
///
/// # Examples
///
/// ```
/// # use energydx_trace::{TraceBundle, wire};
/// let bundle = TraceBundle::new("user-1", 7, "nexus6");
/// let bytes = wire::encode(&bundle);
/// let decoded = wire::decode(&bytes)?;
/// assert_eq!(decoded, bundle);
/// # Ok::<(), energydx_trace::TraceError>(())
/// ```
pub fn encode(bundle: &TraceBundle) -> Bytes {
    match try_encode(bundle) {
        Ok(bytes) => bytes,
        Err(e) => panic!("bundle not encodable: {e}"),
    }
}

/// Encodes a bundle in the legacy v1 format, with all count and length
/// fields checked rather than truncated.
///
/// # Errors
///
/// Returns [`TraceError::Wire`] if a count or string length exceeds
/// `u32::MAX`.
pub fn try_encode(bundle: &TraceBundle) -> Result<Bytes, TraceError> {
    let mut buf = BytesMut::with_capacity(
        64 + bundle.events.len() * 48 + bundle.utilization.len() * 56,
    );
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION_V1);
    put_str(&mut buf, &bundle.user)?;
    buf.put_u64_le(bundle.session);
    put_str(&mut buf, &bundle.device)?;

    buf.put_u32_le(checked_count(bundle.events.len(), "event")?);
    for r in bundle.events.records() {
        put_event_record(&mut buf, r)?;
    }

    buf.put_u64_le(bundle.utilization.period_ms);
    buf.put_u32_le(checked_count(bundle.utilization.len(), "sample")?);
    for s in bundle.utilization.samples() {
        put_sample(&mut buf, s);
    }
    Ok(buf.freeze())
}

/// Encodes a bundle in the CRC32-framed v2 format.
///
/// # Panics
///
/// Panics if any count or string length exceeds `u32::MAX` (use
/// [`try_encode_v2`] to handle that case as an error instead).
///
/// # Examples
///
/// ```
/// # use energydx_trace::{TraceBundle, wire};
/// let bundle = TraceBundle::new("user-1", 7, "nexus6");
/// let decoded = wire::decode(&wire::encode_v2(&bundle))?;
/// assert_eq!(decoded, bundle);
/// # Ok::<(), energydx_trace::TraceError>(())
/// ```
pub fn encode_v2(bundle: &TraceBundle) -> Bytes {
    match try_encode_v2(bundle) {
        Ok(bytes) => bytes,
        Err(e) => panic!("bundle not encodable: {e}"),
    }
}

/// Encodes a bundle in the CRC32-framed v2 format with checked counts.
///
/// The v2 header has no app-version field; a bundle's `app_version`
/// is silently dropped. Use [`try_encode_v3`] to preserve it.
///
/// # Errors
///
/// Returns [`TraceError::Wire`] if a count or string length exceeds
/// `u32::MAX`.
pub fn try_encode_v2(bundle: &TraceBundle) -> Result<Bytes, TraceError> {
    try_encode_framed(bundle, VERSION_V2)
}

/// Encodes a bundle in the v3 format: v2 framing plus the app-version
/// stamp in the CRC-covered header.
///
/// # Panics
///
/// Panics if any count or string length exceeds `u32::MAX` (use
/// [`try_encode_v3`] to handle that case as an error instead).
///
/// # Examples
///
/// ```
/// # use energydx_trace::{TraceBundle, wire};
/// let bundle = TraceBundle::new("user-1", 7, "nexus6").with_app_version("2.4.1");
/// let decoded = wire::decode(&wire::encode_v3(&bundle))?;
/// assert_eq!(decoded.app_version, "2.4.1");
/// # Ok::<(), energydx_trace::TraceError>(())
/// ```
pub fn encode_v3(bundle: &TraceBundle) -> Bytes {
    match try_encode_v3(bundle) {
        Ok(bytes) => bytes,
        Err(e) => panic!("bundle not encodable: {e}"),
    }
}

/// Encodes a bundle in the v3 format with checked counts.
///
/// # Errors
///
/// Returns [`TraceError::Wire`] if a count or string length exceeds
/// `u32::MAX`.
pub fn try_encode_v3(bundle: &TraceBundle) -> Result<Bytes, TraceError> {
    try_encode_framed(bundle, VERSION_V3)
}

fn try_encode_framed(
    bundle: &TraceBundle,
    version: u8,
) -> Result<Bytes, TraceError> {
    let mut header = BytesMut::with_capacity(64);
    put_str(&mut header, &bundle.user)?;
    header.put_u64_le(bundle.session);
    put_str(&mut header, &bundle.device)?;
    header.put_u64_le(bundle.utilization.period_ms);
    if version >= VERSION_V3 {
        put_str(&mut header, &bundle.app_version)?;
    }

    let mut events = BytesMut::with_capacity(4 + bundle.events.len() * 48);
    events.put_u32_le(checked_count(bundle.events.len(), "event")?);
    for r in bundle.events.records() {
        put_event_record(&mut events, r)?;
    }

    let mut samples =
        BytesMut::with_capacity(4 + bundle.utilization.len() * SAMPLE_BYTES);
    samples.put_u32_le(checked_count(bundle.utilization.len(), "sample")?);
    for s in bundle.utilization.samples() {
        put_sample(&mut samples, s);
    }

    let mut buf = BytesMut::with_capacity(
        4 + 1 + 4 + header.len() + events.len() + samples.len() + 12,
    );
    buf.put_slice(MAGIC);
    buf.put_u8(version);
    buf.put_u32_le(checked_count(header.len(), "header byte")?);
    let header_crc = crc32(&header);
    buf.put_slice(&header);
    buf.put_u32_le(header_crc);
    let events_crc = crc32(&events);
    buf.put_slice(&events);
    buf.put_u32_le(events_crc);
    let samples_crc = crc32(&samples);
    buf.put_slice(&samples);
    buf.put_u32_le(samples_crc);
    Ok(buf.freeze())
}

fn checked_count(len: usize, what: &str) -> Result<u32, TraceError> {
    u32::try_from(len).map_err(|_| TraceError::Wire {
        message: format!("{what} count {len} exceeds the u32 wire limit"),
    })
}

fn put_event_record(
    buf: &mut BytesMut,
    r: &EventRecord,
) -> Result<(), TraceError> {
    buf.put_u64_le(r.timestamp_ms);
    buf.put_u8(match r.direction {
        Direction::Enter => 0,
        Direction::Exit => 1,
    });
    put_str(buf, &r.event)
}

fn put_sample(buf: &mut BytesMut, s: &UtilizationSample) {
    buf.put_u64_le(s.timestamp_ms);
    for c in Component::ALL {
        buf.put_f64_le(s.get(c));
    }
}

fn put_str(buf: &mut BytesMut, s: &str) -> Result<(), TraceError> {
    buf.put_u32_le(checked_count(s.len(), "string byte")?);
    buf.put_slice(s.as_bytes());
    Ok(())
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A byte cursor that reports errors instead of panicking.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], TraceError> {
        if self.remaining() < n {
            return Err(TraceError::Wire {
                message: format!("truncated {what}"),
            });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn get_u8(&mut self, what: &str) -> Result<u8, TraceError> {
        Ok(self.take(1, what)?[0])
    }

    fn get_u32_le(&mut self, what: &str) -> Result<u32, TraceError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn get_u64_le(&mut self, what: &str) -> Result<u64, TraceError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn get_f64_le(&mut self, what: &str) -> Result<f64, TraceError> {
        Ok(f64::from_bits(self.get_u64_le(what)?))
    }

    fn get_str(&mut self) -> Result<String, TraceError> {
        let len = self.get_u32_le("string length")? as usize;
        if len > MAX_STRING_BYTES {
            return Err(TraceError::Wire {
                message: format!("string length {len} exceeds the {MAX_STRING_BYTES}-byte bound"),
            });
        }
        let bytes = self.take(len, "string body")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| TraceError::Wire {
            message: "string is not UTF-8".to_string(),
        })
    }

    fn get_event_record(&mut self) -> Result<EventRecord, TraceError> {
        let ts = self.get_u64_le("event record")?;
        let direction = match self.get_u8("event record")? {
            0 => Direction::Enter,
            1 => Direction::Exit,
            d => {
                return Err(TraceError::Wire {
                    message: format!("invalid direction byte {d}"),
                })
            }
        };
        let event = self.get_str()?;
        Ok(EventRecord::new(ts, direction, event))
    }

    fn get_sample(&mut self) -> Result<UtilizationSample, TraceError> {
        let mut s =
            UtilizationSample::new(self.get_u64_le("utilization sample")?);
        for c in Component::ALL {
            s.set(c, self.get_f64_le("utilization sample")?);
        }
        Ok(s)
    }

    /// Rejects a declared element count that could not possibly fit in
    /// the bytes that remain.
    fn bound_count(
        &self,
        declared: u32,
        min_bytes: usize,
        what: &str,
    ) -> Result<usize, TraceError> {
        let declared = declared as usize;
        if declared.saturating_mul(min_bytes) > self.remaining() {
            return Err(TraceError::Wire {
                message: format!(
                    "declared {what} count {declared} exceeds remaining payload ({} bytes)",
                    self.remaining()
                ),
            });
        }
        Ok(declared)
    }
}

/// Decodes a bundle strictly, negotiating the frame version.
///
/// v1 payloads must parse completely; v2 payloads must additionally
/// pass all three section CRCs. Use [`decode_salvage`] to recover what
/// can be recovered from a damaged payload instead.
///
/// # Errors
///
/// Returns [`TraceError::Wire`] on truncated or corrupt payloads,
/// wrong magic, unsupported version, CRC mismatch, or counts that
/// exceed the remaining payload.
pub fn decode(data: &[u8]) -> Result<TraceBundle, TraceError> {
    let mut r = Reader::new(data);
    match decode_version(&mut r)? {
        VERSION_V1 => decode_v1_strict(&mut r),
        version => decode_v2_strict(&mut r, version),
    }
}

fn decode_version(r: &mut Reader<'_>) -> Result<u8, TraceError> {
    let magic = r.take(4, "magic")?;
    if magic != MAGIC {
        return Err(TraceError::Wire {
            message: "bad magic".to_string(),
        });
    }
    let version = r.get_u8("version")?;
    if !matches!(version, VERSION_V1 | VERSION_V2 | VERSION_V3) {
        return Err(TraceError::Wire {
            message: format!("unsupported version {version}"),
        });
    }
    Ok(version)
}

fn decode_v1_strict(r: &mut Reader<'_>) -> Result<TraceBundle, TraceError> {
    let user = r.get_str()?;
    let session = r.get_u64_le("session id")?;
    let device = r.get_str()?;

    let declared = r.get_u32_le("event count")?;
    let n_events = r.bound_count(declared, MIN_EVENT_BYTES, "event")?;
    let mut events = EventTrace::new();
    for _ in 0..n_events {
        events.push(r.get_event_record()?);
    }

    let period_ms = r.get_u64_le("utilization header")?;
    let declared = r.get_u32_le("sample count")?;
    let n_samples = r.bound_count(declared, SAMPLE_BYTES, "sample")?;
    let mut utilization = UtilizationTrace::with_period(period_ms);
    for _ in 0..n_samples {
        utilization.push(r.get_sample()?);
    }
    if r.remaining() > 0 {
        return Err(TraceError::Wire {
            message: "trailing bytes after bundle".to_string(),
        });
    }

    let mut bundle = TraceBundle::new(user, session, device);
    bundle.events = events;
    bundle.utilization = utilization;
    Ok(bundle)
}

fn decode_v2_strict(
    r: &mut Reader<'_>,
    version: u8,
) -> Result<TraceBundle, TraceError> {
    let (mut bundle, events_start) = decode_v2_header(r, version)?;

    // Events section: bytes are CRC-covered from the count field on.
    let declared = r.get_u32_le("event count")?;
    let n_events = r.bound_count(declared, MIN_EVENT_BYTES, "event")?;
    let mut events = EventTrace::new();
    for _ in 0..n_events {
        events.push(r.get_event_record()?);
    }
    check_section_crc(r, events_start, "events")?;

    let samples_start = r.pos;
    let declared = r.get_u32_le("sample count")?;
    let n_samples = r.bound_count(declared, SAMPLE_BYTES, "sample")?;
    let mut utilization =
        UtilizationTrace::with_period(bundle.utilization.period_ms);
    for _ in 0..n_samples {
        utilization.push(r.get_sample()?);
    }
    check_section_crc(r, samples_start, "samples")?;

    if r.remaining() > 0 {
        return Err(TraceError::Wire {
            message: "trailing bytes after bundle".to_string(),
        });
    }
    bundle.events = events;
    bundle.utilization = utilization;
    Ok(bundle)
}

/// Parses and CRC-verifies the v2/v3 header; returns the
/// identity-only bundle and the offset where the events section
/// starts. On v3 the header additionally carries the app-version
/// stamp; on v2 it decodes as the implicit unversioned release.
fn decode_v2_header(
    r: &mut Reader<'_>,
    version: u8,
) -> Result<(TraceBundle, usize), TraceError> {
    let header_len = r.get_u32_le("header length")? as usize;
    if header_len + 4 > r.remaining() {
        return Err(TraceError::Wire {
            message: format!(
                "declared header length {header_len} exceeds remaining payload ({} bytes)",
                r.remaining()
            ),
        });
    }
    let header_start = r.pos;
    let header_bytes = r.take(header_len, "header")?;
    let stored_crc = r.get_u32_le("header crc")?;
    if crc32(header_bytes) != stored_crc {
        return Err(TraceError::Wire {
            message: "header crc mismatch".to_string(),
        });
    }
    let mut h = Reader::new(header_bytes);
    let user = h.get_str()?;
    let session = h.get_u64_le("session id")?;
    let device = h.get_str()?;
    let period_ms = h.get_u64_le("sampling period")?;
    let app_version = if version >= VERSION_V3 {
        h.get_str()?
    } else {
        String::new()
    };
    if h.remaining() > 0 {
        return Err(TraceError::Wire {
            message: "trailing bytes in header".to_string(),
        });
    }
    let _ = header_start;
    let mut bundle = TraceBundle::new(user, session, device);
    bundle.app_version = app_version;
    bundle.utilization = UtilizationTrace::with_period(period_ms);
    Ok((bundle, r.pos))
}

fn check_section_crc(
    r: &mut Reader<'_>,
    start: usize,
    what: &str,
) -> Result<(), TraceError> {
    let section = &r.data[start..r.pos];
    let stored = r.get_u32_le("section crc")?;
    if crc32(section) != stored {
        return Err(TraceError::Wire {
            message: format!("{what} crc mismatch"),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Salvage
// ---------------------------------------------------------------------------

/// What [`decode_salvage`] recovered and how trustworthy it is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvageReport {
    /// Frame version of the payload.
    pub version: u8,
    /// Events the payload declared vs. events actually recovered.
    pub events_declared: usize,
    /// Recovered prefix length of the event records.
    pub events_recovered: usize,
    /// Samples the payload declared vs. samples actually recovered.
    pub samples_declared: usize,
    /// Recovered prefix length of the utilization samples.
    pub samples_recovered: usize,
    /// v2 only: whether the events section CRC verified (`None` on v1,
    /// which carries no integrity data).
    pub events_crc_ok: Option<bool>,
    /// v2 only: whether the samples section CRC verified.
    pub samples_crc_ok: Option<bool>,
}

impl SalvageReport {
    /// Whether the payload decoded completely with all integrity
    /// checks passing — i.e. salvage recovered everything and a strict
    /// decode would have agreed.
    pub fn is_intact(&self) -> bool {
        self.events_recovered == self.events_declared
            && self.samples_recovered == self.samples_declared
            && self.events_crc_ok != Some(false)
            && self.samples_crc_ok != Some(false)
    }

    /// Whether any records at all were lost.
    pub fn lost_records(&self) -> usize {
        (self.events_declared - self.events_recovered)
            + (self.samples_declared - self.samples_recovered)
    }
}

/// A bundle recovered by [`decode_salvage`] plus its damage report.
#[derive(Debug, Clone, PartialEq)]
pub struct Salvaged {
    /// The recovered (possibly partial) bundle.
    pub bundle: TraceBundle,
    /// What was recovered and what was lost.
    pub report: SalvageReport,
}

/// Best-effort decode: recovers the valid record prefix of a damaged
/// payload instead of discarding it wholesale.
///
/// The identity header must parse (and, on v2, CRC-verify): a bundle
/// whose user/session cannot be trusted is useless for aggregation.
/// Past the header, every record that parses before the first defect
/// is kept, and section CRCs are reported rather than enforced.
///
/// # Errors
///
/// Returns [`TraceError::Wire`] when nothing can be salvaged: bad
/// magic, unsupported version, or an unparseable/corrupt identity
/// header.
pub fn decode_salvage(data: &[u8]) -> Result<Salvaged, TraceError> {
    let mut r = Reader::new(data);
    match decode_version(&mut r)? {
        VERSION_V1 => decode_v1_salvage(&mut r),
        version => decode_v2_salvage(&mut r, version),
    }
}

fn decode_v1_salvage(r: &mut Reader<'_>) -> Result<Salvaged, TraceError> {
    let user = r.get_str()?;
    let session = r.get_u64_le("session id")?;
    let device = r.get_str()?;
    let mut bundle = TraceBundle::new(user, session, device);

    let events_declared = r.get_u32_le("event count").unwrap_or(0) as usize;
    let mut events = EventTrace::new();
    for _ in 0..events_declared {
        match r.get_event_record() {
            Ok(record) => events.push(record),
            Err(_) => break,
        }
    }

    let period_ms = r.get_u64_le("utilization header").unwrap_or(0);
    let samples_declared = r.get_u32_le("sample count").unwrap_or(0) as usize;
    let mut utilization = UtilizationTrace::with_period(period_ms);
    for _ in 0..samples_declared.min(usable_count(r.remaining(), SAMPLE_BYTES))
    {
        match r.get_sample() {
            Ok(sample) => utilization.push(sample),
            Err(_) => break,
        }
    }

    let report = SalvageReport {
        version: VERSION_V1,
        events_declared,
        events_recovered: events.len(),
        samples_declared,
        samples_recovered: utilization.len(),
        events_crc_ok: None,
        samples_crc_ok: None,
    };
    bundle.events = events;
    bundle.utilization = utilization;
    Ok(Salvaged { bundle, report })
}

fn decode_v2_salvage(
    r: &mut Reader<'_>,
    version: u8,
) -> Result<Salvaged, TraceError> {
    let (mut bundle, events_start) = decode_v2_header(r, version)?;

    let events_declared = r.get_u32_le("event count").unwrap_or(0) as usize;
    let mut events = EventTrace::new();
    for _ in 0..events_declared {
        match r.get_event_record() {
            Ok(record) => events.push(record),
            Err(_) => break,
        }
    }
    let events_complete = events.len() == events_declared;
    let events_crc_ok = events_complete && section_crc_matches(r, events_start);

    let samples_start = r.pos;
    let samples_declared = r.get_u32_le("sample count").unwrap_or(0) as usize;
    let mut utilization =
        UtilizationTrace::with_period(bundle.utilization.period_ms);
    for _ in 0..samples_declared.min(usable_count(r.remaining(), SAMPLE_BYTES))
    {
        match r.get_sample() {
            Ok(sample) => utilization.push(sample),
            Err(_) => break,
        }
    }
    let samples_complete = utilization.len() == samples_declared;
    let samples_crc_ok =
        samples_complete && section_crc_matches(r, samples_start);

    let report = SalvageReport {
        version,
        events_declared,
        events_recovered: events.len(),
        samples_declared,
        samples_recovered: utilization.len(),
        events_crc_ok: Some(events_crc_ok),
        samples_crc_ok: Some(samples_crc_ok),
    };
    bundle.events = events;
    bundle.utilization = utilization;
    Ok(Salvaged { bundle, report })
}

/// Caps a (possibly corrupt) declared count by how many whole elements
/// the remaining bytes could hold, so salvage never loops past the
/// payload.
fn usable_count(remaining: usize, min_bytes: usize) -> usize {
    remaining / min_bytes
}

/// Reads the trailing section CRC (consuming it) and checks it against
/// the bytes from `start` to just before the CRC field.
fn section_crc_matches(r: &mut Reader<'_>, start: usize) -> bool {
    let section = &r.data[start..r.pos];
    match r.get_u32_le("section crc") {
        Ok(stored) => crc32(section) == stored,
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bundle() -> TraceBundle {
        let mut bundle = TraceBundle::new("volunteer-03", 42, "nexus6");
        bundle.events.push(EventRecord::new(
            28223867,
            Direction::Enter,
            "Lcom/fsck/k9/service/MailService;->onDestroy",
        ));
        bundle.events.push(EventRecord::new(
            28223867,
            Direction::Exit,
            "Lcom/fsck/k9/service/MailService;->onDestroy",
        ));
        let mut s = UtilizationSample::new(28223500);
        s.set(Component::Cpu, 0.35);
        s.set(Component::Wifi, 0.8);
        bundle.utilization.push(s);
        bundle
    }

    fn busy_bundle(n: usize) -> TraceBundle {
        let mut bundle = TraceBundle::new("volunteer-07", 9, "nexus5");
        for i in 0..n as u64 {
            bundle.events.push(EventRecord::new(
                i * 10,
                Direction::Enter,
                format!("LA;->cb{i}"),
            ));
            bundle.events.push(EventRecord::new(
                i * 10 + 5,
                Direction::Exit,
                format!("LA;->cb{i}"),
            ));
            let mut s = UtilizationSample::new(i * 10);
            s.set(Component::Cpu, 0.5);
            bundle.utilization.push(s);
        }
        bundle
    }

    #[test]
    fn round_trip() {
        let bundle = sample_bundle();
        let decoded = decode(&encode(&bundle)).unwrap();
        assert_eq!(decoded, bundle);
    }

    #[test]
    fn v2_round_trip() {
        let bundle = sample_bundle();
        let decoded = decode(&encode_v2(&bundle)).unwrap();
        assert_eq!(decoded, bundle);
    }

    #[test]
    fn empty_bundle_round_trips() {
        let bundle = TraceBundle::new("u", 0, "d");
        assert_eq!(decode(&encode(&bundle)).unwrap(), bundle);
        assert_eq!(decode(&encode_v2(&bundle)).unwrap(), bundle);
        assert_eq!(decode(&encode_v3(&bundle)).unwrap(), bundle);
    }

    #[test]
    fn v3_round_trips_the_app_version() {
        let bundle = sample_bundle().with_app_version("2.4.1");
        let decoded = decode(&encode_v3(&bundle)).unwrap();
        assert_eq!(decoded, bundle);
        assert_eq!(decoded.app_version, "2.4.1");
    }

    #[test]
    fn v2_drops_the_app_version_silently() {
        let bundle = sample_bundle().with_app_version("2.4.1");
        let decoded = decode(&encode_v2(&bundle)).unwrap();
        assert_eq!(decoded.app_version, "");
        assert_eq!(decoded, sample_bundle());
    }

    #[test]
    fn v3_truncation_anywhere_is_an_error_not_a_panic() {
        let bytes = encode_v3(&sample_bundle().with_app_version("v9"));
        for cut in 0..bytes.len() {
            assert!(
                matches!(decode(&bytes[..cut]), Err(TraceError::Wire { .. })),
                "truncation at {cut} must error"
            );
        }
    }

    #[test]
    fn v3_salvage_reports_version_and_keeps_the_stamp() {
        let bundle = busy_bundle(20).with_app_version("1.9");
        let bytes = encode_v3(&bundle).to_vec();
        let cut = bytes.len() * 2 / 3;
        let salvaged = decode_salvage(&bytes[..cut]).unwrap();
        assert_eq!(salvaged.report.version, VERSION_V3);
        assert_eq!(salvaged.bundle.app_version, "1.9");
        assert!(salvaged.report.events_recovered > 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode(&sample_bundle()).to_vec();
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(TraceError::Wire { .. })));
        assert!(decode_salvage(&bytes).is_err());
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut bytes = encode(&sample_bundle()).to_vec();
        bytes[4] = 99;
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        for bytes in [encode(&sample_bundle()), encode_v2(&sample_bundle())] {
            for cut in 0..bytes.len() {
                assert!(
                    matches!(
                        decode(&bytes[..cut]),
                        Err(TraceError::Wire { .. })
                    ),
                    "truncation at {cut} must error"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        for encoded in [encode(&sample_bundle()), encode_v2(&sample_bundle())] {
            let mut bytes = encoded.to_vec();
            bytes.push(0);
            assert!(matches!(decode(&bytes), Err(TraceError::Wire { .. })));
        }
    }

    #[test]
    fn invalid_direction_byte_is_rejected() {
        let bundle = sample_bundle();
        let bytes = encode(&bundle).to_vec();
        // Find the first direction byte: after magic(4) + ver(1) +
        // user(4+12) + session(8) + device(4+6) + count(4) + ts(8).
        let offset =
            4 + 1 + 4 + bundle.user.len() + 8 + 4 + bundle.device.len() + 4 + 8;
        let mut corrupted = bytes.clone();
        corrupted[offset] = 7;
        assert!(matches!(decode(&corrupted), Err(TraceError::Wire { .. })));
    }

    #[test]
    fn huge_declared_count_is_rejected_without_allocation() {
        let bundle = sample_bundle();
        let bytes = encode(&bundle).to_vec();
        let count_offset =
            4 + 1 + 4 + bundle.user.len() + 8 + 4 + bundle.device.len();
        let mut corrupted = bytes.clone();
        corrupted[count_offset..count_offset + 4]
            .copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode(&corrupted).unwrap_err();
        assert!(
            err.to_string().contains("exceeds remaining payload"),
            "{err}"
        );
    }

    #[test]
    fn v2_bitflip_in_events_fails_strict_decode() {
        let bundle = busy_bundle(10);
        let bytes = encode_v2(&bundle).to_vec();
        // Flip one bit somewhere in the middle of the events section.
        let mut corrupted = bytes.clone();
        let mid = bytes.len() / 2;
        corrupted[mid] ^= 0x10;
        assert!(decode(&corrupted).is_err());
    }

    #[test]
    fn v2_truncation_salvages_the_event_prefix() {
        let bundle = busy_bundle(20);
        let bytes = encode_v2(&bundle).to_vec();
        // Cut the payload somewhere inside the events section.
        let cut = bytes.len() * 2 / 3;
        let salvaged = decode_salvage(&bytes[..cut]).unwrap();
        assert_eq!(salvaged.bundle.user, bundle.user);
        assert_eq!(salvaged.bundle.session, bundle.session);
        assert!(salvaged.report.events_recovered > 0);
        assert!(salvaged.report.lost_records() > 0);
        assert!(!salvaged.report.is_intact());
        // Recovered records are a true prefix.
        assert_eq!(
            salvaged.bundle.events.records(),
            &bundle.events.records()[..salvaged.report.events_recovered]
        );
    }

    #[test]
    fn v1_truncation_salvages_the_event_prefix() {
        let bundle = busy_bundle(20);
        let bytes = encode(&bundle).to_vec();
        let cut = bytes.len() / 2;
        let salvaged = decode_salvage(&bytes[..cut]).unwrap();
        assert_eq!(salvaged.bundle.user, bundle.user);
        assert!(salvaged.report.events_recovered > 0);
        assert!(!salvaged.report.is_intact());
    }

    #[test]
    fn salvage_of_intact_payload_reports_intact() {
        for bytes in [encode(&sample_bundle()), encode_v2(&sample_bundle())] {
            let salvaged = decode_salvage(&bytes).unwrap();
            assert_eq!(salvaged.bundle, sample_bundle());
            assert!(salvaged.report.is_intact());
            assert_eq!(salvaged.report.lost_records(), 0);
        }
    }

    #[test]
    fn v2_corrupt_header_is_unsalvageable() {
        let bytes = encode_v2(&sample_bundle()).to_vec();
        // Corrupt a byte inside the user string (header body starts at
        // magic + version + header_len = offset 9).
        let mut corrupted = bytes.clone();
        corrupted[13] ^= 0xFF;
        let err = decode_salvage(&corrupted).unwrap_err();
        assert!(err.to_string().contains("crc"), "{err}");
    }

    #[test]
    fn v2_bitflip_in_samples_leaves_events_trusted() {
        let bundle = busy_bundle(8);
        let bytes = encode_v2(&bundle).to_vec();
        // Flip the last sample's low utilization byte (just before the
        // trailing samples CRC).
        let mut corrupted = bytes.clone();
        let idx = bytes.len() - 12;
        corrupted[idx] ^= 0x01;
        let salvaged = decode_salvage(&corrupted).unwrap();
        assert_eq!(salvaged.report.events_crc_ok, Some(true));
        assert_eq!(salvaged.report.samples_crc_ok, Some(false));
        assert_eq!(salvaged.bundle.events, bundle.events);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
