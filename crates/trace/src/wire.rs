//! Binary wire format for uploading trace bundles.
//!
//! Phones upload `(event trace, utilization trace)` bundles to the
//! backend "when the smartphone is in charge with WiFi" (§II-B). The
//! format is a simple length-prefixed little-endian encoding:
//!
//! ```text
//! magic "EDXT" | version u8 | user str | session u64 | device str
//! | event count u32 | { ts u64, dir u8, event str }*
//! | period u64 | sample count u32 | { ts u64, util f64 ×6 }*
//! ```
//!
//! Strings are `u32` length + UTF-8 bytes.

use crate::error::TraceError;
use crate::event::{Direction, EventRecord, EventTrace};
use crate::store::TraceBundle;
use crate::util::{Component, UtilizationSample, UtilizationTrace};
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"EDXT";
const VERSION: u8 = 1;

/// Encodes a bundle into its wire representation.
///
/// # Examples
///
/// ```
/// # use energydx_trace::{TraceBundle, wire};
/// let bundle = TraceBundle::new("user-1", 7, "nexus6");
/// let bytes = wire::encode(&bundle);
/// let decoded = wire::decode(&bytes)?;
/// assert_eq!(decoded, bundle);
/// # Ok::<(), energydx_trace::TraceError>(())
/// ```
pub fn encode(bundle: &TraceBundle) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        64 + bundle.events.len() * 48 + bundle.utilization.len() * 56,
    );
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    put_str(&mut buf, &bundle.user);
    buf.put_u64_le(bundle.session);
    put_str(&mut buf, &bundle.device);

    buf.put_u32_le(bundle.events.len() as u32);
    for r in bundle.events.records() {
        buf.put_u64_le(r.timestamp_ms);
        buf.put_u8(match r.direction {
            Direction::Enter => 0,
            Direction::Exit => 1,
        });
        put_str(&mut buf, &r.event);
    }

    buf.put_u64_le(bundle.utilization.period_ms);
    buf.put_u32_le(bundle.utilization.len() as u32);
    for s in bundle.utilization.samples() {
        buf.put_u64_le(s.timestamp_ms);
        for c in Component::ALL {
            buf.put_f64_le(s.get(c));
        }
    }
    buf.freeze()
}

/// Decodes a bundle from its wire representation.
///
/// # Errors
///
/// Returns [`TraceError::Wire`] on truncated or corrupt payloads,
/// wrong magic, or unsupported version.
pub fn decode(mut data: &[u8]) -> Result<TraceBundle, TraceError> {
    let err = |message: &str| TraceError::Wire {
        message: message.to_string(),
    };
    if data.remaining() < 5 {
        return Err(err("payload shorter than header"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(err("bad magic"));
    }
    let version = data.get_u8();
    if version != VERSION {
        return Err(TraceError::Wire {
            message: format!("unsupported version {version}"),
        });
    }
    let user = get_str(&mut data)?;
    if data.remaining() < 8 {
        return Err(err("truncated session id"));
    }
    let session = data.get_u64_le();
    let device = get_str(&mut data)?;

    if data.remaining() < 4 {
        return Err(err("truncated event count"));
    }
    let n_events = data.get_u32_le() as usize;
    let mut events = EventTrace::new();
    for _ in 0..n_events {
        if data.remaining() < 9 {
            return Err(err("truncated event record"));
        }
        let ts = data.get_u64_le();
        let direction = match data.get_u8() {
            0 => Direction::Enter,
            1 => Direction::Exit,
            d => {
                return Err(TraceError::Wire {
                    message: format!("invalid direction byte {d}"),
                })
            }
        };
        let event = get_str(&mut data)?;
        events.push(EventRecord::new(ts, direction, event));
    }

    if data.remaining() < 12 {
        return Err(err("truncated utilization header"));
    }
    let period_ms = data.get_u64_le();
    let n_samples = data.get_u32_le() as usize;
    let mut utilization = UtilizationTrace::with_period(period_ms);
    for _ in 0..n_samples {
        if data.remaining() < 8 + 6 * 8 {
            return Err(err("truncated utilization sample"));
        }
        let mut s = UtilizationSample::new(data.get_u64_le());
        for c in Component::ALL {
            s.set(c, data.get_f64_le());
        }
        utilization.push(s);
    }
    if data.has_remaining() {
        return Err(err("trailing bytes after bundle"));
    }

    let mut bundle = TraceBundle::new(user, session, device);
    bundle.events = events;
    bundle.utilization = utilization;
    Ok(bundle)
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(data: &mut &[u8]) -> Result<String, TraceError> {
    if data.remaining() < 4 {
        return Err(TraceError::Wire {
            message: "truncated string length".to_string(),
        });
    }
    let len = data.get_u32_le() as usize;
    if data.remaining() < len {
        return Err(TraceError::Wire {
            message: "truncated string body".to_string(),
        });
    }
    let bytes = data.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| TraceError::Wire {
        message: "string is not UTF-8".to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bundle() -> TraceBundle {
        let mut bundle = TraceBundle::new("volunteer-03", 42, "nexus6");
        bundle.events.push(EventRecord::new(
            28223867,
            Direction::Enter,
            "Lcom/fsck/k9/service/MailService;->onDestroy",
        ));
        bundle.events.push(EventRecord::new(
            28223867,
            Direction::Exit,
            "Lcom/fsck/k9/service/MailService;->onDestroy",
        ));
        let mut s = UtilizationSample::new(28223500);
        s.set(Component::Cpu, 0.35);
        s.set(Component::Wifi, 0.8);
        bundle.utilization.push(s);
        bundle
    }

    #[test]
    fn round_trip() {
        let bundle = sample_bundle();
        let decoded = decode(&encode(&bundle)).unwrap();
        assert_eq!(decoded, bundle);
    }

    #[test]
    fn empty_bundle_round_trips() {
        let bundle = TraceBundle::new("u", 0, "d");
        assert_eq!(decode(&encode(&bundle)).unwrap(), bundle);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode(&sample_bundle()).to_vec();
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(TraceError::Wire { .. })));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut bytes = encode(&sample_bundle()).to_vec();
        bytes[4] = 99;
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        let bytes = encode(&sample_bundle());
        for cut in 0..bytes.len() {
            assert!(
                matches!(decode(&bytes[..cut]), Err(TraceError::Wire { .. })),
                "truncation at {cut} must error"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode(&sample_bundle()).to_vec();
        bytes.push(0);
        assert!(matches!(decode(&bytes), Err(TraceError::Wire { .. })));
    }

    #[test]
    fn invalid_direction_byte_is_rejected() {
        let bundle = sample_bundle();
        let bytes = encode(&bundle).to_vec();
        // Find the first direction byte: after magic(4) + ver(1) +
        // user(4+12) + session(8) + device(4+6) + count(4) + ts(8).
        let offset = 4 + 1 + 4 + bundle.user.len() + 8 + 4 + bundle.device.len() + 4 + 8;
        let mut corrupted = bytes.clone();
        corrupted[offset] = 7;
        assert!(matches!(decode(&corrupted), Err(TraceError::Wire { .. })));
    }
}
