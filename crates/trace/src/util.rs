//! Utilization traces: periodic per-app hardware utilization samples.
//!
//! The paper's background service reads procfs every 500 ms and records
//! the utilization of each hardware component attributed to the suspect
//! app (identified by PID, so concurrent apps do not pollute the
//! numbers). A sample holds one value per component; the power model
//! turns samples into watts.

use serde::{Deserialize, Serialize};

/// The hardware components tracked by the utilization sampler.
///
/// The set matches the components of the PowerTutor-style model the
/// paper builds on (§II-C): CPU, display, WiFi, GPS, cellular, audio.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    Hash,
    PartialOrd,
    Ord,
    Serialize,
    Deserialize,
)]
pub enum Component {
    /// CPU load attributed to the app (0..=1 per core-normalized).
    Cpu,
    /// Display on/brightness attribution (0..=1).
    Display,
    /// WiFi radio activity (0..=1; 1 = continuous transmit).
    Wifi,
    /// GPS receiver duty cycle (0..=1).
    Gps,
    /// Cellular radio activity (0..=1).
    Cellular,
    /// Audio output (0..=1).
    Audio,
}

impl Component {
    /// All components, for iteration.
    pub const ALL: [Component; 6] = [
        Component::Cpu,
        Component::Display,
        Component::Wifi,
        Component::Gps,
        Component::Cellular,
        Component::Audio,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            Component::Cpu => "cpu",
            Component::Display => "display",
            Component::Wifi => "wifi",
            Component::Gps => "gps",
            Component::Cellular => "cellular",
            Component::Audio => "audio",
        }
    }
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One 500 ms utilization sample: a value in `[0, 1]` per component.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct UtilizationSample {
    /// Milliseconds since device boot.
    pub timestamp_ms: u64,
    utilization: [f64; 6],
}

impl UtilizationSample {
    /// Creates an all-idle sample at a timestamp.
    pub fn new(timestamp_ms: u64) -> Self {
        UtilizationSample {
            timestamp_ms,
            utilization: [0.0; 6],
        }
    }

    /// The utilization of one component, in `[0, 1]`.
    pub fn get(&self, component: Component) -> f64 {
        self.utilization[component as usize]
    }

    /// Sets a component's utilization, clamped into `[0, 1]`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_trace::util::{Component, UtilizationSample};
    /// let mut s = UtilizationSample::new(500);
    /// s.set(Component::Cpu, 0.8);
    /// s.set(Component::Gps, 7.0); // clamped
    /// assert_eq!(s.get(Component::Cpu), 0.8);
    /// assert_eq!(s.get(Component::Gps), 1.0);
    /// ```
    pub fn set(&mut self, component: Component, value: f64) {
        self.utilization[component as usize] = value.clamp(0.0, 1.0);
    }

    /// Iterates over `(component, utilization)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Component, f64)> + '_ {
        Component::ALL.into_iter().map(move |c| (c, self.get(c)))
    }
}

/// A sequence of utilization samples for one session.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct UtilizationTrace {
    samples: Vec<UtilizationSample>,
    /// Sampling period; the paper uses 500 ms as the accuracy/overhead
    /// trade-off.
    pub period_ms: u64,
}

impl UtilizationTrace {
    /// Creates an empty trace with the paper's default 500 ms period.
    pub fn new() -> Self {
        UtilizationTrace {
            samples: Vec::new(),
            period_ms: 500,
        }
    }

    /// Creates an empty trace with a custom sampling period.
    pub fn with_period(period_ms: u64) -> Self {
        UtilizationTrace {
            samples: Vec::new(),
            period_ms,
        }
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: UtilizationSample) {
        self.samples.push(sample);
    }

    /// The samples in order.
    pub fn samples(&self) -> &[UtilizationSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Worst backwards displacement in the trace: how far (ms) the
    /// most out-of-place sample sits below the running maximum
    /// timestamp. Zero means the samples are already in order.
    pub fn max_displacement_ms(&self) -> u64 {
        let mut running_max = 0u64;
        let mut worst = 0u64;
        for s in &self.samples {
            if s.timestamp_ms < running_max {
                worst = worst.max(running_max - s.timestamp_ms);
            } else {
                running_max = s.timestamp_ms;
            }
        }
        worst
    }

    /// Stably re-sorts the samples into timestamp order. The power
    /// model requires non-decreasing timestamps; repair calls this
    /// for bounded disorder (a damaged sample clock) instead of
    /// rejecting the whole bundle.
    pub fn sort_by_timestamp(&mut self) {
        self.samples.sort_by_key(|s| s.timestamp_ms);
    }

    /// Mean utilization of one component across the trace (0 if empty).
    pub fn mean(&self, component: Component) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.get(component)).sum::<f64>()
            / self.samples.len() as f64
    }
}

impl FromIterator<UtilizationSample> for UtilizationTrace {
    fn from_iter<T: IntoIterator<Item = UtilizationSample>>(iter: T) -> Self {
        UtilizationTrace {
            samples: iter.into_iter().collect(),
            period_ms: 500,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clamps_into_unit_interval() {
        let mut s = UtilizationSample::new(0);
        s.set(Component::Cpu, -0.5);
        assert_eq!(s.get(Component::Cpu), 0.0);
        s.set(Component::Cpu, 1.5);
        assert_eq!(s.get(Component::Cpu), 1.0);
    }

    #[test]
    fn iter_yields_all_components() {
        let s = UtilizationSample::new(0);
        assert_eq!(s.iter().count(), Component::ALL.len());
    }

    #[test]
    fn default_period_is_500ms_per_paper() {
        assert_eq!(UtilizationTrace::new().period_ms, 500);
        assert_eq!(UtilizationTrace::with_period(100).period_ms, 100);
    }

    #[test]
    fn mean_of_component() {
        let mut t = UtilizationTrace::new();
        for (ts, cpu) in [(0u64, 0.2), (500, 0.4), (1000, 0.6)] {
            let mut s = UtilizationSample::new(ts);
            s.set(Component::Cpu, cpu);
            t.push(s);
        }
        assert!((t.mean(Component::Cpu) - 0.4).abs() < 1e-12);
        assert_eq!(t.mean(Component::Gps), 0.0);
    }

    #[test]
    fn mean_of_empty_trace_is_zero() {
        assert_eq!(UtilizationTrace::new().mean(Component::Cpu), 0.0);
    }

    #[test]
    fn component_names_are_distinct() {
        let names: std::collections::BTreeSet<&str> =
            Component::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), Component::ALL.len());
    }
}
