//! Event traces: timestamped callback entry/exit records.
//!
//! The on-phone logger produces one record per `log-enter`/`log-exit`
//! op. The text form matches Fig. 5 of the paper:
//!
//! ```text
//! 28223867 + Lcom/fsck/k9/service/MailService;->onDestroy
//! 28223867 - Lcom/fsck/k9/service/MailService;->onDestroy
//! 28224781 + Lcom/fsck/k9/activity/MessageList;->onItemClick
//! 28224844 - Lcom/fsck/k9/activity/MessageList;->onItemClick
//! ```
//!
//! Pairing enter/exit records yields [`EventInstance`]s — the unit the
//! 5-step analysis operates on.

use crate::error::TraceError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a record marks a callback entry (`+`) or exit (`-`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Callback entry (`+` in the log).
    Enter,
    /// Callback exit (`-` in the log).
    Exit,
}

impl Direction {
    /// The log sigil (`+` or `-`).
    pub fn sigil(&self) -> char {
        match self {
            Direction::Enter => '+',
            Direction::Exit => '-',
        }
    }
}

/// One logged record.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EventRecord {
    /// Milliseconds since device boot (system timestamp).
    pub timestamp_ms: u64,
    /// Entry or exit.
    pub direction: Direction,
    /// Event identifier, `Lcls;->name` form.
    pub event: String,
}

impl EventRecord {
    /// Creates a record.
    pub fn new(
        timestamp_ms: u64,
        direction: Direction,
        event: impl Into<String>,
    ) -> Self {
        EventRecord {
            timestamp_ms,
            direction,
            event: event.into(),
        }
    }
}

impl fmt::Display for EventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}",
            self.timestamp_ms,
            self.direction.sigil(),
            self.event
        )
    }
}

/// A paired callback execution: `[start_ms, end_ms]` of one event.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EventInstance {
    /// Event identifier, `Lcls;->name` form.
    pub event: String,
    /// Entry timestamp (ms).
    pub start_ms: u64,
    /// Exit timestamp (ms).
    pub end_ms: u64,
}

impl EventInstance {
    /// Creates an instance; `end_ms` must be `>= start_ms`.
    pub fn new(event: impl Into<String>, start_ms: u64, end_ms: u64) -> Self {
        let instance = EventInstance {
            event: event.into(),
            start_ms,
            end_ms,
        };
        debug_assert!(instance.end_ms >= instance.start_ms);
        instance
    }

    /// Wall-clock duration of the callback execution in milliseconds.
    pub fn duration_ms(&self) -> u64 {
        self.end_ms - self.start_ms
    }

    /// Midpoint timestamp, used for nearest-sample power fallback.
    pub fn midpoint_ms(&self) -> u64 {
        self.start_ms + (self.end_ms - self.start_ms) / 2
    }
}

/// An append-only sequence of event records for one user session.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EventTrace {
    records: Vec<EventRecord>,
}

impl EventTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        EventTrace::default()
    }

    /// Appends a record. Records are expected in non-decreasing
    /// timestamp order; [`EventTrace::validate`] checks this.
    pub fn push(&mut self, record: EventRecord) {
        self.records.push(record);
    }

    /// The raw records in log order.
    pub fn records(&self) -> &[EventRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Checks that timestamps are non-decreasing.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::OutOfOrder`] with the first bad index.
    pub fn validate(&self) -> Result<(), TraceError> {
        for (i, w) in self.records.windows(2).enumerate() {
            if w[1].timestamp_ms < w[0].timestamp_ms {
                return Err(TraceError::OutOfOrder { index: i + 1 });
            }
        }
        Ok(())
    }

    /// Pairs enter/exit records into instances, in chronological order
    /// of entry. Callbacks may nest (an `onCreate` that synchronously
    /// triggers an `onClick` dispatch); pairing matches each exit to
    /// the most recent unmatched enter of the same event (stack
    /// discipline per event). Enters that never see an exit (the
    /// session ended mid-callback) are closed at the last record's
    /// timestamp.
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_trace::event::{Direction, EventRecord, EventTrace};
    /// let mut t = EventTrace::new();
    /// t.push(EventRecord::new(10, Direction::Enter, "LA;->onCreate"));
    /// t.push(EventRecord::new(12, Direction::Enter, "LB;->onClick"));
    /// t.push(EventRecord::new(20, Direction::Exit, "LB;->onClick"));
    /// t.push(EventRecord::new(25, Direction::Exit, "LA;->onCreate"));
    /// let inst = t.pair_instances();
    /// assert_eq!(inst[0].event, "LA;->onCreate");
    /// assert_eq!(inst[0].duration_ms(), 15);
    /// assert_eq!(inst[1].duration_ms(), 8);
    /// ```
    pub fn pair_instances(&self) -> Vec<EventInstance> {
        use std::collections::HashMap;
        // event -> stack of (entry timestamp, output slot index)
        let mut open: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut out: Vec<EventInstance> = Vec::new();
        let last_ts = self.records.last().map_or(0, |r| r.timestamp_ms);

        for record in &self.records {
            match record.direction {
                Direction::Enter => {
                    let slot = out.len();
                    out.push(EventInstance::new(
                        record.event.clone(),
                        record.timestamp_ms,
                        // Provisionally closed at session end.
                        last_ts.max(record.timestamp_ms),
                    ));
                    open.entry(record.event.as_str()).or_default().push(slot);
                }
                Direction::Exit => {
                    if let Some(slot) =
                        open.get_mut(record.event.as_str()).and_then(Vec::pop)
                    {
                        out[slot].end_ms = record.timestamp_ms;
                    }
                    // Unmatched exits are dropped: they come from
                    // callbacks begun before logging started.
                }
            }
        }
        out
    }

    /// Strictly paired variant of [`EventTrace::pair_instances`]: an
    /// exit without a matching enter is an error instead of being
    /// dropped. Used by tests and by the store's integrity check.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnmatchedExit`] on the first stray exit.
    pub fn pair_instances_strict(
        &self,
    ) -> Result<Vec<EventInstance>, TraceError> {
        use std::collections::HashMap;
        let mut open: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut out: Vec<EventInstance> = Vec::new();
        let last_ts = self.records.last().map_or(0, |r| r.timestamp_ms);
        for record in &self.records {
            match record.direction {
                Direction::Enter => {
                    let slot = out.len();
                    out.push(EventInstance::new(
                        record.event.clone(),
                        record.timestamp_ms,
                        last_ts.max(record.timestamp_ms),
                    ));
                    open.entry(record.event.as_str()).or_default().push(slot);
                }
                Direction::Exit => {
                    let slot = open
                        .get_mut(record.event.as_str())
                        .and_then(Vec::pop)
                        .ok_or_else(|| TraceError::UnmatchedExit {
                            event: record.event.clone(),
                            timestamp_ms: record.timestamp_ms,
                        })?;
                    out[slot].end_ms = record.timestamp_ms;
                }
            }
        }
        Ok(out)
    }

    /// Renders the trace in the Fig.-5 text log format.
    pub fn to_log(&self) -> String {
        let mut s = String::new();
        for r in &self.records {
            s.push_str(&r.to_string());
            s.push('\n');
        }
        s
    }

    /// Parses the Fig.-5 text log format.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::ParseLine`] on a malformed line.
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_trace::event::EventTrace;
    /// let log = "28223867 + Lcom/fsck/k9/service/MailService;->onDestroy\n\
    ///            28223899 - Lcom/fsck/k9/service/MailService;->onDestroy\n";
    /// let t = EventTrace::from_log(log)?;
    /// assert_eq!(t.len(), 2);
    /// assert_eq!(t.to_log().lines().count(), 2);
    /// # Ok::<(), energydx_trace::TraceError>(())
    /// ```
    pub fn from_log(log: &str) -> Result<Self, TraceError> {
        let mut trace = EventTrace::new();
        for (idx, raw) in log.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            let mut parts = line.splitn(3, ' ');
            let ts = parts
                .next()
                .and_then(|t| t.parse::<u64>().ok())
                .ok_or_else(|| TraceError::ParseLine {
                    line: lineno,
                    message: "expected millisecond timestamp".to_string(),
                })?;
            let direction = match parts.next() {
                Some("+") => Direction::Enter,
                Some("-") => Direction::Exit,
                other => {
                    return Err(TraceError::ParseLine {
                        line: lineno,
                        message: format!("expected + or -, got {other:?}"),
                    })
                }
            };
            let event = parts.next().ok_or_else(|| TraceError::ParseLine {
                line: lineno,
                message: "missing event identifier".to_string(),
            })?;
            trace.push(EventRecord::new(ts, direction, event));
        }
        Ok(trace)
    }
}

impl FromIterator<EventRecord> for EventTrace {
    fn from_iter<T: IntoIterator<Item = EventRecord>>(iter: T) -> Self {
        EventTrace {
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<EventRecord> for EventTrace {
    fn extend<T: IntoIterator<Item = EventRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k9_log() -> &'static str {
        "28223867 + Lcom/fsck/k9/service/MailService;->onDestroy\n\
         28223867 - Lcom/fsck/k9/service/MailService;->onDestroy\n\
         28224781 + Lcom/fsck/k9/activity/MessageList;->onItemClick\n\
         28224844 - Lcom/fsck/k9/activity/MessageList;->onItemClick\n"
    }

    #[test]
    fn log_round_trips() {
        let t = EventTrace::from_log(k9_log()).unwrap();
        let reparsed = EventTrace::from_log(&t.to_log()).unwrap();
        assert_eq!(reparsed, t);
    }

    #[test]
    fn fig5_pairs_into_two_instances() {
        let t = EventTrace::from_log(k9_log()).unwrap();
        let inst = t.pair_instances_strict().unwrap();
        assert_eq!(inst.len(), 2);
        assert_eq!(inst[0].duration_ms(), 0); // same-ms enter/exit
        assert_eq!(inst[1].duration_ms(), 63);
    }

    #[test]
    fn nested_same_event_pairs_lifo() {
        let mut t = EventTrace::new();
        t.push(EventRecord::new(0, Direction::Enter, "E"));
        t.push(EventRecord::new(5, Direction::Enter, "E"));
        t.push(EventRecord::new(7, Direction::Exit, "E"));
        t.push(EventRecord::new(9, Direction::Exit, "E"));
        let inst = t.pair_instances_strict().unwrap();
        assert_eq!(inst.len(), 2);
        assert_eq!((inst[0].start_ms, inst[0].end_ms), (0, 9));
        assert_eq!((inst[1].start_ms, inst[1].end_ms), (5, 7));
    }

    #[test]
    fn unmatched_enter_is_closed_at_session_end() {
        let mut t = EventTrace::new();
        t.push(EventRecord::new(10, Direction::Enter, "E"));
        t.push(EventRecord::new(50, Direction::Enter, "F"));
        t.push(EventRecord::new(60, Direction::Exit, "F"));
        let inst = t.pair_instances();
        assert_eq!(inst[0].end_ms, 60);
    }

    #[test]
    fn stray_exit_is_dropped_lenient_and_error_strict() {
        let mut t = EventTrace::new();
        t.push(EventRecord::new(10, Direction::Exit, "E"));
        assert!(t.pair_instances().is_empty());
        assert!(matches!(
            t.pair_instances_strict(),
            Err(TraceError::UnmatchedExit { .. })
        ));
    }

    #[test]
    fn validate_catches_out_of_order() {
        let mut t = EventTrace::new();
        t.push(EventRecord::new(10, Direction::Enter, "E"));
        t.push(EventRecord::new(5, Direction::Exit, "E"));
        assert_eq!(t.validate(), Err(TraceError::OutOfOrder { index: 1 }));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            EventTrace::from_log("not a log line"),
            Err(TraceError::ParseLine { line: 1, .. })
        ));
        assert!(matches!(
            EventTrace::from_log("123 ? LA;->x"),
            Err(TraceError::ParseLine { .. })
        ));
        assert!(matches!(
            EventTrace::from_log("123 +"),
            Err(TraceError::ParseLine { .. })
        ));
    }

    #[test]
    fn midpoint_is_within_interval() {
        let i = EventInstance::new("E", 10, 20);
        assert_eq!(i.midpoint_ms(), 15);
        let zero = EventInstance::new("E", 7, 7);
        assert_eq!(zero.midpoint_ms(), 7);
    }

    #[test]
    fn collect_and_extend() {
        let records = vec![
            EventRecord::new(1, Direction::Enter, "E"),
            EventRecord::new(2, Direction::Exit, "E"),
        ];
        let mut t: EventTrace = records.clone().into_iter().collect();
        t.extend(records);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn empty_log_parses_to_empty_trace() {
        let t = EventTrace::from_log("\n\n").unwrap();
        assert!(t.is_empty());
        assert!(t.pair_instances().is_empty());
    }
}
