//! Event-name interning: dense `u32` symbols for the analysis hot path.
//!
//! Event names repeat enormously — a fleet of traces uses a vocabulary
//! of dozens of names across millions of instances — yet the pipeline
//! historically carried a heap-allocated `String` per instance through
//! every analysis step. An [`EventInterner`] maps each distinct name to
//! a dense [`EventId`] once, at ingest; after that the hot path moves
//! only `u32`s and resolves names back to strings at the report/JSON
//! boundary.
//!
//! Interners from independently-processed shards are combined with
//! [`EventInterner::union`], which returns the merged vocabulary plus a
//! remap table for each side. The union is *canonical* — names sorted
//! ascending — so merging the same shards in any order yields the same
//! interner and the same ids. That is what keeps shard merging
//! commutative and lets partials be compared structurally.

use crate::join::PoweredInstance;
use std::collections::HashMap;

/// A dense symbol for an interned event name.
///
/// Ids are indices into the owning [`EventInterner`]; they are only
/// meaningful relative to that interner (or one derived from it via
/// [`EventInterner::union`] remapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u32);

impl EventId {
    /// The id as a dense table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense table index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    pub fn from_index(index: usize) -> Self {
        EventId(u32::try_from(index).expect("vocabulary exceeds u32"))
    }
}

/// A bidirectional map between event names and dense [`EventId`]s.
///
/// # Examples
///
/// ```
/// # use energydx_trace::intern::EventInterner;
/// let mut interner = EventInterner::new();
/// let a = interner.intern("onResume");
/// let b = interner.intern("onClick");
/// assert_eq!(interner.intern("onResume"), a);
/// assert_eq!(interner.resolve(a), "onResume");
/// assert_eq!(interner.resolve(b), "onClick");
/// assert_eq!(interner.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventInterner {
    /// Names by id; `names[id.index()]` is the interned string.
    names: Vec<String>,
    /// Reverse lookup from name to id.
    index: HashMap<String, u32>,
}

/// Equality is vocabulary equality: same names bound to the same ids.
/// (The reverse index is derived from `names`, so comparing names is
/// complete.)
impl PartialEq for EventInterner {
    fn eq(&self, other: &Self) -> bool {
        self.names == other.names
    }
}

impl Eq for EventInterner {}

impl EventInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, interning it if new.
    pub fn intern(&mut self, name: &str) -> EventId {
        if let Some(&id) = self.index.get(name) {
            return EventId(id);
        }
        let id =
            u32::try_from(self.names.len()).expect("vocabulary exceeds u32");
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        EventId(id)
    }

    /// Looks up `name` without interning.
    pub fn get(&self, name: &str) -> Option<EventId> {
        self.index.get(name).copied().map(EventId)
    }

    /// Resolves an id back to its name.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner (or one it was
    /// remapped into).
    pub fn resolve(&self, id: EventId) -> &str {
        &self.names[id.index()]
    }

    /// The number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The vocabulary in id order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Whether the vocabulary is in canonical (ascending name) order.
    pub fn is_canonical(&self) -> bool {
        self.names.windows(2).all(|w| w[0] < w[1])
    }

    /// Re-sorts the vocabulary into canonical (ascending name) order
    /// and returns the remap table: `remap[old_id] = new_id`.
    ///
    /// Canonical interners are what shard partials store, so that two
    /// shards covering the same vocabulary assign identical ids no
    /// matter the order names were first seen in.
    pub fn canonicalize(&mut self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.names.len() as u32).collect();
        order.sort_by(|&a, &b| {
            self.names[a as usize].cmp(&self.names[b as usize])
        });
        let mut remap = vec![0u32; self.names.len()];
        let mut sorted = Vec::with_capacity(self.names.len());
        for (new, &old) in order.iter().enumerate() {
            remap[old as usize] = new as u32;
            sorted.push(std::mem::take(&mut self.names[old as usize]));
        }
        self.names = sorted;
        self.index = rebuild_index(&self.names);
        remap
    }

    /// Merges two vocabularies into their canonical union.
    ///
    /// Returns `(union, remap_a, remap_b)` where `remap_x[old_id]` is
    /// the id of the same name in the union. The union is sorted, so
    /// `union(a, b)` and `union(b, a)` produce equal interners — the
    /// merge law shard combination relies on.
    pub fn union(a: &Self, b: &Self) -> (Self, Vec<u32>, Vec<u32>) {
        let mut names: Vec<String> =
            a.names.iter().chain(b.names.iter()).cloned().collect();
        names.sort_unstable();
        names.dedup();
        let index = rebuild_index(&names);
        let lookup = |side: &Self| -> Vec<u32> {
            side.names.iter().map(|n| index[n.as_str()]).collect()
        };
        let remap_a = lookup(a);
        let remap_b = lookup(b);
        (EventInterner { names, index }, remap_a, remap_b)
    }
}

fn rebuild_index(names: &[String]) -> HashMap<String, u32> {
    names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), i as u32))
        .collect()
}

/// A power trace in structure-of-arrays form: interned event ids and
/// power values, no per-instance strings.
///
/// This is the hot-path representation the sharded pipeline stores and
/// analyzes; `ids[i]` and `powers[i]` describe the `i`-th instance of
/// the trace in its original order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InternedTrace {
    ids: Vec<EventId>,
    powers: Vec<f64>,
}

impl InternedTrace {
    /// Interns a powered trace, growing `interner` as needed.
    pub fn from_powered(
        trace: &[PoweredInstance],
        interner: &mut EventInterner,
    ) -> Self {
        InternedTrace {
            ids: trace
                .iter()
                .map(|p| interner.intern(&p.instance.event))
                .collect(),
            powers: trace.iter().map(|p| p.power_mw).collect(),
        }
    }

    /// Interns a powered trace against a *complete* read-only
    /// vocabulary (every event name already interned).
    ///
    /// This is the parallel-safe variant: workers share an immutable
    /// interner built by a sequential vocabulary pre-scan.
    ///
    /// # Panics
    ///
    /// Panics if the trace contains a name absent from `interner`.
    pub fn from_powered_in(
        trace: &[PoweredInstance],
        interner: &EventInterner,
    ) -> Self {
        InternedTrace {
            ids: trace
                .iter()
                .map(|p| {
                    interner
                        .get(&p.instance.event)
                        .expect("vocabulary pre-scan covers every event")
                })
                .collect(),
            powers: trace.iter().map(|p| p.power_mw).collect(),
        }
    }

    /// Reassembles a trace from parallel id/power columns — the
    /// checkpoint-restore counterpart of [`InternedTrace::ids`] and
    /// [`InternedTrace::powers`]. Returns `None` when the columns
    /// differ in length; id validity against a vocabulary is the
    /// caller's to check (ids are only meaningful relative to an
    /// interner).
    pub fn from_columns(ids: Vec<EventId>, powers: Vec<f64>) -> Option<Self> {
        (ids.len() == powers.len()).then_some(InternedTrace { ids, powers })
    }

    /// The interned event ids, in instance order.
    pub fn ids(&self) -> &[EventId] {
        &self.ids
    }

    /// The power values, in instance order.
    pub fn powers(&self) -> &[f64] {
        &self.powers
    }

    /// The number of instances.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the trace has no instances.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Rewrites every id through `remap` (as returned by
    /// [`EventInterner::canonicalize`] or [`EventInterner::union`]).
    pub fn remap(&mut self, remap: &[u32]) {
        for id in &mut self.ids {
            *id = EventId(remap[id.index()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventInstance;

    fn powered(event: &str, mw: f64) -> PoweredInstance {
        PoweredInstance {
            instance: EventInstance::new(event, 0, 10),
            power_mw: mw,
        }
    }

    #[test]
    fn interning_is_idempotent() {
        let mut i = EventInterner::new();
        let a = i.intern("x");
        assert_eq!(i.intern("x"), a);
        assert_eq!(i.len(), 1);
        assert_eq!(i.get("x"), Some(a));
        assert_eq!(i.get("y"), None);
    }

    #[test]
    fn canonicalize_sorts_and_remaps() {
        let mut i = EventInterner::new();
        let c = i.intern("c");
        let a = i.intern("a");
        let b = i.intern("b");
        assert!(!i.is_canonical());
        let remap = i.canonicalize();
        assert!(i.is_canonical());
        assert_eq!(i.names(), ["a", "b", "c"]);
        assert_eq!(remap[c.index()], 2);
        assert_eq!(remap[a.index()], 0);
        assert_eq!(remap[b.index()], 1);
        // Lookups agree with the new layout.
        assert_eq!(i.get("a"), Some(EventId::from_index(0)));
        assert_eq!(i.resolve(EventId::from_index(2)), "c");
    }

    #[test]
    fn union_is_commutative() {
        let mut a = EventInterner::new();
        a.intern("m");
        a.intern("a");
        let mut b = EventInterner::new();
        b.intern("z");
        b.intern("m");
        let (ab, ra, rb) = EventInterner::union(&a, &b);
        let (ba, rb2, ra2) = EventInterner::union(&b, &a);
        assert_eq!(ab, ba);
        assert_eq!(ra, ra2);
        assert_eq!(rb, rb2);
        assert_eq!(ab.names(), ["a", "m", "z"]);
        // "m" maps to the same union id from both sides.
        assert_eq!(ra[a.get("m").unwrap().index()], 1);
        assert_eq!(rb[b.get("m").unwrap().index()], 1);
    }

    #[test]
    fn union_with_empty_is_canonicalization() {
        let mut a = EventInterner::new();
        a.intern("b");
        a.intern("a");
        let (u, remap_a, remap_empty) =
            EventInterner::union(&a, &EventInterner::new());
        assert_eq!(u.names(), ["a", "b"]);
        assert_eq!(remap_a, vec![1, 0]);
        assert!(remap_empty.is_empty());
    }

    #[test]
    fn interned_trace_round_trips_names_and_powers() {
        let trace =
            vec![powered("b", 1.0), powered("a", 2.0), powered("b", 3.0)];
        let mut interner = EventInterner::new();
        let it = InternedTrace::from_powered(&trace, &mut interner);
        assert_eq!(it.len(), 3);
        assert_eq!(it.powers(), [1.0, 2.0, 3.0]);
        let names: Vec<&str> =
            it.ids().iter().map(|&id| interner.resolve(id)).collect();
        assert_eq!(names, ["b", "a", "b"]);
        // The read-only variant agrees once the vocabulary is known.
        assert_eq!(InternedTrace::from_powered_in(&trace, &interner), it);
    }

    #[test]
    fn remap_follows_canonicalization() {
        let trace = vec![powered("b", 1.0), powered("a", 2.0)];
        let mut interner = EventInterner::new();
        let mut it = InternedTrace::from_powered(&trace, &mut interner);
        let remap = interner.canonicalize();
        it.remap(&remap);
        let names: Vec<&str> =
            it.ids().iter().map(|&id| interner.resolve(id)).collect();
        assert_eq!(names, ["b", "a"]);
    }
}
