//! Removal of user identifiers from traces before upload.
//!
//! The paper notes that "the traces collected by EnergyDx are
//! preprocessed to remove any user identities, such as phone numbers or
//! IP addresses" (§II-B). Event identifiers are class/method names, but
//! apps occasionally embed dynamic strings (an account name in an
//! activity title, an IP in a service tag), so the scrubber runs over
//! every string payload of a bundle.
//!
//! Three identifier shapes are recognized without a regex engine:
//! IPv4 addresses, email addresses, and phone numbers (7+ digit runs,
//! optionally with separators and a leading `+`).

/// Replaces every recognized identifier in `input` with `<redacted>`.
///
/// # Examples
///
/// ```
/// # use energydx_trace::anonymize::scrub;
/// assert_eq!(scrub("connect to 192.168.1.17 now"), "connect to <redacted> now");
/// assert_eq!(scrub("user bob@example.com logged"), "user <redacted> logged");
/// assert_eq!(scrub("call +1-614-555-0100 ok"), "call <redacted> ok");
/// assert_eq!(scrub("Lcom/fsck/k9/K9Activity;->onResume"), "Lcom/fsck/k9/K9Activity;->onResume");
/// ```
pub fn scrub(input: &str) -> String {
    // Token-wise scan keeps class names (which contain digits and
    // slashes but never '@' or dotted-quad shapes) intact.
    let mut out = String::with_capacity(input.len());
    let mut first = true;
    for token in input.split(' ') {
        if !first {
            out.push(' ');
        }
        first = false;
        if is_identifier_token(token) {
            out.push_str("<redacted>");
        } else {
            out.push_str(token);
        }
    }
    out
}

/// Whether the whole string is free of recognizable identifiers.
pub fn is_clean(input: &str) -> bool {
    input.split(' ').all(|t| !is_identifier_token(t))
}

fn is_identifier_token(token: &str) -> bool {
    is_ipv4(token) || is_email(token) || is_phone(token)
}

fn is_ipv4(token: &str) -> bool {
    let parts: Vec<&str> = token.split('.').collect();
    parts.len() == 4
        && parts.iter().all(|p| {
            !p.is_empty()
                && p.len() <= 3
                && p.chars().all(|c| c.is_ascii_digit())
                && {
                    // Leading zeros allowed; value must fit an octet.
                    p.parse::<u16>().map(|v| v <= 255).unwrap_or(false)
                }
        })
}

fn is_email(token: &str) -> bool {
    let Some((local, domain)) = token.split_once('@') else {
        return false;
    };
    if local.is_empty() || domain.is_empty() || domain.contains('@') {
        return false;
    }
    let Some((host, tld)) = domain.rsplit_once('.') else {
        return false;
    };
    !host.is_empty()
        && tld.len() >= 2
        && tld.chars().all(|c| c.is_ascii_alphabetic())
        && local.chars().all(|c| {
            c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-' | '+')
        })
}

fn is_phone(token: &str) -> bool {
    let stripped = token.strip_prefix('+').unwrap_or(token);
    if stripped.is_empty() {
        return false;
    }
    let mut digits = 0usize;
    for c in stripped.chars() {
        match c {
            d if d.is_ascii_digit() => digits += 1,
            '-' | '(' | ')' | '.' => {}
            _ => return false,
        }
    }
    // Dotted quads are IPs, not phones; is_ipv4 already catches them,
    // but a phone needs at least 7 digits either way.
    digits >= 7
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_detection() {
        assert!(is_ipv4("10.0.0.1"));
        assert!(is_ipv4("255.255.255.255"));
        assert!(!is_ipv4("256.1.1.1"));
        assert!(!is_ipv4("1.2.3"));
        assert!(!is_ipv4("1.2.3.4.5"));
        assert!(!is_ipv4("a.b.c.d"));
    }

    #[test]
    fn email_detection() {
        assert!(is_email("alice@example.com"));
        assert!(is_email("a.b-c+tag@mail.example.org"));
        assert!(!is_email("not-an-email"));
        assert!(!is_email("@example.com"));
        assert!(!is_email("alice@"));
        assert!(!is_email("alice@example"));
        assert!(!is_email("alice@@example.com"));
    }

    #[test]
    fn phone_detection() {
        assert!(is_phone("6145550100"));
        assert!(is_phone("+1-614-555-0100"));
        assert!(is_phone("(614)555-0100"));
        assert!(!is_phone("12345")); // too short
        assert!(!is_phone("v12")); // register name
        assert!(!is_phone("28223867x")); // trailing junk
    }

    #[test]
    fn scrub_replaces_only_identifier_tokens() {
        let s = scrub("sync 10.1.2.3 for bob@example.com at +16145550100 done");
        assert_eq!(s, "sync <redacted> for <redacted> at <redacted> done");
    }

    #[test]
    fn event_identifiers_survive_scrubbing() {
        let e = "Lcom/fsck/k9/activity/setup/AccountSettings;->onResume";
        assert_eq!(scrub(e), e);
        assert!(is_clean(e));
    }

    #[test]
    fn timestamps_survive_scrubbing() {
        // A bare large number is indistinguishable from a phone number,
        // but timestamps in our logs are the first space-separated token
        // of a *record*, not arbitrary payload — the store only scrubs
        // event identifier strings, never the numeric fields. Within a
        // payload string, an 8-digit run is treated as a phone number,
        // which is the conservative (privacy-preserving) choice.
        assert_eq!(scrub("28223867"), "<redacted>");
    }

    #[test]
    fn is_clean_detects_dirty_strings() {
        assert!(!is_clean("leak 192.168.0.1 here"));
        assert!(is_clean("nothing to see"));
    }
}
