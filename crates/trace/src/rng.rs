//! Crate-internal seeded RNG (SplitMix64).
//!
//! The fault injector and the flaky upload backend both need cheap,
//! replayable randomness; keeping a local generator avoids pulling a
//! full RNG crate into the library's dependency set.

/// SplitMix64: tiny, seedable, and statistically fine for picking
/// fault sites and jitter.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub(crate) fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform draw in `[0, 1)`.
    pub(crate) fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
