//! The backend trace store.
//!
//! After instrumented apps upload their bundles, the EnergyDx backend
//! aggregates traces "collected from different users under various
//! contexts" (§I) before running the manifestation analysis. The store
//! is thread-safe: the collection server ingests bundles from many
//! connections concurrently ([`TraceStore::ingest_concurrently`] models
//! this with one thread per upload batch).

use crate::anonymize;
use crate::error::TraceError;
use crate::event::EventTrace;
use crate::util::UtilizationTrace;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One uploaded session: who, which session, which device, plus the
/// two raw traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceBundle {
    /// Pseudonymous user id (assigned at install; never a phone number).
    pub user: String,
    /// Per-user session counter.
    pub session: u64,
    /// Device profile name, used for power-model scaling.
    pub device: String,
    /// The event trace.
    pub events: EventTrace,
    /// The utilization trace.
    pub utilization: UtilizationTrace,
}

impl TraceBundle {
    /// Creates an empty bundle.
    pub fn new(user: impl Into<String>, session: u64, device: impl Into<String>) -> Self {
        TraceBundle {
            user: user.into(),
            session,
            device: device.into(),
            events: EventTrace::new(),
            utilization: UtilizationTrace::new(),
        }
    }

    /// Scrubs user identifiers from every string payload (§II-B
    /// preprocessing). Event identifiers are class/method names and
    /// survive unchanged; embedded IPs/emails/phone numbers do not.
    pub fn anonymize(&mut self) {
        self.user = anonymize::scrub(&self.user);
        let records: Vec<_> = self
            .events
            .records()
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.event = anonymize::scrub(&r.event);
                r
            })
            .collect();
        self.events = records.into_iter().collect();
    }

    /// Validates internal consistency (timestamp ordering of the event
    /// trace and strict enter/exit pairing).
    ///
    /// # Errors
    ///
    /// Propagates [`TraceError::OutOfOrder`] /
    /// [`TraceError::UnmatchedExit`].
    pub fn validate(&self) -> Result<(), TraceError> {
        self.events.validate()?;
        self.events.pair_instances_strict()?;
        Ok(())
    }
}

/// Thread-safe collection of uploaded bundles.
#[derive(Debug, Default)]
pub struct TraceStore {
    bundles: RwLock<Vec<TraceBundle>>,
}

impl TraceStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        TraceStore::default()
    }

    /// Ingests one bundle: anonymizes, validates, stores.
    ///
    /// # Errors
    ///
    /// Rejects bundles that fail [`TraceBundle::validate`]; rejected
    /// bundles are not stored.
    pub fn ingest(&self, mut bundle: TraceBundle) -> Result<(), TraceError> {
        bundle.anonymize();
        bundle.validate()?;
        self.bundles.write().push(bundle);
        Ok(())
    }

    /// Ingests many upload batches concurrently, one thread per batch,
    /// as the collection server would. Returns the number of accepted
    /// bundles.
    pub fn ingest_concurrently(self: &Arc<Self>, batches: Vec<Vec<TraceBundle>>) -> usize {
        let accepted = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for batch in batches {
                let store = Arc::clone(self);
                let accepted = Arc::clone(&accepted);
                scope.spawn(move || {
                    for bundle in batch {
                        if store.ingest(bundle).is_ok() {
                            accepted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        accepted.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of stored bundles.
    pub fn len(&self) -> usize {
        self.bundles.read().len()
    }

    /// Whether the store holds no bundles.
    pub fn is_empty(&self) -> bool {
        self.bundles.read().is_empty()
    }

    /// Snapshot of all bundles, sorted by `(user, session)` so analysis
    /// input order is deterministic regardless of upload interleaving.
    pub fn snapshot(&self) -> Vec<TraceBundle> {
        let mut v = self.bundles.read().clone();
        v.sort_by(|a, b| (&a.user, a.session).cmp(&(&b.user, b.session)));
        v
    }

    /// Distinct users that have uploaded at least one bundle.
    pub fn users(&self) -> Vec<String> {
        let mut users: Vec<String> = self
            .bundles
            .read()
            .iter()
            .map(|b| b.user.clone())
            .collect();
        users.sort();
        users.dedup();
        users
    }
}

/// The phone conditions the uploader gates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PhoneState {
    /// Whether the phone is charging.
    pub charging: bool,
    /// Whether the phone is on WiFi.
    pub on_wifi: bool,
}

impl PhoneState {
    /// The §II-B upload condition: "when the smartphone is in charge
    /// with WiFi ... the transmission process does not impact the
    /// normal usage of smartphone".
    pub fn may_upload(&self) -> bool {
        self.charging && self.on_wifi
    }
}

/// The phone-side upload queue: bundles accumulate locally and drain
/// to the backend only when the phone is charging on WiFi.
#[derive(Debug, Default)]
pub struct Uploader {
    queue: Vec<TraceBundle>,
}

impl Uploader {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Uploader::default()
    }

    /// Queues a finished session's bundle for later upload.
    pub fn enqueue(&mut self, bundle: TraceBundle) {
        self.queue.push(bundle);
    }

    /// Bundles waiting on the phone.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Attempts to drain the queue into the store. Uploads happen only
    /// when [`PhoneState::may_upload`]; bundles the store rejects
    /// (failed validation) are dropped, matching a server that
    /// discards corrupt uploads. Returns how many bundles the store
    /// accepted.
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_trace::store::{PhoneState, TraceBundle, TraceStore, Uploader};
    /// let store = TraceStore::new();
    /// let mut up = Uploader::new();
    /// up.enqueue(TraceBundle::new("u", 0, "nexus6"));
    /// // On battery: nothing moves.
    /// assert_eq!(up.try_upload(PhoneState { charging: false, on_wifi: true }, &store), 0);
    /// assert_eq!(up.pending(), 1);
    /// // Plugged in on WiFi: the queue drains.
    /// assert_eq!(up.try_upload(PhoneState { charging: true, on_wifi: true }, &store), 1);
    /// assert_eq!(up.pending(), 0);
    /// ```
    pub fn try_upload(&mut self, state: PhoneState, store: &TraceStore) -> usize {
        if !state.may_upload() {
            return 0;
        }
        let mut accepted = 0;
        for bundle in self.queue.drain(..) {
            if store.ingest(bundle).is_ok() {
                accepted += 1;
            }
        }
        accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Direction, EventRecord};

    fn bundle(user: &str, session: u64) -> TraceBundle {
        let mut b = TraceBundle::new(user, session, "nexus6");
        b.events
            .push(EventRecord::new(10, Direction::Enter, "LA;->onResume"));
        b.events
            .push(EventRecord::new(20, Direction::Exit, "LA;->onResume"));
        b
    }

    #[test]
    fn ingest_accepts_valid_bundles() {
        let store = TraceStore::new();
        store.ingest(bundle("u1", 0)).unwrap();
        store.ingest(bundle("u1", 1)).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.users(), vec!["u1".to_string()]);
    }

    #[test]
    fn ingest_rejects_out_of_order_bundle() {
        let store = TraceStore::new();
        let mut b = bundle("u1", 0);
        b.events.push(EventRecord::new(5, Direction::Enter, "LB;->onClick"));
        assert!(store.ingest(b).is_err());
        assert!(store.is_empty());
    }

    #[test]
    fn ingest_rejects_unmatched_exit() {
        let store = TraceStore::new();
        let mut b = TraceBundle::new("u1", 0, "nexus6");
        b.events.push(EventRecord::new(5, Direction::Exit, "LB;->onClick"));
        assert!(store.ingest(b).is_err());
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let store = TraceStore::new();
        store.ingest(bundle("u2", 0)).unwrap();
        store.ingest(bundle("u1", 1)).unwrap();
        store.ingest(bundle("u1", 0)).unwrap();
        let snap = store.snapshot();
        let keys: Vec<(String, u64)> =
            snap.iter().map(|b| (b.user.clone(), b.session)).collect();
        assert_eq!(
            keys,
            vec![
                ("u1".to_string(), 0),
                ("u1".to_string(), 1),
                ("u2".to_string(), 0)
            ]
        );
    }

    #[test]
    fn ingest_anonymizes_payloads() {
        let store = TraceStore::new();
        let mut b = TraceBundle::new("u1", 0, "nexus6");
        b.events.push(EventRecord::new(
            10,
            Direction::Enter,
            "LA;->connect 192.168.0.9",
        ));
        b.events.push(EventRecord::new(
            20,
            Direction::Exit,
            "LA;->connect 192.168.0.9",
        ));
        store.ingest(b).unwrap();
        let snap = store.snapshot();
        assert!(snap[0].events.records()[0].event.contains("<redacted>"));
    }

    #[test]
    fn concurrent_ingest_accepts_all_valid_bundles() {
        let store = Arc::new(TraceStore::new());
        let batches: Vec<Vec<TraceBundle>> = (0..8)
            .map(|u| (0..25).map(|s| bundle(&format!("user-{u}"), s)).collect())
            .collect();
        let accepted = store.ingest_concurrently(batches);
        assert_eq!(accepted, 200);
        assert_eq!(store.len(), 200);
        assert_eq!(store.users().len(), 8);
    }

    #[test]
    fn uploader_gates_on_charging_and_wifi() {
        let store = TraceStore::new();
        let mut up = Uploader::new();
        up.enqueue(bundle("u1", 0));
        up.enqueue(bundle("u1", 1));
        for state in [
            PhoneState { charging: false, on_wifi: false },
            PhoneState { charging: true, on_wifi: false },
            PhoneState { charging: false, on_wifi: true },
        ] {
            assert_eq!(up.try_upload(state, &store), 0);
            assert_eq!(up.pending(), 2);
        }
        assert_eq!(
            up.try_upload(PhoneState { charging: true, on_wifi: true }, &store),
            2
        );
        assert_eq!(up.pending(), 0);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn uploader_drops_invalid_bundles_on_drain() {
        let store = TraceStore::new();
        let mut up = Uploader::new();
        let mut bad = TraceBundle::new("bad", 0, "nexus6");
        bad.events.push(EventRecord::new(5, Direction::Exit, "LA;->x"));
        up.enqueue(bad);
        up.enqueue(bundle("ok", 0));
        let accepted = up.try_upload(
            PhoneState { charging: true, on_wifi: true },
            &store,
        );
        assert_eq!(accepted, 1);
        assert_eq!(up.pending(), 0);
    }

    #[test]
    fn concurrent_ingest_counts_only_valid() {
        let store = Arc::new(TraceStore::new());
        let mut bad = TraceBundle::new("bad", 0, "nexus6");
        bad.events.push(EventRecord::new(5, Direction::Exit, "LA;->x"));
        let accepted = store.ingest_concurrently(vec![vec![bundle("ok", 0)], vec![bad]]);
        assert_eq!(accepted, 1);
        assert_eq!(store.len(), 1);
    }
}
