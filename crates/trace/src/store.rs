//! The backend trace store.
//!
//! After instrumented apps upload their bundles, the EnergyDx backend
//! aggregates traces "collected from different users under various
//! contexts" (§I) before running the manifestation analysis. The store
//! is thread-safe: the collection server ingests bundles from many
//! connections concurrently ([`TraceStore::ingest_concurrently`] models
//! this with one thread per upload batch).
//!
//! Ingestion is corruption-aware. Every upload lands in exactly one
//! bucket of the [`IngestOutcome`] taxonomy:
//!
//! - **Clean** — decoded, validated, stored verbatim.
//! - **Recovered** — stored after a bounded repair
//!   ([`crate::repair`]) and/or a partial salvage of a damaged wire
//!   payload ([`crate::wire::decode_salvage`]).
//! - **Rejected** — quarantined with a [`RejectReason`]; the
//!   quarantine keeps per-reason counters so operators can see *what*
//!   the fleet's failure modes are, not just a drop count.

use crate::anonymize;
use crate::error::TraceError;
use crate::event::EventTrace;
use crate::repair::{repair, RepairAction, RepairPolicy};
use crate::util::UtilizationTrace;
use crate::wire::{self, SalvageReport};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// One uploaded session: who, which session, which device, plus the
/// two raw traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceBundle {
    /// Pseudonymous user id (assigned at install; never a phone number).
    pub user: String,
    /// Per-user session counter.
    pub session: u64,
    /// Device profile name, used for power-model scaling.
    pub device: String,
    /// App release the session ran under (`""` when the uploader
    /// predates versioned uploads — wire v1/v2 payloads decode to the
    /// implicit unversioned release).
    #[serde(default)]
    pub app_version: String,
    /// The event trace.
    pub events: EventTrace,
    /// The utilization trace.
    pub utilization: UtilizationTrace,
}

impl TraceBundle {
    /// Creates an empty bundle.
    pub fn new(
        user: impl Into<String>,
        session: u64,
        device: impl Into<String>,
    ) -> Self {
        TraceBundle {
            user: user.into(),
            session,
            device: device.into(),
            app_version: String::new(),
            events: EventTrace::new(),
            utilization: UtilizationTrace::new(),
        }
    }

    /// Stamps the bundle with the app release it was recorded under.
    pub fn with_app_version(mut self, version: impl Into<String>) -> Self {
        self.app_version = version.into();
        self
    }

    /// Scrubs user identifiers from every string payload (§II-B
    /// preprocessing). Event identifiers are class/method names and
    /// survive unchanged; embedded IPs/emails/phone numbers do not.
    pub fn anonymize(&mut self) {
        self.user = anonymize::scrub(&self.user);
        let records: Vec<_> = self
            .events
            .records()
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.event = anonymize::scrub(&r.event);
                r
            })
            .collect();
        self.events = records.into_iter().collect();
    }

    /// Validates internal consistency (timestamp ordering of the
    /// event *and* utilization traces, strict enter/exit pairing).
    ///
    /// # Errors
    ///
    /// Propagates [`TraceError::OutOfOrder`] /
    /// [`TraceError::UnmatchedExit`].
    pub fn validate(&self) -> Result<(), TraceError> {
        self.events.validate()?;
        self.events.pair_instances_strict()?;
        // The power model walks utilization samples in order; a
        // disordered sample that slipped past repair must quarantine
        // here, not corrupt every downstream power estimate.
        let samples = self.utilization.samples();
        for (index, pair) in samples.windows(2).enumerate() {
            if pair[1].timestamp_ms < pair[0].timestamp_ms {
                return Err(TraceError::OutOfOrder { index: index + 1 });
            }
        }
        Ok(())
    }
}

/// Why an upload was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RejectReason {
    /// The wire payload could not be decoded at all (bad magic,
    /// unsupported version, or an unrecoverable identity header).
    Undecodable,
    /// Records were displaced beyond the repair policy's
    /// out-of-order bound.
    OutOfOrderBeyondRepair,
    /// More unmatched exit records than the repair policy allows.
    UnmatchedBeyondRepair,
    /// A bundle for this `(user, session)` was already accepted.
    Duplicate,
    /// The bundle failed validation in a way repair does not cover.
    Invalid,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RejectReason::Undecodable => "undecodable",
            RejectReason::OutOfOrderBeyondRepair => {
                "out-of-order-beyond-repair"
            }
            RejectReason::UnmatchedBeyondRepair => "unmatched-beyond-repair",
            RejectReason::Duplicate => "duplicate",
            RejectReason::Invalid => "invalid",
        })
    }
}

/// The result of ingesting one upload.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestOutcome {
    /// Stored verbatim.
    Clean,
    /// Stored after repair and/or salvage.
    Recovered {
        /// Repairs applied to the decoded bundle.
        repairs: Vec<RepairAction>,
        /// Wire-level salvage report, when the payload needed one.
        salvage: Option<SalvageReport>,
    },
    /// Quarantined, not stored.
    Rejected(RejectReason),
}

impl IngestOutcome {
    /// Whether the bundle made it into the store.
    pub fn accepted(&self) -> bool {
        !matches!(self, IngestOutcome::Rejected(_))
    }
}

/// One quarantined upload.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineEntry {
    /// Why it was rejected.
    pub reason: RejectReason,
    /// User id, when the payload decoded far enough to know it.
    pub user: Option<String>,
    /// Session id, when known.
    pub session: Option<u64>,
    /// Human-readable detail (the underlying error).
    pub detail: String,
}

/// Per-bundle outcomes of a concurrent ingest, batch structure
/// preserved.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestReport {
    /// `outcomes[i][j]` is the outcome of batch `i`'s `j`-th upload.
    pub outcomes: Vec<Vec<IngestOutcome>>,
}

impl IngestReport {
    /// Iterates over all outcomes, across batches.
    pub fn iter(&self) -> impl Iterator<Item = &IngestOutcome> {
        self.outcomes.iter().flatten()
    }

    /// Uploads that made it into the store (clean or recovered).
    pub fn accepted(&self) -> usize {
        self.iter().filter(|o| o.accepted()).count()
    }

    /// Uploads stored verbatim.
    pub fn clean(&self) -> usize {
        self.iter()
            .filter(|o| matches!(o, IngestOutcome::Clean))
            .count()
    }

    /// Uploads stored after repair/salvage.
    pub fn recovered(&self) -> usize {
        self.iter()
            .filter(|o| matches!(o, IngestOutcome::Recovered { .. }))
            .count()
    }

    /// Uploads quarantined.
    pub fn rejected(&self) -> usize {
        self.iter()
            .filter(|o| matches!(o, IngestOutcome::Rejected(_)))
            .count()
    }

    /// Total uploads processed.
    pub fn total(&self) -> usize {
        self.iter().count()
    }
}

/// A wire upload after the full decode → salvage → anonymize →
/// repair → validate pipeline, *before* dedup and commit.
///
/// This is the reusable half of ingestion: [`TraceStore`] and the
/// fleet daemon share it, so a payload that salvages (or quarantines)
/// one way in the batch store salvages exactly the same way in the
/// incremental path. What differs between consumers is only where the
/// dedup set and the accepted bundle live.
#[derive(Debug, Clone, PartialEq)]
pub enum PreparedUpload {
    /// Decoded, anonymized, repaired, and validated — ready to dedup
    /// and store.
    Ready {
        /// The bundle as it would be stored.
        bundle: TraceBundle,
        /// Repairs applied to the decoded bundle.
        repairs: Vec<RepairAction>,
        /// Wire-level salvage report, when the payload needed one.
        salvage: Option<SalvageReport>,
    },
    /// Rejected before reaching the store; the entry says why.
    Rejected(QuarantineEntry),
}

impl PreparedUpload {
    /// The outcome this preparation maps to, pre-dedup: `Ready` is
    /// clean or recovered, `Rejected` carries its reason.
    pub fn outcome(&self) -> IngestOutcome {
        match self {
            PreparedUpload::Ready {
                repairs, salvage, ..
            } => {
                if repairs.is_empty() && salvage.is_none() {
                    IngestOutcome::Clean
                } else {
                    IngestOutcome::Recovered {
                        repairs: repairs.clone(),
                        salvage: salvage.clone(),
                    }
                }
            }
            PreparedUpload::Rejected(entry) => {
                IngestOutcome::Rejected(entry.reason)
            }
        }
    }
}

/// Runs one wire payload through decode → salvage → anonymize →
/// repair → validate. Pure: no store, no dedup, deterministic in the
/// payload and policy alone.
pub fn prepare_wire(payload: &[u8], policy: &RepairPolicy) -> PreparedUpload {
    match wire::decode(payload) {
        Ok(bundle) => prepare_decoded(bundle, None, policy),
        Err(_) => match wire::decode_salvage(payload) {
            Ok(salvaged) => {
                prepare_decoded(salvaged.bundle, Some(salvaged.report), policy)
            }
            Err(e) => PreparedUpload::Rejected(QuarantineEntry {
                reason: RejectReason::Undecodable,
                user: None,
                session: None,
                detail: e.to_string(),
            }),
        },
    }
}

/// Runs one already-decoded bundle through anonymize → repair →
/// validate (the wire-less variant of [`prepare_wire`]).
pub fn prepare_bundle(
    bundle: TraceBundle,
    policy: &RepairPolicy,
) -> PreparedUpload {
    prepare_decoded(bundle, None, policy)
}

fn prepare_decoded(
    mut bundle: TraceBundle,
    salvage: Option<SalvageReport>,
    policy: &RepairPolicy,
) -> PreparedUpload {
    bundle.anonymize();
    let reject =
        |bundle: &TraceBundle, reason: RejectReason, detail: String| {
            PreparedUpload::Rejected(QuarantineEntry {
                reason,
                user: Some(bundle.user.clone()),
                session: Some(bundle.session),
                detail,
            })
        };
    let repairs = match repair(&mut bundle, policy) {
        Ok(actions) => actions,
        Err(e) => {
            let reason = match e {
                crate::repair::RepairReject::OutOfOrderBeyondBound {
                    ..
                } => RejectReason::OutOfOrderBeyondRepair,
                crate::repair::RepairReject::TooManyStrayExits { .. } => {
                    RejectReason::UnmatchedBeyondRepair
                }
            };
            return reject(&bundle, reason, e.to_string());
        }
    };
    // Repair guarantees validity; keep the check as a backstop so a
    // policy bug quarantines instead of poisoning analysis.
    if let Err(e) = bundle.validate() {
        return reject(&bundle, RejectReason::Invalid, e.to_string());
    }
    PreparedUpload::Ready {
        bundle,
        repairs,
        salvage: salvage.filter(|s| !s.is_intact()),
    }
}

/// Thread-safe collection of uploaded bundles.
#[derive(Debug, Default)]
pub struct TraceStore {
    bundles: RwLock<Vec<TraceBundle>>,
    /// `(user, session)` keys already accepted, for retry dedup.
    seen: RwLock<HashSet<(String, u64)>>,
    quarantine: RwLock<Vec<QuarantineEntry>>,
    policy: RepairPolicy,
}

impl TraceStore {
    /// Creates an empty store with the default [`RepairPolicy`].
    pub fn new() -> Self {
        TraceStore::default()
    }

    /// Creates an empty store with a custom repair policy.
    pub fn with_policy(policy: RepairPolicy) -> Self {
        TraceStore {
            policy,
            ..TraceStore::default()
        }
    }

    /// Ingests one bundle strictly: anonymizes, validates, dedups,
    /// stores. No repair is attempted — this is the legacy path for
    /// callers that want validation failures surfaced as errors.
    ///
    /// # Errors
    ///
    /// Rejects bundles that fail [`TraceBundle::validate`] or that
    /// duplicate an already-accepted `(user, session)`; rejected
    /// bundles are quarantined, not stored.
    pub fn ingest(&self, mut bundle: TraceBundle) -> Result<(), TraceError> {
        bundle.anonymize();
        if let Err(e) = bundle.validate() {
            let reason = match &e {
                TraceError::OutOfOrder { .. } => {
                    RejectReason::OutOfOrderBeyondRepair
                }
                TraceError::UnmatchedExit { .. } => {
                    RejectReason::UnmatchedBeyondRepair
                }
                _ => RejectReason::Invalid,
            };
            self.quarantine_bundle(&bundle, reason, e.to_string());
            return Err(e);
        }
        self.commit(bundle).map_err(|dup| {
            let (bundle, _) = *dup;
            let e = TraceError::DuplicateUpload {
                user: bundle.user.clone(),
                session: bundle.session,
            };
            self.quarantine_bundle(
                &bundle,
                RejectReason::Duplicate,
                e.to_string(),
            );
            e
        })
    }

    /// Ingests one bundle resiliently: anonymizes, repairs within the
    /// store's [`RepairPolicy`], dedups, stores. Never panics, never
    /// errors — every possible input maps to an [`IngestOutcome`].
    pub fn ingest_bundle(&self, bundle: TraceBundle) -> IngestOutcome {
        self.apply_prepared(prepare_bundle(bundle, &self.policy))
    }

    /// Ingests one wire payload resiliently: strict decode first, then
    /// salvage of whatever valid prefix remains, then repair. This is
    /// the path fleet uploads take.
    pub fn ingest_wire(&self, payload: &[u8]) -> IngestOutcome {
        self.apply_prepared(prepare_wire(payload, &self.policy))
    }

    /// Commits a prepared upload: dedups `Ready` bundles on
    /// `(user, session)`, quarantines everything else.
    fn apply_prepared(&self, prepared: PreparedUpload) -> IngestOutcome {
        let outcome = prepared.outcome();
        match prepared {
            PreparedUpload::Ready { bundle, .. } => match self.commit(bundle) {
                Ok(()) => outcome,
                Err(dup) => {
                    let (bundle, detail) = *dup;
                    self.quarantine_bundle(
                        &bundle,
                        RejectReason::Duplicate,
                        detail,
                    );
                    IngestOutcome::Rejected(RejectReason::Duplicate)
                }
            },
            PreparedUpload::Rejected(entry) => {
                self.push_quarantine(entry);
                outcome
            }
        }
    }

    /// Atomically claims the `(user, session)` key and stores the
    /// bundle; gives the bundle back on a duplicate.
    fn commit(
        &self,
        bundle: TraceBundle,
    ) -> Result<(), Box<(TraceBundle, String)>> {
        let key = (bundle.user.clone(), bundle.session);
        if !self.seen.write().insert(key) {
            let detail = format!(
                "session {} for user {} already accepted",
                bundle.session, bundle.user
            );
            return Err(Box::new((bundle, detail)));
        }
        self.bundles.write().push(bundle);
        Ok(())
    }

    fn quarantine_bundle(
        &self,
        bundle: &TraceBundle,
        reason: RejectReason,
        detail: String,
    ) {
        self.push_quarantine(QuarantineEntry {
            reason,
            user: Some(bundle.user.clone()),
            session: Some(bundle.session),
            detail,
        });
    }

    fn push_quarantine(&self, entry: QuarantineEntry) {
        self.quarantine.write().push(entry);
    }

    /// Ingests many upload batches concurrently, one thread per batch,
    /// as the collection server would. Returns every bundle's
    /// [`IngestOutcome`], batch structure preserved.
    pub fn ingest_concurrently(
        self: &Arc<Self>,
        batches: Vec<Vec<TraceBundle>>,
    ) -> IngestReport {
        self.ingest_batches(batches, |store, bundle| {
            store.ingest_bundle(bundle)
        })
    }

    /// Wire-payload variant of [`TraceStore::ingest_concurrently`].
    pub fn ingest_wire_concurrently(
        self: &Arc<Self>,
        batches: Vec<Vec<Vec<u8>>>,
    ) -> IngestReport {
        self.ingest_batches(batches, |store, payload| {
            store.ingest_wire(&payload)
        })
    }

    fn ingest_batches<T>(
        self: &Arc<Self>,
        batches: Vec<T>,
        ingest_one: impl Fn(&TraceStore, <T as IntoIterator>::Item) -> IngestOutcome
            + Send
            + Copy,
    ) -> IngestReport
    where
        T: IntoIterator + Send,
        <T as IntoIterator>::Item: Send,
    {
        let mut slots: Vec<Vec<IngestOutcome>> =
            Vec::with_capacity(batches.len());
        slots.resize_with(batches.len(), Vec::new);
        std::thread::scope(|scope| {
            for (batch, slot) in batches.into_iter().zip(slots.iter_mut()) {
                let store = Arc::clone(self);
                scope.spawn(move || {
                    *slot = batch
                        .into_iter()
                        .map(|item| ingest_one(&store, item))
                        .collect();
                });
            }
        });
        IngestReport { outcomes: slots }
    }

    /// Number of stored bundles.
    pub fn len(&self) -> usize {
        self.bundles.read().len()
    }

    /// Whether the store holds no bundles.
    pub fn is_empty(&self) -> bool {
        self.bundles.read().is_empty()
    }

    /// Snapshot of all bundles, sorted by `(user, session)` so analysis
    /// input order is deterministic regardless of upload interleaving.
    pub fn snapshot(&self) -> Vec<TraceBundle> {
        let mut v = self.bundles.read().clone();
        v.sort_by(|a, b| (&a.user, a.session).cmp(&(&b.user, b.session)));
        v
    }

    /// Snapshot of all bundles in first-accept order — the order a
    /// resident daemon folds uploads into its partial (a resend of an
    /// already-stored `(user, session)` keeps the original position).
    /// This is the batch side of a daemon/batch byte-diff: feeding
    /// payloads to both in the same order must produce the same fleet.
    pub fn snapshot_accept_order(&self) -> Vec<TraceBundle> {
        self.bundles.read().clone()
    }

    /// Snapshot of all bundles split into at most `shards` balanced,
    /// contiguous, **owned** shards in [`TraceStore::snapshot`] order.
    /// Each shard can be shipped to an analysis worker independently;
    /// concatenating the shards reproduces the snapshot exactly, so a
    /// shard-mapped analysis sees the same fleet in the same order as a
    /// sequential one.
    pub fn snapshot_shards(&self, shards: usize) -> Vec<Vec<TraceBundle>> {
        if shards == 0 {
            return Vec::new();
        }
        let snapshot = self.snapshot();
        let len = snapshot.len();
        if len == 0 {
            return Vec::new();
        }
        let shards = shards.min(len);
        let base = len / shards;
        let remainder = len % shards;
        let mut out = Vec::with_capacity(shards);
        let mut iter = snapshot.into_iter();
        for i in 0..shards {
            let size = base + usize::from(i < remainder);
            out.push(iter.by_ref().take(size).collect());
        }
        out
    }

    /// Iterates over the snapshot in owned chunks of at most
    /// `shard_size` bundles — the streaming counterpart of
    /// [`TraceStore::snapshot_shards`] for callers that size shards by
    /// trace count rather than worker count. A `shard_size` of zero
    /// yields nothing.
    pub fn iter_shards(
        &self,
        shard_size: usize,
    ) -> impl Iterator<Item = Vec<TraceBundle>> {
        let snapshot = if shard_size == 0 {
            Vec::new()
        } else {
            self.snapshot()
        };
        let mut iter = snapshot.into_iter().peekable();
        std::iter::from_fn(move || {
            iter.peek()?;
            Some(iter.by_ref().take(shard_size.max(1)).collect())
        })
    }

    /// Distinct users that have uploaded at least one bundle.
    pub fn users(&self) -> Vec<String> {
        let mut users: Vec<String> =
            self.bundles.read().iter().map(|b| b.user.clone()).collect();
        users.sort();
        users.dedup();
        users
    }

    /// Snapshot of the quarantine, in arrival order.
    pub fn quarantine(&self) -> Vec<QuarantineEntry> {
        self.quarantine.read().clone()
    }

    /// Number of quarantined uploads.
    pub fn quarantine_len(&self) -> usize {
        self.quarantine.read().len()
    }

    /// Per-reason counts of quarantined uploads.
    pub fn quarantine_counters(&self) -> BTreeMap<RejectReason, usize> {
        let mut counters = BTreeMap::new();
        for entry in self.quarantine.read().iter() {
            *counters.entry(entry.reason).or_insert(0) += 1;
        }
        counters
    }
}

/// The phone conditions the uploader gates on.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize,
)]
pub struct PhoneState {
    /// Whether the phone is charging.
    pub charging: bool,
    /// Whether the phone is on WiFi.
    pub on_wifi: bool,
}

impl PhoneState {
    /// The §II-B upload condition: "when the smartphone is in charge
    /// with WiFi ... the transmission process does not impact the
    /// normal usage of smartphone".
    pub fn may_upload(&self) -> bool {
        self.charging && self.on_wifi
    }
}

/// The phone-side upload queue: bundles accumulate locally and drain
/// to the backend only when the phone is charging on WiFi.
///
/// Two drain paths exist: [`Uploader::try_upload`] pushes decoded
/// bundles straight into a local store (handy in tests and
/// simulations), while [`Uploader::upload_with_retry`] encodes each
/// bundle to the wire and pushes it through an [`UploadBackend`] with
/// exponential backoff — the realistic fleet path.
///
/// [`UploadBackend`]: crate::upload::UploadBackend
/// [`Uploader::upload_with_retry`]: crate::upload
#[derive(Debug, Default)]
pub struct Uploader {
    pub(crate) queue: Vec<TraceBundle>,
}

impl Uploader {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Uploader::default()
    }

    /// Queues a finished session's bundle for later upload.
    pub fn enqueue(&mut self, bundle: TraceBundle) {
        self.queue.push(bundle);
    }

    /// Bundles waiting on the phone.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Attempts to drain the queue into the store. Uploads happen only
    /// when [`PhoneState::may_upload`]; bundles the store rejects
    /// (failed validation) are dropped, matching a server that
    /// discards corrupt uploads. Returns how many bundles the store
    /// accepted.
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_trace::store::{PhoneState, TraceBundle, TraceStore, Uploader};
    /// let store = TraceStore::new();
    /// let mut up = Uploader::new();
    /// up.enqueue(TraceBundle::new("u", 0, "nexus6"));
    /// // On battery: nothing moves.
    /// assert_eq!(up.try_upload(PhoneState { charging: false, on_wifi: true }, &store), 0);
    /// assert_eq!(up.pending(), 1);
    /// // Plugged in on WiFi: the queue drains.
    /// assert_eq!(up.try_upload(PhoneState { charging: true, on_wifi: true }, &store), 1);
    /// assert_eq!(up.pending(), 0);
    /// ```
    pub fn try_upload(
        &mut self,
        state: PhoneState,
        store: &TraceStore,
    ) -> usize {
        if !state.may_upload() {
            return 0;
        }
        let mut accepted = 0;
        for bundle in self.queue.drain(..) {
            if store.ingest(bundle).is_ok() {
                accepted += 1;
            }
        }
        accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Direction, EventRecord};

    fn bundle(user: &str, session: u64) -> TraceBundle {
        let mut b = TraceBundle::new(user, session, "nexus6");
        b.events
            .push(EventRecord::new(10, Direction::Enter, "LA;->onResume"));
        b.events
            .push(EventRecord::new(20, Direction::Exit, "LA;->onResume"));
        b
    }

    #[test]
    fn ingest_accepts_valid_bundles() {
        let store = TraceStore::new();
        store.ingest(bundle("u1", 0)).unwrap();
        store.ingest(bundle("u1", 1)).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.users(), vec!["u1".to_string()]);
    }

    #[test]
    fn ingest_rejects_out_of_order_bundle() {
        let store = TraceStore::new();
        let mut b = bundle("u1", 0);
        b.events
            .push(EventRecord::new(5, Direction::Enter, "LB;->onClick"));
        assert!(store.ingest(b).is_err());
        assert!(store.is_empty());
        assert_eq!(store.quarantine_len(), 1);
    }

    #[test]
    fn validate_rejects_disordered_utilization() {
        use crate::util::UtilizationSample;
        let mut b = bundle("u1", 0);
        b.utilization.push(UtilizationSample::new(1_000));
        b.utilization.push(UtilizationSample::new(500));
        assert_eq!(b.validate(), Err(TraceError::OutOfOrder { index: 1 }));
    }

    #[test]
    fn prepare_wire_repairs_disordered_utilization() {
        // A damaged sample clock must come back *sorted* — the power
        // model walks samples in order, and before this repair such a
        // payload crashed the ingest worker instead of recovering.
        use crate::util::UtilizationSample;
        let mut b = bundle("u1", 0);
        for ts in [0u64, 1_000, 500] {
            b.utilization.push(UtilizationSample::new(ts));
        }
        let payload = crate::wire::encode(&b);
        match prepare_wire(&payload, &RepairPolicy::default()) {
            PreparedUpload::Ready {
                bundle, repairs, ..
            } => {
                assert_eq!(
                    repairs,
                    vec![crate::repair::RepairAction::SortedUtilization {
                        displacement_ms: 500
                    }]
                );
                assert!(bundle.validate().is_ok());
            }
            other => panic!("expected a repaired upload, got {other:?}"),
        }
    }

    #[test]
    fn ingest_rejects_unmatched_exit() {
        let store = TraceStore::new();
        let mut b = TraceBundle::new("u1", 0, "nexus6");
        b.events
            .push(EventRecord::new(5, Direction::Exit, "LB;->onClick"));
        assert!(store.ingest(b).is_err());
    }

    #[test]
    fn ingest_rejects_duplicate_session() {
        let store = TraceStore::new();
        store.ingest(bundle("u1", 0)).unwrap();
        let err = store.ingest(bundle("u1", 0)).unwrap_err();
        assert!(matches!(err, TraceError::DuplicateUpload { .. }));
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.quarantine_counters().get(&RejectReason::Duplicate),
            Some(&1)
        );
    }

    #[test]
    fn ingest_bundle_repairs_bounded_disorder() {
        let store = TraceStore::new();
        let mut b = TraceBundle::new("u1", 0, "nexus6");
        b.events
            .push(EventRecord::new(20, Direction::Enter, "LB;->b"));
        b.events
            .push(EventRecord::new(10, Direction::Enter, "LA;->a"));
        b.events
            .push(EventRecord::new(15, Direction::Exit, "LA;->a"));
        b.events
            .push(EventRecord::new(25, Direction::Exit, "LB;->b"));
        let outcome = store.ingest_bundle(b);
        assert!(
            matches!(outcome, IngestOutcome::Recovered { ref repairs, .. } if !repairs.is_empty())
        );
        assert_eq!(store.len(), 1);
        assert!(store.snapshot()[0].validate().is_ok());
    }

    #[test]
    fn ingest_bundle_rejects_disorder_beyond_policy() {
        let store = TraceStore::new();
        let mut b = TraceBundle::new("u1", 0, "nexus6");
        b.events
            .push(EventRecord::new(60_000, Direction::Enter, "LA;->a"));
        b.events
            .push(EventRecord::new(10, Direction::Exit, "LA;->a"));
        let outcome = store.ingest_bundle(b);
        assert_eq!(
            outcome,
            IngestOutcome::Rejected(RejectReason::OutOfOrderBeyondRepair)
        );
        assert!(store.is_empty());
        assert_eq!(
            store
                .quarantine_counters()
                .get(&RejectReason::OutOfOrderBeyondRepair),
            Some(&1)
        );
    }

    #[test]
    fn ingest_bundle_dedups_retried_uploads() {
        let store = TraceStore::new();
        assert_eq!(store.ingest_bundle(bundle("u1", 0)), IngestOutcome::Clean);
        assert_eq!(
            store.ingest_bundle(bundle("u1", 0)),
            IngestOutcome::Rejected(RejectReason::Duplicate)
        );
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn ingest_wire_accepts_clean_payload() {
        let store = TraceStore::new();
        let payload = wire::encode_v2(&bundle("u1", 0));
        assert_eq!(store.ingest_wire(&payload), IngestOutcome::Clean);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn ingest_wire_salvages_truncated_payload() {
        let store = TraceStore::new();
        let mut b = TraceBundle::new("u1", 0, "nexus6");
        for i in 0..20u64 {
            b.events.push(EventRecord::new(
                i * 10,
                Direction::Enter,
                format!("LA;->c{i}"),
            ));
            b.events.push(EventRecord::new(
                i * 10 + 5,
                Direction::Exit,
                format!("LA;->c{i}"),
            ));
        }
        let payload = wire::encode_v2(&b);
        let cut = payload.len() * 2 / 3;
        let outcome = store.ingest_wire(&payload[..cut]);
        match outcome {
            IngestOutcome::Recovered {
                salvage: Some(report),
                ..
            } => {
                assert!(report.lost_records() > 0);
            }
            other => panic!("expected salvaged recovery, got {other:?}"),
        }
        assert_eq!(store.len(), 1);
        assert!(store.snapshot()[0].validate().is_ok());
    }

    #[test]
    fn ingest_wire_quarantines_garbage() {
        let store = TraceStore::new();
        let outcome = store.ingest_wire(&[0xAB; 32]);
        assert_eq!(outcome, IngestOutcome::Rejected(RejectReason::Undecodable));
        assert!(store.is_empty());
        let q = store.quarantine();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].user, None);
    }

    #[test]
    fn snapshot_is_deterministically_ordered() {
        let store = TraceStore::new();
        store.ingest(bundle("u2", 0)).unwrap();
        store.ingest(bundle("u1", 1)).unwrap();
        store.ingest(bundle("u1", 0)).unwrap();
        let snap = store.snapshot();
        let keys: Vec<(String, u64)> =
            snap.iter().map(|b| (b.user.clone(), b.session)).collect();
        assert_eq!(
            keys,
            vec![
                ("u1".to_string(), 0),
                ("u1".to_string(), 1),
                ("u2".to_string(), 0)
            ]
        );
    }

    #[test]
    fn snapshot_shards_concatenate_to_the_snapshot() {
        let store = TraceStore::new();
        for u in 0..3 {
            for s in 0..4 {
                store.ingest(bundle(&format!("u{u}"), s)).unwrap();
            }
        }
        let snapshot = store.snapshot();
        for shards in 1..=15 {
            let split = store.snapshot_shards(shards);
            assert!(split.len() <= shards);
            assert!(split.iter().all(|s| !s.is_empty()), "shards={shards}");
            let concat: Vec<TraceBundle> =
                split.into_iter().flatten().collect();
            assert_eq!(concat, snapshot, "shards={shards}");
        }
        assert!(store.snapshot_shards(0).is_empty());
        assert!(TraceStore::new().snapshot_shards(4).is_empty());
    }

    #[test]
    fn iter_shards_chunks_by_size() {
        let store = TraceStore::new();
        for s in 0..7 {
            store.ingest(bundle("u1", s)).unwrap();
        }
        let chunks: Vec<Vec<TraceBundle>> = store.iter_shards(3).collect();
        assert_eq!(
            chunks.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![3, 3, 1]
        );
        let concat: Vec<TraceBundle> = chunks.into_iter().flatten().collect();
        assert_eq!(concat, store.snapshot());
        assert_eq!(store.iter_shards(0).count(), 0);
    }

    #[test]
    fn ingest_anonymizes_payloads() {
        let store = TraceStore::new();
        let mut b = TraceBundle::new("u1", 0, "nexus6");
        b.events.push(EventRecord::new(
            10,
            Direction::Enter,
            "LA;->connect 192.168.0.9",
        ));
        b.events.push(EventRecord::new(
            20,
            Direction::Exit,
            "LA;->connect 192.168.0.9",
        ));
        store.ingest(b).unwrap();
        let snap = store.snapshot();
        assert!(snap[0].events.records()[0].event.contains("<redacted>"));
    }

    #[test]
    fn concurrent_ingest_accepts_all_valid_bundles() {
        let store = Arc::new(TraceStore::new());
        let batches: Vec<Vec<TraceBundle>> = (0..8)
            .map(|u| (0..25).map(|s| bundle(&format!("user-{u}"), s)).collect())
            .collect();
        let report = store.ingest_concurrently(batches);
        assert_eq!(report.accepted(), 200);
        assert_eq!(report.clean(), 200);
        assert_eq!(report.rejected(), 0);
        assert_eq!(store.len(), 200);
        assert_eq!(store.users().len(), 8);
    }

    #[test]
    fn concurrent_ingest_reports_per_bundle_outcomes() {
        let store = Arc::new(TraceStore::new());
        let mut beyond_repair = TraceBundle::new("bad", 0, "nexus6");
        beyond_repair.events.push(EventRecord::new(
            60_000,
            Direction::Enter,
            "LA;->x",
        ));
        beyond_repair.events.push(EventRecord::new(
            10,
            Direction::Exit,
            "LA;->x",
        ));
        let report = store.ingest_concurrently(vec![
            vec![bundle("ok", 0)],
            vec![beyond_repair],
        ]);
        assert_eq!(report.total(), 2);
        assert_eq!(report.accepted(), 1);
        assert_eq!(report.rejected(), 1);
        assert_eq!(report.outcomes[0][0], IngestOutcome::Clean);
        assert_eq!(
            report.outcomes[1][0],
            IngestOutcome::Rejected(RejectReason::OutOfOrderBeyondRepair)
        );
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn concurrent_duplicate_sessions_accept_exactly_one() {
        let store = Arc::new(TraceStore::new());
        // Eight threads all racing to upload the same session.
        let batches: Vec<Vec<TraceBundle>> =
            (0..8).map(|_| vec![bundle("u1", 0)]).collect();
        let report = store.ingest_concurrently(batches);
        assert_eq!(report.accepted(), 1);
        assert_eq!(report.rejected(), 7);
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.quarantine_counters().get(&RejectReason::Duplicate),
            Some(&7)
        );
    }

    #[test]
    fn uploader_gates_on_charging_and_wifi() {
        let store = TraceStore::new();
        let mut up = Uploader::new();
        up.enqueue(bundle("u1", 0));
        up.enqueue(bundle("u1", 1));
        for state in [
            PhoneState {
                charging: false,
                on_wifi: false,
            },
            PhoneState {
                charging: true,
                on_wifi: false,
            },
            PhoneState {
                charging: false,
                on_wifi: true,
            },
        ] {
            assert_eq!(up.try_upload(state, &store), 0);
            assert_eq!(up.pending(), 2);
        }
        assert_eq!(
            up.try_upload(
                PhoneState {
                    charging: true,
                    on_wifi: true
                },
                &store
            ),
            2
        );
        assert_eq!(up.pending(), 0);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn uploader_drops_invalid_bundles_on_drain() {
        let store = TraceStore::new();
        let mut up = Uploader::new();
        let mut bad = TraceBundle::new("bad", 0, "nexus6");
        bad.events
            .push(EventRecord::new(5, Direction::Exit, "LA;->x"));
        up.enqueue(bad);
        up.enqueue(bundle("ok", 0));
        let accepted = up.try_upload(
            PhoneState {
                charging: true,
                on_wifi: true,
            },
            &store,
        );
        assert_eq!(accepted, 1);
        assert_eq!(up.pending(), 0);
    }
}
