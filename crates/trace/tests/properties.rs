//! Property tests for the trace infrastructure: log and wire round
//! trips, pairing invariants, and join bounds (DESIGN.md §6).

use energydx_trace::event::{Direction, EventRecord, EventTrace};
use energydx_trace::join_power;
use energydx_trace::power::{PowerSample, PowerTrace};
use energydx_trace::store::TraceBundle;
use energydx_trace::util::{Component, UtilizationSample};
use energydx_trace::wire;
use proptest::prelude::*;

fn event_name() -> impl Strategy<Value = String> {
    prop_oneof![
        "[A-Za-z][A-Za-z0-9]{0,6}"
            .prop_map(|s| format!("Lcom/p/{s};->onResume")),
        Just("Idle(No_Display)".to_string()),
    ]
}

/// Well-formed traces: balanced enter/exit pairs at non-decreasing
/// timestamps.
fn balanced_trace() -> impl Strategy<Value = EventTrace> {
    prop::collection::vec((event_name(), 1u64..2_000), 0..30).prop_map(
        |items| {
            let mut trace = EventTrace::new();
            let mut t = 0u64;
            for (event, dur) in items {
                trace.push(EventRecord::new(
                    t,
                    Direction::Enter,
                    event.clone(),
                ));
                t += dur;
                trace.push(EventRecord::new(t, Direction::Exit, event));
                t += 1;
            }
            trace
        },
    )
}

fn bundle() -> impl Strategy<Value = TraceBundle> {
    (
        "[a-z0-9-]{1,12}",
        any::<u64>(),
        prop_oneof![Just("nexus6"), Just("nexus5"), Just("galaxy_s5")],
        balanced_trace(),
        prop::collection::vec(
            (0u64..100_000, prop::array::uniform6(0.0f64..1.0)),
            0..20,
        ),
    )
        .prop_map(|(user, session, device, events, samples)| {
            let mut b = TraceBundle::new(user, session, device);
            b.events = events;
            for (ts, util) in samples {
                let mut s = UtilizationSample::new(ts);
                for (i, c) in Component::ALL.into_iter().enumerate() {
                    s.set(c, util[i]);
                }
                b.utilization.push(s);
            }
            b
        })
}

proptest! {
    #[test]
    fn wire_round_trips_any_bundle(b in bundle()) {
        let bytes = wire::encode(&b);
        prop_assert_eq!(wire::decode(&bytes).unwrap(), b);
    }

    #[test]
    fn truncated_wire_never_panics(b in bundle(), cut_fraction in 0.0f64..1.0) {
        let bytes = wire::encode(&b);
        let cut = (bytes.len() as f64 * cut_fraction) as usize;
        // Either a clean decode (cut == len) or an error; never a panic.
        let _ = wire::decode(&bytes[..cut.min(bytes.len())]);
    }

    #[test]
    fn wire_v2_round_trips_any_bundle(b in bundle()) {
        let bytes = wire::encode_v2(&b);
        prop_assert_eq!(wire::decode(&bytes).unwrap(), b.clone());
        // The salvage path agrees with the strict one on intact input.
        let salvaged = wire::decode_salvage(&bytes).unwrap();
        prop_assert!(salvaged.report.is_intact());
        prop_assert_eq!(salvaged.report.lost_records(), 0);
        prop_assert_eq!(salvaged.bundle, b);
    }

    #[test]
    fn decode_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = wire::decode(&bytes);
        let _ = wire::decode_salvage(&bytes);
    }

    #[test]
    fn decode_never_panics_past_a_valid_magic(
        version in 0u8..4,
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        // Drive the parser deeper by handing it a plausible frame start.
        let mut payload = b"EDXT".to_vec();
        payload.push(version);
        payload.extend_from_slice(&bytes);
        let _ = wire::decode(&payload);
        let _ = wire::decode_salvage(&payload);
    }

    #[test]
    fn truncated_v2_salvage_never_fabricates_records(
        b in bundle(),
        cut_fraction in 0.0f64..1.0,
    ) {
        let bytes = wire::encode_v2(&b);
        let cut = ((bytes.len() as f64 * cut_fraction) as usize).min(bytes.len());
        if let Ok(salvaged) = wire::decode_salvage(&bytes[..cut]) {
            prop_assert!(salvaged.bundle.events.len() <= b.events.len());
            prop_assert!(salvaged.bundle.utilization.len() <= b.utilization.len());
            let report = &salvaged.report;
            prop_assert!(report.events_recovered <= b.events.len());
            prop_assert!(report.samples_recovered <= b.utilization.len());
        }
    }

    #[test]
    fn bit_flips_never_panic_either_decoder(
        b in bundle(),
        byte_seed in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut bytes = wire::encode_v2(&b).to_vec();
        let idx = byte_seed % bytes.len();
        bytes[idx] ^= 1 << bit;
        let _ = wire::decode(&bytes);
        if let Ok(salvaged) = wire::decode_salvage(&bytes) {
            // A single bit flip is at most one section's damage: the
            // salvage must never report more records than were encoded
            // unless the flip hit a count field, which the CRC flags.
            let report = salvaged.report;
            if report.events_crc_ok == Some(true) {
                prop_assert!(report.events_recovered <= b.events.len());
            }
        }
    }

    #[test]
    fn log_format_round_trips(t in balanced_trace()) {
        let log = t.to_log();
        prop_assert_eq!(EventTrace::from_log(&log).unwrap(), t);
    }

    #[test]
    fn pairing_yields_one_instance_per_enter(t in balanced_trace()) {
        let enters = t
            .records()
            .iter()
            .filter(|r| r.direction == Direction::Enter)
            .count();
        let instances = t.pair_instances_strict().unwrap();
        prop_assert_eq!(instances.len(), enters);
        for i in &instances {
            prop_assert!(i.end_ms >= i.start_ms);
        }
    }

    #[test]
    fn lenient_pairing_matches_strict_on_balanced_traces(t in balanced_trace()) {
        prop_assert_eq!(t.pair_instances(), t.pair_instances_strict().unwrap());
    }

    #[test]
    fn joined_power_is_within_sample_range(
        t in balanced_trace(),
        powers in prop::collection::vec(0.0f64..2_000.0, 1..50),
    ) {
        let power: PowerTrace = powers
            .iter()
            .enumerate()
            .map(|(i, &mw)| {
                let mut s = PowerSample::new((i as u64 + 1) * 500);
                s.set_component(Component::Cpu, mw);
                s
            })
            .collect();
        let lo = powers.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = powers.iter().cloned().fold(0.0f64, f64::max);
        let instances = t.pair_instances();
        for joined in join_power(instances, &power) {
            prop_assert!(
                joined.power_mw >= lo - 1e-9 && joined.power_mw <= hi + 1e-9,
                "joined {} outside [{lo}, {hi}]",
                joined.power_mw
            );
        }
    }

    #[test]
    fn anonymization_is_idempotent(s in "[ -~]{0,60}") {
        let once = energydx_trace::anonymize::scrub(&s);
        let twice = energydx_trace::anonymize::scrub(&once);
        prop_assert_eq!(&once, &twice);
        prop_assert!(energydx_trace::anonymize::is_clean(&once));
    }
}
