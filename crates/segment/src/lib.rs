//! On-disk columnar segment format for interned trace partials.
//!
//! A **segment** is one [`ShardPartial`] serialized column-by-column:
//! the same SoA layout as [`InternedTrace`] (one block of event ids,
//! one block of powers per contiguous run) instead of the per-trace
//! interleaving the EDXC checkpoint uses. Every block is CRC32-framed
//! exactly like the wire-v2 and checkpoint formats, and a footer index
//! lists every block's position so a segment can be *opened* — its
//! trace count and run layout recovered — without scanning the column
//! data ([`open_meta`]).
//!
//! ```text
//! "EDXS" version:u8
//! block*                      one VOCAB, then RUN IDS POWERS SKIPS per run
//! footer block (INDEX)        trace_count, run count, (kind,offset,len)*
//! footer_len:u32 "EDXF"       fixed-size trailer: find the footer from EOF
//!
//! block := kind:u8 body_len:u32 body crc32(body):u32
//! ```
//!
//! The reader enforces that the index entries tile the file exactly —
//! header, blocks, footer, trailer, with no gaps — so **every byte of
//! a segment is covered by a check**: magic/version/kind/length fields
//! by structural comparison, bodies by CRC. Any truncated prefix and
//! any single-bit flip therefore surfaces as a typed [`SegmentError`],
//! never a panic and never silently wrong data; the corruption suite
//! in `tests/corruption.rs` proves both exhaustively, mirroring the
//! EDXC checkpoint tests.
//!
//! Durability matches the checkpoint discipline: [`save_to`] writes a
//! temp file, fsyncs it, renames it into place, and best-effort fsyncs
//! the directory, so a crash can never publish a torn segment.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::Path;

use energydx::shard::{
    PartsError, SegmentParts, ShardPartial, ShardPartialParts,
};
use energydx_trace::intern::{EventId, InternedTrace};
use energydx_trace::wire;

/// Leading magic of every segment file.
pub const MAGIC: [u8; 4] = *b"EDXS";
/// Trailing magic, last four bytes of every segment file.
pub const FOOTER_MAGIC: [u8; 4] = *b"EDXF";
/// Current format version.
pub const VERSION: u8 = 1;
/// File extension segments are written with.
pub const SEGMENT_EXT: &str = "seg";

/// Header length: magic + version byte.
const HEADER_LEN: usize = 5;
/// Trailer length: footer_len u32 + footer magic.
const TRAILER_LEN: usize = 8;
/// Framing overhead per block: kind u8 + body_len u32 + crc u32.
const BLOCK_OVERHEAD: usize = 9;

/// Block kinds, in the order they appear in a segment.
const K_VOCAB: u8 = 1;
const K_RUN: u8 = 2;
const K_IDS: u8 = 3;
const K_POWERS: u8 = 4;
const K_SKIPS: u8 = 5;
const K_INDEX: u8 = 6;

/// Why a segment could not be read. Every corrupt, truncated, or
/// adversarial input maps to one of these — reading never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    /// The underlying file operation failed.
    Io {
        /// What was being attempted.
        op: &'static str,
        /// The OS error text.
        detail: String,
    },
    /// The header or trailer magic is not a segment's.
    BadMagic,
    /// The file declares a format version this build cannot read.
    UnsupportedVersion(u8),
    /// The data ends before the named field is complete.
    Truncated {
        /// The field being read when the data ran out.
        field: &'static str,
    },
    /// A block's CRC32 does not match its body.
    CrcMismatch {
        /// The block that failed the check.
        block: &'static str,
    },
    /// The data is structurally inconsistent (lengths, kinds, or
    /// counts disagree with each other).
    Malformed {
        /// What was inconsistent.
        detail: String,
    },
    /// The decoded columns do not describe a valid partial.
    Invalid(PartsError),
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::Io { op, detail } => {
                write!(f, "segment io failure during {op}: {detail}")
            }
            SegmentError::BadMagic => {
                write!(f, "not a segment file (bad magic)")
            }
            SegmentError::UnsupportedVersion(v) => {
                write!(f, "unsupported segment version {v}")
            }
            SegmentError::Truncated { field } => {
                write!(f, "segment truncated while reading {field}")
            }
            SegmentError::CrcMismatch { block } => {
                write!(f, "segment crc mismatch in {block} block")
            }
            SegmentError::Malformed { detail } => {
                write!(f, "malformed segment: {detail}")
            }
            SegmentError::Invalid(e) => {
                write!(f, "segment decodes to an invalid partial: {e:?}")
            }
        }
    }
}

impl std::error::Error for SegmentError {}

impl SegmentError {
    fn io(op: &'static str, e: &std::io::Error) -> Self {
        SegmentError::Io {
            op,
            detail: e.to_string(),
        }
    }

    fn malformed(detail: impl Into<String>) -> Self {
        SegmentError::Malformed {
            detail: detail.into(),
        }
    }
}

/// What [`open_meta`] recovers from a segment's footer alone: enough
/// to account for the segment (budget, checkpoint references, restore
/// validation) without reading any column data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Total traces across all runs, emptied slots included.
    pub trace_count: u64,
    /// Number of contiguous runs.
    pub runs: u32,
    /// Whole-file size in bytes.
    pub file_bytes: u64,
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Appends one CRC-framed block and records it in the index.
fn push_block(
    out: &mut Vec<u8>,
    index: &mut Vec<(u8, u64, u64)>,
    kind: u8,
    body: &[u8],
) {
    assert!(
        body.len() <= u32::MAX as usize,
        "segment block exceeds u32 length framing"
    );
    index.push((kind, out.len() as u64, (body.len() + BLOCK_OVERHEAD) as u64));
    out.push(kind);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&wire::crc32(body).to_le_bytes());
}

/// Serializes a partial's parts into the columnar segment byte format.
///
/// The inverse of [`read_segment`]; round-trips bit-for-bit.
pub fn segment_bytes(parts: &ShardPartialParts) -> Vec<u8> {
    let mut out = Vec::new();
    let mut index: Vec<(u8, u64, u64)> = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);

    // VOCAB: the canonical (name-sorted) vocabulary.
    let mut body = Vec::new();
    body.extend_from_slice(&(parts.names.len() as u32).to_le_bytes());
    for name in &parts.names {
        body.extend_from_slice(&(name.len() as u32).to_le_bytes());
        body.extend_from_slice(name.as_bytes());
    }
    push_block(&mut out, &mut index, K_VOCAB, &body);

    let mut trace_count: u64 = 0;
    for run in &parts.segments {
        trace_count += run.traces.len() as u64;

        // RUN: global offset plus the per-trace length column, which
        // delimits the ids/powers columns that follow.
        let mut body = Vec::new();
        body.extend_from_slice(&(run.offset as u64).to_le_bytes());
        body.extend_from_slice(&(run.traces.len() as u32).to_le_bytes());
        for trace in &run.traces {
            body.extend_from_slice(&(trace.ids().len() as u32).to_le_bytes());
        }
        push_block(&mut out, &mut index, K_RUN, &body);

        // IDS: every trace's event ids, concatenated.
        let mut body = Vec::new();
        for trace in &run.traces {
            for id in trace.ids() {
                body.extend_from_slice(&(id.index() as u32).to_le_bytes());
            }
        }
        push_block(&mut out, &mut index, K_IDS, &body);

        // POWERS: every trace's powers, concatenated.
        let mut body = Vec::new();
        for trace in &run.traces {
            for p in trace.powers() {
                body.extend_from_slice(&p.to_le_bytes());
            }
        }
        push_block(&mut out, &mut index, K_POWERS, &body);

        // SKIPS: emptied-trace bookkeeping.
        let mut body = Vec::new();
        body.extend_from_slice(&(run.skipped.len() as u32).to_le_bytes());
        for &(index, nonfinite) in &run.skipped {
            body.extend_from_slice(&(index as u64).to_le_bytes());
            body.extend_from_slice(&(nonfinite as u64).to_le_bytes());
        }
        push_block(&mut out, &mut index, K_SKIPS, &body);
    }

    // INDEX footer: summary plus the block table, itself CRC-framed,
    // followed by the fixed trailer that locates it from EOF.
    let mut body = Vec::new();
    body.extend_from_slice(&trace_count.to_le_bytes());
    body.extend_from_slice(&(parts.segments.len() as u32).to_le_bytes());
    body.extend_from_slice(&(index.len() as u32).to_le_bytes());
    for &(kind, offset, len) in &index {
        body.push(kind);
        body.extend_from_slice(&offset.to_le_bytes());
        body.extend_from_slice(&len.to_le_bytes());
    }
    let footer_len = (body.len() + BLOCK_OVERHEAD) as u32;
    let mut discard = Vec::new();
    push_block(&mut out, &mut discard, K_INDEX, &body);
    out.extend_from_slice(&footer_len.to_le_bytes());
    out.extend_from_slice(&FOOTER_MAGIC);
    out
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian cursor over a block body.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    fn take(
        &mut self,
        n: usize,
        field: &'static str,
    ) -> Result<&'a [u8], SegmentError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or(SegmentError::Truncated { field })?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, SegmentError> {
        let b = self.take(4, field)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, SegmentError> {
        let b = self.take(8, field)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64(&mut self, field: &'static str) -> Result<f64, SegmentError> {
        let b = self.take(8, field)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn finish(self, block: &'static str) -> Result<(), SegmentError> {
        if self.pos != self.data.len() {
            return Err(SegmentError::malformed(format!(
                "{block} block has {} trailing bytes",
                self.data.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// One footer-index entry: where a block lives in the file.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    kind: u8,
    offset: usize,
    len: usize,
}

/// The parsed footer: summary counts plus the block table.
struct Footer {
    trace_count: u64,
    runs: u32,
    entries: Vec<IndexEntry>,
}

fn usize_of(v: u64, what: &str) -> Result<usize, SegmentError> {
    usize::try_from(v)
        .map_err(|_| SegmentError::malformed(format!("{what} overflows")))
}

/// Checks the header magic/version and returns nothing else.
fn check_header(bytes: &[u8]) -> Result<(), SegmentError> {
    if bytes.len() < HEADER_LEN {
        return Err(SegmentError::Truncated { field: "header" });
    }
    if bytes[..4] != MAGIC {
        return Err(SegmentError::BadMagic);
    }
    if bytes[4] != VERSION {
        return Err(SegmentError::UnsupportedVersion(bytes[4]));
    }
    Ok(())
}

/// Locates the footer block from the trailer and returns its byte
/// range within the file.
fn footer_range(
    file_len: usize,
    trailer: &[u8; 8],
) -> Result<(usize, usize), SegmentError> {
    if trailer[4..] != FOOTER_MAGIC {
        return Err(SegmentError::BadMagic);
    }
    let footer_len = usize_of(
        u64::from(u32::from_le_bytes(trailer[..4].try_into().expect("4"))),
        "footer length",
    )?;
    if footer_len < BLOCK_OVERHEAD {
        return Err(SegmentError::malformed("footer shorter than a block"));
    }
    let trailer_start = file_len - TRAILER_LEN;
    let footer_start = trailer_start
        .checked_sub(footer_len)
        .filter(|&s| s >= HEADER_LEN)
        .ok_or(SegmentError::Truncated { field: "footer" })?;
    Ok((footer_start, trailer_start))
}

/// Verifies one block's framing against its index entry and returns
/// the body slice. `bytes` is the whole file.
fn block_body<'a>(
    bytes: &'a [u8],
    entry: IndexEntry,
    expect_kind: u8,
    name: &'static str,
) -> Result<&'a [u8], SegmentError> {
    let end = entry
        .offset
        .checked_add(entry.len)
        .filter(|&e| e <= bytes.len())
        .ok_or(SegmentError::Truncated { field: "block" })?;
    if entry.len < BLOCK_OVERHEAD {
        return Err(SegmentError::malformed(format!(
            "{name} block shorter than its framing"
        )));
    }
    let block = &bytes[entry.offset..end];
    if entry.kind != expect_kind || block[0] != expect_kind {
        return Err(SegmentError::malformed(format!(
            "expected {name} block, found kind {} (index kind {})",
            block[0], entry.kind
        )));
    }
    let body_len =
        u32::from_le_bytes(block[1..5].try_into().expect("4 bytes")) as usize;
    if body_len != entry.len - BLOCK_OVERHEAD {
        return Err(SegmentError::malformed(format!(
            "{name} block length disagrees with the index"
        )));
    }
    let body = &block[5..5 + body_len];
    let crc =
        u32::from_le_bytes(block[5 + body_len..].try_into().expect("4 bytes"));
    if wire::crc32(body) != crc {
        return Err(SegmentError::CrcMismatch { block: name });
    }
    Ok(body)
}

/// Parses and CRC-checks the footer block body into the block table.
fn parse_footer_body(
    body: &[u8],
    file_len: usize,
) -> Result<Footer, SegmentError> {
    let mut c = Cursor::new(body);
    let trace_count = c.u64("footer trace count")?;
    let runs = c.u32("footer run count")?;
    let entry_count = c.u32("footer entry count")? as usize;
    if entry_count != 1 + 4 * runs as usize {
        return Err(SegmentError::malformed(
            "footer entry count disagrees with run count",
        ));
    }
    let mut entries = Vec::with_capacity(entry_count);
    for _ in 0..entry_count {
        let kind = c.take(1, "index entry kind")?[0];
        let offset = usize_of(c.u64("index entry offset")?, "block offset")?;
        let len = usize_of(c.u64("index entry length")?, "block length")?;
        entries.push(IndexEntry { kind, offset, len });
    }
    c.finish("index")?;
    // The entries must tile the file contiguously from the header on:
    // any gap would be bytes no check covers. Callers additionally
    // verify the last entry ends exactly where the footer begins.
    let mut expected = HEADER_LEN;
    for e in &entries {
        if e.offset != expected {
            return Err(SegmentError::malformed(
                "index entries do not tile the file",
            ));
        }
        expected = e
            .offset
            .checked_add(e.len)
            .filter(|&end| end <= file_len)
            .ok_or_else(|| {
            SegmentError::malformed("block range overflows")
        })?;
    }
    Ok(Footer {
        trace_count,
        runs,
        entries,
    })
}

/// Parses a whole in-memory segment's footer.
fn read_footer(bytes: &[u8]) -> Result<Footer, SegmentError> {
    check_header(bytes)?;
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(SegmentError::Truncated { field: "trailer" });
    }
    let trailer: [u8; 8] = bytes[bytes.len() - TRAILER_LEN..]
        .try_into()
        .expect("8 bytes");
    let (footer_start, trailer_start) = footer_range(bytes.len(), &trailer)?;
    let entry = IndexEntry {
        kind: K_INDEX,
        offset: footer_start,
        len: trailer_start - footer_start,
    };
    let body = block_body(bytes, entry, K_INDEX, "index")?;
    let footer = parse_footer_body(body, bytes.len())?;
    // The block table must end exactly where the footer begins.
    let covered = footer
        .entries
        .last()
        .map(|e| e.offset + e.len)
        .unwrap_or(HEADER_LEN);
    if covered != footer_start {
        return Err(SegmentError::malformed(
            "index entries do not reach the footer",
        ));
    }
    Ok(footer)
}

/// Decodes the columnar byte format back into parts.
///
/// Every block is CRC-verified and the footer index must tile the file
/// exactly; see the module docs for the corruption guarantees.
///
/// # Errors
///
/// Any structural damage yields a typed [`SegmentError`].
pub fn read_segment(bytes: &[u8]) -> Result<ShardPartialParts, SegmentError> {
    let footer = read_footer(bytes)?;
    let mut entries = footer.entries.iter().copied();

    // VOCAB.
    let entry = entries
        .next()
        .ok_or_else(|| SegmentError::malformed("missing vocab block"))?;
    let body = block_body(bytes, entry, K_VOCAB, "vocab")?;
    let mut c = Cursor::new(body);
    let name_count = c.u32("vocab count")? as usize;
    let mut names = Vec::with_capacity(name_count.min(body.len()));
    for _ in 0..name_count {
        let len = c.u32("name length")? as usize;
        let raw = c.take(len, "name bytes")?;
        let name = std::str::from_utf8(raw)
            .map_err(|_| SegmentError::malformed("name is not UTF-8"))?;
        names.push(name.to_string());
    }
    c.finish("vocab")?;

    // One RUN/IDS/POWERS/SKIPS quartet per run.
    let mut segments = Vec::with_capacity(footer.runs as usize);
    let mut total: u64 = 0;
    for _ in 0..footer.runs {
        let entry = entries
            .next()
            .ok_or_else(|| SegmentError::malformed("missing run block"))?;
        let body = block_body(bytes, entry, K_RUN, "run")?;
        let mut c = Cursor::new(body);
        let offset = usize_of(c.u64("run offset")?, "run offset")?;
        let count = c.u32("run trace count")? as usize;
        let mut lengths = Vec::with_capacity(count.min(body.len()));
        let mut instances: usize = 0;
        for _ in 0..count {
            let len = c.u32("trace length")? as usize;
            instances = instances.checked_add(len).ok_or_else(|| {
                SegmentError::malformed("instance count overflows")
            })?;
            lengths.push(len);
        }
        c.finish("run")?;

        let entry = entries
            .next()
            .ok_or_else(|| SegmentError::malformed("missing ids block"))?;
        let ids_body = block_body(bytes, entry, K_IDS, "ids")?;
        if ids_body.len() != instances * 4 {
            return Err(SegmentError::malformed(
                "ids column length disagrees with the length column",
            ));
        }

        let entry = entries
            .next()
            .ok_or_else(|| SegmentError::malformed("missing powers block"))?;
        let powers_body = block_body(bytes, entry, K_POWERS, "powers")?;
        if powers_body.len() != instances * 8 {
            return Err(SegmentError::malformed(
                "powers column length disagrees with the length column",
            ));
        }

        let entry = entries
            .next()
            .ok_or_else(|| SegmentError::malformed("missing skips block"))?;
        let skips_body = block_body(bytes, entry, K_SKIPS, "skips")?;
        let mut c = Cursor::new(skips_body);
        let skip_count = c.u32("skip count")? as usize;
        let mut skipped = Vec::with_capacity(skip_count.min(skips_body.len()));
        for _ in 0..skip_count {
            let index = usize_of(c.u64("skip index")?, "skip index")?;
            let nonfinite = usize_of(c.u64("skip nonfinite")?, "skip count")?;
            skipped.push((index, nonfinite));
        }
        c.finish("skips")?;

        // Rebuild the traces from the three columns.
        let mut ids_c = Cursor::new(ids_body);
        let mut powers_c = Cursor::new(powers_body);
        let mut traces = Vec::with_capacity(count);
        for &len in &lengths {
            let mut ids = Vec::with_capacity(len);
            let mut powers = Vec::with_capacity(len);
            for _ in 0..len {
                ids.push(EventId::from_index(ids_c.u32("id")? as usize));
                let p = powers_c.f64("power")?;
                if !p.is_finite() {
                    return Err(SegmentError::malformed(
                        "non-finite power in column",
                    ));
                }
                powers.push(p);
            }
            let trace = InternedTrace::from_columns(ids, powers)
                .expect("columns built with equal lengths");
            traces.push(trace);
        }
        total += count as u64;
        segments.push(SegmentParts {
            offset,
            traces,
            skipped,
        });
    }
    if total != footer.trace_count {
        return Err(SegmentError::malformed(
            "run trace counts disagree with the footer",
        ));
    }
    Ok(ShardPartialParts { names, segments })
}

/// Decodes a segment and validates it into a [`ShardPartial`].
///
/// # Errors
///
/// Structural damage yields the reader's typed error; columns that
/// decode but do not describe a valid partial yield
/// [`SegmentError::Invalid`].
pub fn read_partial(bytes: &[u8]) -> Result<ShardPartial, SegmentError> {
    let parts = read_segment(bytes)?;
    ShardPartial::from_parts(parts).map_err(SegmentError::Invalid)
}

/// Reads only the footer of an in-memory segment.
///
/// # Errors
///
/// Same taxonomy as [`read_segment`], but only header/trailer/footer
/// damage is observable.
pub fn peek_meta(bytes: &[u8]) -> Result<SegmentMeta, SegmentError> {
    let footer = read_footer(bytes)?;
    Ok(SegmentMeta {
        trace_count: footer.trace_count,
        runs: footer.runs,
        file_bytes: bytes.len() as u64,
    })
}

// ---------------------------------------------------------------------------
// Files
// ---------------------------------------------------------------------------

/// Serializes `parts` and atomically publishes the segment at `path`:
/// temp file, fsync, rename, best-effort directory fsync. A crash at
/// any point leaves either the old file or the new one, never a torn
/// segment.
///
/// # Errors
///
/// Surfaces file-system failures as [`SegmentError::Io`].
pub fn save_to(
    path: &Path,
    parts: &ShardPartialParts,
) -> Result<u64, SegmentError> {
    let bytes = segment_bytes(parts);
    let tmp = path.with_extension("seg.tmp");
    let mut file = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| SegmentError::io("create temp segment", &e))?;
    file.write_all(&bytes)
        .map_err(|e| SegmentError::io("write segment", &e))?;
    file.sync_all()
        .map_err(|e| SegmentError::io("sync segment", &e))?;
    drop(file);
    fs::rename(&tmp, path)
        .map_err(|e| SegmentError::io("publish segment", &e))?;
    if let Some(dir) = path.parent() {
        // Making the rename itself durable; failure here only delays
        // durability until the next sync, so it is not fatal.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(bytes.len() as u64)
}

/// Reads and validates a whole segment file into a [`ShardPartial`].
///
/// # Errors
///
/// File-system failures surface as [`SegmentError::Io`]; damaged
/// contents surface with the byte reader's taxonomy.
pub fn load_from(path: &Path) -> Result<ShardPartial, SegmentError> {
    let bytes =
        fs::read(path).map_err(|e| SegmentError::io("read segment", &e))?;
    read_partial(&bytes)
}

/// Opens a segment file and reads only its header and footer — the
/// column blocks are never touched, so this is O(footer) regardless of
/// how many traces the segment holds.
///
/// # Errors
///
/// File-system failures surface as [`SegmentError::Io`]; a damaged
/// header, trailer, or footer surfaces with the reader's taxonomy.
pub fn open_meta(path: &Path) -> Result<SegmentMeta, SegmentError> {
    let mut file =
        File::open(path).map_err(|e| SegmentError::io("open segment", &e))?;
    let file_len = file
        .metadata()
        .map_err(|e| SegmentError::io("stat segment", &e))?
        .len();
    let file_len = usize_of(file_len, "file length")?;
    if file_len < HEADER_LEN + TRAILER_LEN {
        return Err(SegmentError::Truncated { field: "trailer" });
    }
    let mut header = [0u8; HEADER_LEN];
    file.read_exact(&mut header)
        .map_err(|e| SegmentError::io("read header", &e))?;
    check_header(&header)?;
    let mut trailer = [0u8; TRAILER_LEN];
    file.seek(SeekFrom::End(-(TRAILER_LEN as i64)))
        .map_err(|e| SegmentError::io("seek trailer", &e))?;
    file.read_exact(&mut trailer)
        .map_err(|e| SegmentError::io("read trailer", &e))?;
    let (footer_start, trailer_start) = footer_range(file_len, &trailer)?;
    let footer_len = trailer_start - footer_start;
    let mut block = vec![0u8; footer_len];
    file.seek(SeekFrom::Start(footer_start as u64))
        .map_err(|e| SegmentError::io("seek footer", &e))?;
    file.read_exact(&mut block)
        .map_err(|e| SegmentError::io("read footer", &e))?;
    // Verify the footer block in place (offsets are file-relative, so
    // hand `block_body` a zero-based entry over the block slice).
    let entry = IndexEntry {
        kind: K_INDEX,
        offset: 0,
        len: footer_len,
    };
    let body = block_body(&block, entry, K_INDEX, "index")?;
    let footer = parse_footer_body(body, file_len)?;
    let covered = footer
        .entries
        .last()
        .map(|e| e.offset + e.len)
        .unwrap_or(HEADER_LEN);
    if covered != footer_start {
        return Err(SegmentError::malformed(
            "index entries do not reach the footer",
        ));
    }
    Ok(SegmentMeta {
        trace_count: footer.trace_count,
        runs: footer.runs,
        file_bytes: file_len as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use energydx::shard::ShardPartial;
    use energydx::EnergyDx;
    use energydx_trace::event::EventInstance;
    use energydx_trace::join::PoweredInstance;

    fn powered(names: &[(&str, f64)]) -> Vec<PoweredInstance> {
        names
            .iter()
            .enumerate()
            .map(|(i, &(n, p))| PoweredInstance {
                instance: EventInstance::new(n, i as u64 * 10, i as u64 * 10),
                power_mw: p,
            })
            .collect()
    }

    fn sample_partial() -> ShardPartial {
        let dx = EnergyDx::default();
        let traces = vec![
            powered(&[("net", 120.0), ("gps", 300.0), ("net", 90.0)]),
            powered(&[("cpu", 40.0), ("net", f64::NAN)]),
            powered(&[("gps", 280.0), ("cpu", 55.0)]),
        ];
        dx.map_shard(&traces, 0)
    }

    #[test]
    fn round_trips_bit_for_bit() {
        let partial = sample_partial();
        let bytes = segment_bytes(&partial.to_parts());
        let restored = read_partial(&bytes).unwrap();
        assert_eq!(restored.to_parts(), partial.to_parts());
        // And the serialization of the round-trip is stable.
        assert_eq!(segment_bytes(&restored.to_parts()), bytes);
    }

    #[test]
    fn empty_partial_round_trips() {
        let parts = ShardPartial::empty().to_parts();
        let bytes = segment_bytes(&parts);
        assert_eq!(read_segment(&bytes).unwrap(), parts);
        let meta = peek_meta(&bytes).unwrap();
        assert_eq!(meta.trace_count, 0);
        assert_eq!(meta.runs, 0);
    }

    #[test]
    fn peek_meta_matches_the_full_read() {
        let partial = sample_partial();
        let bytes = segment_bytes(&partial.to_parts());
        let meta = peek_meta(&bytes).unwrap();
        assert_eq!(meta.trace_count, partial.trace_count() as u64);
        assert_eq!(meta.runs, 1);
        assert_eq!(meta.file_bytes, bytes.len() as u64);
    }

    #[test]
    fn rebased_runs_keep_their_offsets() {
        let partial = sample_partial().rebase(100);
        let bytes = segment_bytes(&partial.to_parts());
        let restored = read_partial(&bytes).unwrap();
        assert_eq!(restored.to_parts(), partial.to_parts());
        assert_eq!(restored.to_parts().segments[0].offset, 100);
    }

    #[test]
    fn save_load_and_open_meta_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("energydx-segment-unit");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("000001.seg");
        let partial = sample_partial();
        let written = save_to(&path, &partial.to_parts()).unwrap();
        assert_eq!(written, fs::metadata(&path).unwrap().len());
        let meta = open_meta(&path).unwrap();
        assert_eq!(meta.trace_count, partial.trace_count() as u64);
        let restored = load_from(&path).unwrap();
        assert_eq!(restored.to_parts(), partial.to_parts());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merged_vocabularies_round_trip() {
        let dx = EnergyDx::default();
        let a = dx.map_shard(&[powered(&[("zz", 10.0), ("aa", 20.0)])], 0);
        let b = dx.map_shard(&[powered(&[("mm", 5.0), ("aa", 1.0)])], 1);
        let merged = a.merge(b);
        let bytes = segment_bytes(&merged.to_parts());
        assert_eq!(read_partial(&bytes).unwrap().to_parts(), merged.to_parts());
    }
}
