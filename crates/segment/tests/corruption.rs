//! Segment format coverage: round-trip fidelity plus fault tolerance.
//! A segment read back from disk must be structurally identical to
//! the partial that was spilled, and every damaged file — truncated
//! at any byte, any single bit flipped, trailing garbage — must
//! surface as a typed [`SegmentError`], never a panic and never
//! silently wrong data. Mirrors the EDXC checkpoint suite
//! (`fleetd/tests/checkpoint_props.rs`).

use energydx::shard::ShardPartial;
use energydx::EnergyDx;
use energydx_segment::{
    open_meta, peek_meta, read_partial, read_segment, save_to, segment_bytes,
    SegmentError,
};
use energydx_trace::event::EventInstance;
use energydx_trace::fault::{FaultInjector, FaultKind};
use energydx_trace::join::PoweredInstance;
use proptest::prelude::*;

const EVENTS: [&str; 6] = ["net", "gps", "cpu", "wake", "sensor", "render"];

fn powered(names: &[(usize, f64)]) -> Vec<PoweredInstance> {
    names
        .iter()
        .enumerate()
        .map(|(i, &(n, p))| PoweredInstance {
            instance: EventInstance::new(
                EVENTS[n % EVENTS.len()],
                i as u64 * 10,
                i as u64 * 10 + 5,
            ),
            power_mw: p,
        })
        .collect()
}

/// One scripted trace: which events it touches and their powers; a
/// damage mode 1 turns one power non-finite so the partial records a
/// skipped slot.
fn script_strategy() -> impl Strategy<Value = Vec<Vec<(usize, f64)>>> {
    prop::collection::vec(
        prop::collection::vec((0usize..EVENTS.len(), 1.0f64..500.0), 1..6),
        1..8,
    )
}

/// Maps a script into a partial the way the daemon would: one
/// map_shard per trace, merged in order, occasionally split into two
/// rebased runs so multi-run segments are exercised.
fn partial_of(script: &[Vec<(usize, f64)>], gap: bool) -> ShardPartial {
    let dx = EnergyDx::default();
    let mut partial = ShardPartial::empty();
    for (i, trace) in script.iter().enumerate() {
        let mut instances = powered(trace);
        if i == 1 {
            instances[0].power_mw = f64::NAN;
        }
        // A gap in the middle produces a segment with two runs.
        let offset = if gap && i >= script.len() / 2 {
            i + 3
        } else {
            i
        };
        partial = partial.merge(dx.map_shard(&[instances], offset));
    }
    partial
}

/// The canonical damaged-test vector: multiple runs, a merged
/// vocabulary, and a skipped (emptied) trace slot.
fn sample_bytes() -> Vec<u8> {
    let script: Vec<Vec<(usize, f64)>> = (0..5)
        .map(|i| {
            (0..=i % 3)
                .map(|j| ((i + j) % EVENTS.len(), 40.0 * (i + j + 1) as f64))
                .collect()
        })
        .collect();
    segment_bytes(&partial_of(&script, true).to_parts())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Round trip: reading a written segment reproduces the partial's
    /// parts exactly, and the footer summary agrees with the data.
    #[test]
    fn segments_round_trip_arbitrary_partials(
        script in script_strategy(), gap in any::<bool>()
    ) {
        let partial = partial_of(&script, gap);
        let parts = partial.to_parts();
        let bytes = segment_bytes(&parts);
        prop_assert_eq!(read_segment(&bytes).unwrap(), parts.clone());
        prop_assert_eq!(read_partial(&bytes).unwrap().to_parts(), parts);
        let meta = peek_meta(&bytes).unwrap();
        prop_assert_eq!(meta.trace_count, partial.trace_count() as u64);
        prop_assert_eq!(meta.file_bytes, bytes.len() as u64);
    }

    /// Every strict prefix of a segment is a typed error — the reader
    /// never runs off the end, whatever byte the cut lands on.
    #[test]
    fn any_truncation_is_a_typed_error(
        script in script_strategy(), gap in any::<bool>()
    ) {
        let bytes = segment_bytes(&partial_of(&script, gap).to_parts());
        for cut in 0..bytes.len() {
            let err = read_partial(&bytes[..cut])
                .expect_err("a strict prefix must not read");
            prop_assert!(
                matches!(
                    err,
                    SegmentError::Truncated { .. }
                        | SegmentError::BadMagic
                        | SegmentError::Malformed { .. }
                        | SegmentError::CrcMismatch { .. }
                ),
                "cut at {} gave unexpected error {:?}", cut, err
            );
        }
    }
}

/// Exhaustive single-bit damage: because the footer index tiles the
/// file and every block is CRC-framed, there is no byte a flip can
/// hide in. No flipped segment may read, and none may panic.
#[test]
fn every_single_bit_flip_is_rejected() {
    let bytes = sample_bytes();
    for index in 0..bytes.len() {
        for bit in 0..8u8 {
            let mut flipped = bytes.clone();
            flipped[index] ^= 1 << bit;
            assert!(
                read_partial(&flipped).is_err(),
                "flip at byte {index} bit {bit} read anyway"
            );
        }
    }
}

/// The shared fault injector (the same one the wire-v2 salvage and
/// checkpoint tests use) run against segments: bit flips and random
/// truncations all come back as typed errors.
#[test]
fn fault_injector_damage_is_survivable() {
    let bytes = sample_bytes();
    let mut injector = FaultInjector::new(0x5E61, 1.0);
    for kind in [FaultKind::BitFlip, FaultKind::Truncate] {
        for _ in 0..100 {
            for damaged in injector.corrupt(&bytes, kind) {
                let err = read_partial(&damaged)
                    .expect_err("damaged segment must not read");
                assert!(
                    matches!(
                        err,
                        SegmentError::Truncated { .. }
                            | SegmentError::BadMagic
                            | SegmentError::CrcMismatch { .. }
                            | SegmentError::Malformed { .. }
                    ),
                    "{kind}: unexpected error {err:?}"
                );
            }
        }
    }
}

#[test]
fn header_and_trailer_damage_is_classified_precisely() {
    let bytes = sample_bytes();

    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'X';
    assert_eq!(
        read_partial(&wrong_magic).unwrap_err(),
        SegmentError::BadMagic
    );

    let mut future_version = bytes.clone();
    future_version[4] = 9;
    assert_eq!(
        read_partial(&future_version).unwrap_err(),
        SegmentError::UnsupportedVersion(9)
    );

    let mut wrong_trailer = bytes.clone();
    let last = wrong_trailer.len() - 1;
    wrong_trailer[last] = b'X';
    assert_eq!(
        read_partial(&wrong_trailer).unwrap_err(),
        SegmentError::BadMagic
    );

    // Trailing garbage shifts the trailer away from the footer: the
    // reader must notice rather than read a stale index.
    let mut trailing = bytes.clone();
    trailing.push(0);
    assert!(read_partial(&trailing).is_err());
}

/// The footer-only open path classifies damage the same way the full
/// reader does, and a damaged column body — invisible to the footer —
/// is still caught by the full read.
#[test]
fn open_meta_and_full_read_split_the_damage_surface() {
    let dir = std::env::temp_dir()
        .join(format!("energydx-seg-damage-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let bytes = sample_bytes();
    let partial = read_partial(&bytes).unwrap();
    let path = dir.join("000001.seg");
    save_to(&path, &partial.to_parts()).unwrap();
    let meta = open_meta(&path).unwrap();
    assert_eq!(meta.trace_count, partial.trace_count() as u64);

    // Damage one byte inside the first column block: open_meta (which
    // never reads columns) still succeeds, the full read fails typed.
    let mut damaged = bytes.clone();
    damaged[8] ^= 0x01;
    std::fs::write(&path, &damaged).unwrap();
    assert!(open_meta(&path).is_ok());
    assert!(read_partial(&damaged).is_err());

    // Damage the trailer: both paths fail typed.
    let mut bad_trailer = bytes.clone();
    let last = bad_trailer.len() - 1;
    bad_trailer[last] ^= 0x01;
    std::fs::write(&path, &bad_trailer).unwrap();
    assert_eq!(open_meta(&path).unwrap_err(), SegmentError::BadMagic);

    std::fs::remove_dir_all(&dir).unwrap();
}
