//! Property tests for the 5-step analysis (DESIGN.md §6).

use energydx::pipeline::{step3_normalize, EventGroups};
use energydx::{AnalysisConfig, DiagnosisInput, EnergyDx};
use energydx_trace::event::EventInstance;
use energydx_trace::join::PoweredInstance;
use proptest::prelude::*;

fn instance(event: u8, start: u64, mw: f64) -> PoweredInstance {
    PoweredInstance {
        instance: EventInstance::new(
            format!("LE{};->cb", event % 5),
            start,
            start + 10,
        ),
        power_mw: mw,
    }
}

fn input() -> impl Strategy<Value = DiagnosisInput> {
    prop::collection::vec(
        prop::collection::vec((0u8..5, 1.0f64..2_000.0), 4..60),
        1..8,
    )
    .prop_map(|traces| {
        DiagnosisInput::new(
            traces
                .into_iter()
                .map(|t| {
                    t.into_iter()
                        .enumerate()
                        .map(|(i, (e, mw))| instance(e, i as u64 * 500, mw))
                        .collect()
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Normalization is scale-invariant: multiplying every power by a
    /// positive constant leaves the normalized series unchanged.
    #[test]
    fn normalization_is_scale_invariant(input in input(), scale in 0.1f64..50.0) {
        let config = AnalysisConfig {
            min_base_mw: 0.0, // the absolute floor breaks scale invariance by design
            ..AnalysisConfig::default()
        };
        let groups = EventGroups::collect(&input);
        let normalized = step3_normalize(&input, &groups, &config);

        let scaled_traces: Vec<Vec<PoweredInstance>> = input
            .traces()
            .iter()
            .map(|t| {
                t.iter()
                    .map(|p| PoweredInstance {
                        instance: p.instance.clone(),
                        power_mw: p.power_mw * scale,
                    })
                    .collect()
            })
            .collect();
        let scaled_input = DiagnosisInput::new(scaled_traces);
        let scaled_groups = EventGroups::collect(&scaled_input);
        let scaled_normalized = step3_normalize(&scaled_input, &scaled_groups, &config);

        for (a, b) in normalized.iter().flatten().zip(scaled_normalized.iter().flatten()) {
            prop_assert!((a - b).abs() < 1e-6_f64.max(a.abs() * 1e-9), "{a} vs {b}");
        }
    }

    /// Normalized power is non-negative and finite.
    #[test]
    fn normalized_power_is_well_formed(input in input()) {
        let config = AnalysisConfig::default();
        let groups = EventGroups::collect(&input);
        for series in step3_normalize(&input, &groups, &config) {
            for v in series {
                prop_assert!(v.is_finite() && v >= 0.0);
            }
        }
    }

    /// Constant-power traces never alarm, whatever the constant.
    #[test]
    fn flat_traces_never_alarm(level in 1.0f64..2_000.0, n in 8usize..60, traces in 1usize..6) {
        let input = DiagnosisInput::new(
            (0..traces)
                .map(|_| (0..n).map(|i| instance(i as u8, i as u64 * 500, level)).collect())
                .collect(),
        );
        let report = EnergyDx::default().diagnose(&input);
        prop_assert_eq!(report.manifestation_point_count(), 0);
    }

    /// Report shape invariants: fractions in (0, 1], proximity within
    /// the window, reported events bounded by top_k, and manifestation
    /// indices in range.
    #[test]
    fn report_shape_invariants(input in input()) {
        let config = AnalysisConfig::default();
        let window = config.window;
        let top_k = config.top_k;
        let report = EnergyDx::new(config).diagnose(&input);
        prop_assert!(report.reported_events().len() <= top_k);
        for e in &report.events {
            prop_assert!(e.impacted_fraction > 0.0 && e.impacted_fraction <= 1.0);
            prop_assert!(e.proximity <= window);
        }
        for (trace, analysis) in input.traces().iter().zip(&report.traces) {
            prop_assert_eq!(trace.len(), analysis.raw_power_mw.len());
            prop_assert_eq!(trace.len(), analysis.normalized_power.len());
            prop_assert_eq!(trace.len(), analysis.amplitudes.len());
            for p in &analysis.manifestation_points {
                prop_assert!(p.instance_index < trace.len());
            }
        }
    }

    /// Permuting the order of traces permutes the per-trace analyses
    /// but leaves the reported event set and fractions unchanged.
    #[test]
    fn trace_order_does_not_change_the_verdict(input in input()) {
        let report = EnergyDx::default().diagnose(&input);
        let mut reversed_traces = input.traces().to_vec();
        reversed_traces.reverse();
        let reversed = EnergyDx::default().diagnose(&DiagnosisInput::new(reversed_traces));

        let mut a: Vec<(String, String)> = report
            .events
            .iter()
            .map(|e| (e.event.clone(), format!("{:.9}", e.impacted_fraction)))
            .collect();
        let mut b: Vec<(String, String)> = reversed
            .events
            .iter()
            .map(|e| (e.event.clone(), format!("{:.9}", e.impacted_fraction)))
            .collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        prop_assert_eq!(
            report.manifestation_point_count(),
            reversed.manifestation_point_count()
        );
    }

    /// A strong sustained level shift injected into one trace of an
    /// otherwise-quiet population is always detected, at the shift
    /// onset, in that trace only. (With arbitrary per-group baselines
    /// detection is not guaranteed — the anomaly must be a minority of
    /// its event groups, which is the paper's many-users setting.)
    #[test]
    fn injected_level_shift_is_detected(
        traces in 3usize..8,
        n in 16usize..60,
        shift_at_fraction in 0.3f64..0.8,
        factor in 8.0f64..40.0,
    ) {
        let shift_at = ((n as f64 * shift_at_fraction) as usize).clamp(2, n - 4);
        let victim = 0usize;
        let input = DiagnosisInput::new(
            (0..traces)
                .map(|t| {
                    (0..n)
                        .map(|i| {
                            let mw = if t == victim && i >= shift_at {
                                100.0 * factor
                            } else {
                                100.0
                            };
                            instance(i as u8, i as u64 * 500, mw)
                        })
                        .collect()
                })
                .collect(),
        );
        let report = EnergyDx::default().diagnose(&input);
        prop_assert_eq!(report.impacted_traces(), vec![victim]);
        let points = &report.traces[victim].manifestation_points;
        prop_assert!(
            points.iter().any(|p| p.instance_index.abs_diff(shift_at) <= 2),
            "shift at {shift_at} not found; points {points:?}"
        );
    }
}
