//! Property tests for the shard-partial algebra and its serializable
//! parts form.
//!
//! The merge law (`tests/diff_harness.rs` at the workspace root) makes
//! any shard split finish to the reference report; these tests pin the
//! two pieces the fleet daemon leans on: the **unit element**
//! ([`ShardPartial::empty`] merges as an identity from either side)
//! and the **parts round trip** (`to_parts` → `from_parts` rebuilds a
//! structurally equal partial, so a checkpointed epoch analyzes to the
//! same bytes after a restore).

use energydx::shard::{PartsError, ShardPartial, ShardPartialParts};
use energydx::{DiagnosisInput, EnergyDx};
use energydx_trace::event::EventInstance;
use energydx_trace::intern::{EventId, InternedTrace};
use energydx_trace::join::PoweredInstance;
use proptest::prelude::*;

fn powered(event: &str, index: u64, mw: f64) -> PoweredInstance {
    let start = index * 500;
    PoweredInstance {
        instance: EventInstance::new(event, start, start + 100),
        power_mw: mw,
    }
}

/// Random fleets over a small vocabulary, with occasional NaNs so the
/// skip list is exercised.
fn random_fleet() -> impl Strategy<Value = DiagnosisInput> {
    const VOCAB: [&str; 6] = [
        "net.poll",
        "ui.draw",
        "db.query",
        "gps.fix",
        "idle",
        "push.recv",
    ];
    let power = (0u8..16, 1.0f64..800.0).prop_map(|(roll, mw)| {
        if roll == 0 {
            f64::NAN
        } else {
            mw
        }
    });
    let trace = prop::collection::vec((0usize..VOCAB.len(), power), 0..24)
        .prop_map(|items| {
            items
                .into_iter()
                .enumerate()
                .map(|(i, (event, mw))| powered(VOCAB[event], i as u64, mw))
                .collect::<Vec<_>>()
        });
    prop::collection::vec(trace, 0..8).prop_map(DiagnosisInput::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The unit element of the merge law: merging the empty partial
    /// into any partial — from either side — changes nothing, and an
    /// empty-seeded fold equals the partial itself. Compaction folds
    /// delta lists from `ShardPartial::empty()`, so this identity is
    /// what makes a compacted epoch equal to its uncompacted deltas.
    #[test]
    fn empty_partial_is_a_two_sided_merge_identity(
        input in random_fleet(),
        offset in 0usize..32,
    ) {
        let dx = EnergyDx::default();
        let mapped = dx.map_shard(input.traces(), offset);
        prop_assert!(ShardPartial::empty().is_empty());
        prop_assert_eq!(
            mapped.clone().merge(ShardPartial::empty()),
            mapped.clone(),
            "right identity violated"
        );
        prop_assert_eq!(
            ShardPartial::empty().merge(mapped.clone()),
            mapped.clone(),
            "left identity violated"
        );
        prop_assert_eq!(
            ShardPartial::empty().merge(ShardPartial::empty()),
            ShardPartial::empty()
        );
        // is_empty agrees with the identity: only the unit reports it.
        prop_assert_eq!(
            mapped.is_empty(),
            mapped == ShardPartial::empty()
        );
    }

    /// `to_parts` → `from_parts` is lossless: the rebuilt partial is
    /// structurally equal (groups re-derived from traces included) and
    /// finishes to byte-identical reports.
    #[test]
    fn parts_round_trip_is_lossless(
        input in random_fleet(),
        cut in 0usize..8,
    ) {
        let dx = EnergyDx::default();
        let traces = input.traces();
        let cut = cut.min(traces.len());
        // A two-segment partial (when the cut is interior) exercises
        // the multi-segment encoding; merging after restoring each
        // side must still finish to the reference.
        let left = dx.map_shard(&traces[..cut], 0);
        let right = dx.map_shard(&traces[cut..], cut);
        for partial in [left.clone(), right.clone(), left.merge(right)] {
            let rebuilt = ShardPartial::from_parts(partial.to_parts())
                .expect("parts of a real partial must validate");
            prop_assert_eq!(&rebuilt, &partial);
        }
        let whole = dx.map_shard(traces, 0);
        let rebuilt = ShardPartial::from_parts(whole.to_parts()).unwrap();
        prop_assert_eq!(
            dx.finish(rebuilt).unwrap().to_canonical_json(),
            dx.diagnose_reference(&input).to_canonical_json()
        );
    }
}

#[test]
fn from_parts_rejects_unsorted_vocabulary() {
    let parts = ShardPartialParts {
        names: vec!["b".into(), "a".into()],
        segments: vec![],
    };
    assert_eq!(
        ShardPartial::from_parts(parts),
        Err(PartsError::VocabularyNotCanonical)
    );
    let dup = ShardPartialParts {
        names: vec!["a".into(), "a".into()],
        segments: vec![],
    };
    assert_eq!(
        ShardPartial::from_parts(dup),
        Err(PartsError::VocabularyNotCanonical)
    );
}

#[test]
fn from_parts_rejects_out_of_range_ids() {
    let trace = InternedTrace::from_columns(
        vec![EventId::from_index(0), EventId::from_index(3)],
        vec![10.0, 20.0],
    )
    .unwrap();
    let parts = ShardPartialParts {
        names: vec!["a".into(), "b".into()],
        segments: vec![energydx::shard::SegmentParts {
            offset: 0,
            traces: vec![trace],
            skipped: vec![],
        }],
    };
    assert_eq!(
        ShardPartial::from_parts(parts),
        Err(PartsError::IdOutOfRange {
            trace: 0,
            id: 3,
            vocab: 2
        })
    );
}

#[test]
fn from_parts_rejects_overlapping_segments() {
    let t = || {
        InternedTrace::from_columns(vec![EventId::from_index(0)], vec![1.0])
            .unwrap()
    };
    let seg = |offset: usize| energydx::shard::SegmentParts {
        offset,
        traces: vec![t(), t()],
        skipped: vec![],
    };
    let parts = ShardPartialParts {
        names: vec!["a".into()],
        segments: vec![seg(0), seg(1)],
    };
    assert_eq!(
        ShardPartial::from_parts(parts),
        Err(PartsError::OverlappingSegments {
            first: 0,
            second: 1
        })
    );
}

#[test]
fn from_parts_rejects_malformed_skip_entries() {
    let full =
        InternedTrace::from_columns(vec![EventId::from_index(0)], vec![1.0])
            .unwrap();
    // Skip entry outside the segment range.
    let outside = ShardPartialParts {
        names: vec!["a".into()],
        segments: vec![energydx::shard::SegmentParts {
            offset: 2,
            traces: vec![InternedTrace::default()],
            skipped: vec![(9, 1)],
        }],
    };
    assert_eq!(
        ShardPartial::from_parts(outside),
        Err(PartsError::SkippedOutOfSegment { index: 9 })
    );
    // Skip entry naming a trace that still has instances.
    let not_emptied = ShardPartialParts {
        names: vec!["a".into()],
        segments: vec![energydx::shard::SegmentParts {
            offset: 0,
            traces: vec![full],
            skipped: vec![(0, 2)],
        }],
    };
    assert_eq!(
        ShardPartial::from_parts(not_emptied),
        Err(PartsError::SkippedNotEmptied { index: 0 })
    );
}

#[test]
fn from_parts_of_empty_parts_is_the_empty_partial() {
    let parts = ShardPartialParts {
        names: vec![],
        segments: vec![],
    };
    let partial = ShardPartial::from_parts(parts).unwrap();
    assert!(partial.is_empty());
    assert_eq!(partial, ShardPartial::empty());
}
