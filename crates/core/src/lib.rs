//! EnergyDx: diagnosing energy anomaly in mobile apps by identifying
//! the manifestation point.
//!
//! This crate implements the paper's core contribution — the 5-step
//! manifestation analysis of Section III — over traces collected from
//! many users:
//!
//! 1. **Power estimation of events** ([`input`]): event instances are
//!    joined with the app power trace by timestamp (the join itself
//!    lives in [`energydx_trace::join`]).
//! 2. **Event ranking** ([`pipeline::step2_rank`]): all instances of
//!    the same event across all traces are ranked by power.
//! 3. **Event normalization** ([`pipeline::step3_normalize`]): each
//!    instance is normalized to the 10th-percentile power of its event
//!    group, removing raw inter-event power differences.
//! 4. **Manifestation point detection**
//!    ([`pipeline::step4_detect`]): variation amplitudes over
//!    monotone runs of normalized power, then Tukey outlier detection
//!    with the upper outer fence `Q3 + 3·IQR`.
//! 5. **Reporting problematic events**
//!    ([`pipeline::step5_report`]): events inside the manifestation
//!    window, sorted by how closely the fraction of impacted traces
//!    matches the developer-reported fraction of impacted users.
//!
//! The pipeline scales past a single core: [`par`] is the
//! deterministic worker pool, [`shard`] the map/merge/finish dataflow
//! that analyzes the fleet in mergeable shards, and [`json`] the
//! canonical report rendering the differential harness compares byte
//! for byte — sequential, parallel, and sharded execution produce
//! identical reports.
//!
//! The façade type is [`EnergyDx`]; the evaluation metric is
//! [`report::CodeIndex::code_reduction`]; [`distance`] computes the
//! Fig.-1 *event distance* between the known root cause and the
//! detected manifestation point.
//!
//! # Examples
//!
//! ```
//! use energydx::{AnalysisConfig, DiagnosisInput, EnergyDx};
//! use energydx_trace::event::EventInstance;
//! use energydx_trace::join::PoweredInstance;
//!
//! // Two synthetic user traces: the second shows an ABD after "Cfg".
//! let normal: Vec<PoweredInstance> = (0..20)
//!     .map(|i| PoweredInstance {
//!         instance: EventInstance::new("LA;->onResume", i * 1000, i * 1000 + 10),
//!         power_mw: 100.0,
//!     })
//!     .collect();
//! let mut faulty = normal.clone();
//! for p in faulty.iter_mut().skip(10) {
//!     p.power_mw = 500.0; // abnormal from instance 10 on
//! }
//! let input = DiagnosisInput::new(vec![normal, faulty]);
//! let report = EnergyDx::new(AnalysisConfig::default()).diagnose(&input);
//! assert_eq!(report.traces[1].manifestation_points.len(), 1);
//! assert!(report.traces[0].manifestation_points.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amplitude;
pub mod config;
pub mod distance;
pub mod explain;
pub mod input;
pub mod json;
pub mod par;
pub mod pipeline;
pub mod report;
pub mod shard;

pub use config::AnalysisConfig;
pub use input::DiagnosisInput;
pub use json::JsonWriter;
pub use pipeline::EnergyDx;
pub use report::{
    AnalysisStats, CodeIndex, DiagnosisReport, RankedEvent, SkippedTrace,
    TraceAnalysis,
};
pub use shard::{AnalyzedFleet, ShardError, ShardPartial};
