//! Diagnosis reports and the code-reduction metric.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One detected manifestation point in one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestationPoint {
    /// Index of the instance in the trace's chronological order.
    pub instance_index: usize,
    /// The event whose instance sits at the point.
    pub event: String,
    /// The variation amplitude that crossed the fence.
    pub amplitude: f64,
}

/// An event reported to the developer with the fraction of traces it
/// impacted (the `%` column of Tables II, IV, V, VI).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedEvent {
    /// The event identifier.
    pub event: String,
    /// Fraction of collected traces whose manifestation window
    /// contains this event.
    pub impacted_fraction: f64,
    /// Smallest observed distance (in events) between an instance of
    /// this event and a manifestation point; ties on the fraction are
    /// broken by proximity, so the events closest to the transition
    /// surface first.
    pub proximity: usize,
}

/// Per-trace intermediate series — everything needed to re-plot the
/// paper's per-app diagnosis figures (7a/b/c, 8, 9, 10, 12, 13, 15).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceAnalysis {
    /// Raw per-instance power (Fig. 7a).
    pub raw_power_mw: Vec<f64>,
    /// The event of each instance, parallel to the series.
    pub events: Vec<String>,
    /// Normalized power after Steps 2–3 (Fig. 7b).
    pub normalized_power: Vec<f64>,
    /// Variation amplitudes (Fig. 7c).
    pub amplitudes: Vec<f64>,
    /// The Tukey upper outer fence used for detection (Fig. 8), when
    /// the trace was long enough to compute quartiles.
    pub upper_fence: Option<f64>,
    /// Detected manifestation points.
    pub manifestation_points: Vec<ManifestationPoint>,
}

/// One trace the analysis excluded rather than crashed on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkippedTrace {
    /// Index of the trace in the input.
    pub index: usize,
    /// Why it was excluded (e.g. non-finite power values).
    pub reason: String,
}

/// How the analysis coped with its input: what ran, what was isolated.
///
/// Fleet traces pass through lossy radios and salvaged decodes before
/// they reach analysis, so a damaged trace is an expected input, not a
/// programming error — it is skipped and accounted for here instead of
/// panicking the whole diagnosis.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AnalysisStats {
    /// Traces in the input.
    pub total_traces: usize,
    /// Traces that took part in the analysis.
    pub analyzed_traces: usize,
    /// Traces excluded, with reasons; their [`TraceAnalysis`] entries
    /// are empty placeholders so the report stays parallel to the
    /// input.
    pub skipped: Vec<SkippedTrace>,
    /// Event groups whose statistics were degenerate and dropped from
    /// the rankings (zero with sane input; non-zero only if a caller
    /// bypasses input sanitation).
    pub degenerate_groups: usize,
}

impl AnalysisStats {
    /// Whether every input trace was analyzed cleanly.
    pub fn is_clean(&self) -> bool {
        self.skipped.is_empty() && self.degenerate_groups == 0
    }
}

/// The complete output of [`crate::EnergyDx::diagnose`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagnosisReport {
    /// Per-trace analysis, parallel to the input traces.
    pub traces: Vec<TraceAnalysis>,
    /// All impacted events sorted by closeness to the developer
    /// fraction (Step 5).
    pub events: Vec<RankedEvent>,
    /// Step-2 rankings per event group (exposed for the figures).
    pub rankings: BTreeMap<String, Vec<f64>>,
    /// How many events [`DiagnosisReport::reported_events`] returns.
    pub top_k: usize,
    /// What the analysis skipped or isolated along the way.
    pub stats: AnalysisStats,
}

impl DiagnosisReport {
    /// The events handed to the developer: the `top_k` whose impacted
    /// fraction is closest to the developer-reported fraction.
    pub fn reported_events(&self) -> &[RankedEvent] {
        &self.events[..self.events.len().min(self.top_k)]
    }

    /// Total manifestation points across traces.
    pub fn manifestation_point_count(&self) -> usize {
        self.traces
            .iter()
            .map(|t| t.manifestation_points.len())
            .sum()
    }

    /// Indices of traces with at least one detection.
    pub fn impacted_traces(&self) -> Vec<usize> {
        self.traces
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.manifestation_points.is_empty())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Source-line accounting for the code-reduction metric (§IV-B):
/// `code reduction = (N_All − N_Diagnosis) / N_All`.
///
/// Built from the app package by the caller (so the analysis crate does
/// not depend on the IR crate).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CodeIndex {
    /// Total source lines of the app (`N_All`).
    pub total_lines: u64,
    /// Event identifier → source lines of its callback.
    pub lines_by_event: BTreeMap<String, u64>,
}

impl CodeIndex {
    /// Creates an index.
    pub fn new(total_lines: u64) -> Self {
        CodeIndex {
            total_lines,
            lines_by_event: BTreeMap::new(),
        }
    }

    /// Registers one event's callback size.
    pub fn insert(&mut self, event: impl Into<String>, lines: u64) {
        self.lines_by_event.insert(event.into(), lines);
    }

    /// Lines the developer must inspect for a set of reported events
    /// (`N_Diagnosis`). Events without line info (e.g. the synthetic
    /// `Idle(No_Display)`) contribute 0 — there is no app code behind
    /// them.
    pub fn diagnosis_lines(&self, events: &[RankedEvent]) -> u64 {
        let mut seen = std::collections::BTreeSet::new();
        events
            .iter()
            .filter(|e| seen.insert(e.event.as_str()))
            .filter_map(|e| self.lines_by_event.get(&e.event))
            .sum()
    }

    /// The code-reduction metric for a set of reported events.
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx::report::{CodeIndex, RankedEvent};
    /// let mut idx = CodeIndex::new(1000);
    /// idx.insert("LA;->onResume", 70);
    /// let reported = vec![RankedEvent {
    ///     event: "LA;->onResume".into(),
    ///     impacted_fraction: 0.2,
    ///     proximity: 0,
    /// }];
    /// assert_eq!(idx.code_reduction(&reported), 0.93);
    /// ```
    pub fn code_reduction(&self, events: &[RankedEvent]) -> f64 {
        if self.total_lines == 0 {
            return 0.0;
        }
        let diag = self.diagnosis_lines(events).min(self.total_lines);
        (self.total_lines - diag) as f64 / self.total_lines as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranked(event: &str) -> RankedEvent {
        RankedEvent {
            event: event.to_string(),
            impacted_fraction: 0.1,
            proximity: 0,
        }
    }

    #[test]
    fn reported_events_truncate_to_top_k() {
        let report = DiagnosisReport {
            traces: vec![],
            events: (0..10).map(|i| ranked(&format!("E{i}"))).collect(),
            rankings: BTreeMap::new(),
            top_k: 6,
            stats: Default::default(),
        };
        assert_eq!(report.reported_events().len(), 6);
    }

    #[test]
    fn reported_events_handle_fewer_than_top_k() {
        let report = DiagnosisReport {
            traces: vec![],
            events: vec![ranked("A")],
            rankings: BTreeMap::new(),
            top_k: 6,
            stats: Default::default(),
        };
        assert_eq!(report.reported_events().len(), 1);
    }

    #[test]
    fn code_reduction_counts_unique_events_once() {
        let mut idx = CodeIndex::new(100);
        idx.insert("A", 10);
        let events = vec![ranked("A"), ranked("A")];
        assert_eq!(idx.diagnosis_lines(&events), 10);
        assert_eq!(idx.code_reduction(&events), 0.9);
    }

    #[test]
    fn unknown_events_cost_nothing() {
        let idx = CodeIndex::new(100);
        assert_eq!(idx.code_reduction(&[ranked("Idle(No_Display)")]), 1.0);
    }

    #[test]
    fn zero_total_lines_yields_zero_reduction() {
        let idx = CodeIndex::new(0);
        assert_eq!(idx.code_reduction(&[]), 0.0);
    }

    #[test]
    fn diagnosis_lines_never_exceed_total() {
        let mut idx = CodeIndex::new(5);
        idx.insert("A", 10);
        assert_eq!(idx.code_reduction(&[ranked("A")]), 0.0);
    }

    #[test]
    fn impacted_traces_lists_detections() {
        let hit = TraceAnalysis {
            raw_power_mw: vec![],
            events: vec![],
            normalized_power: vec![],
            amplitudes: vec![],
            upper_fence: None,
            manifestation_points: vec![ManifestationPoint {
                instance_index: 0,
                event: "E".into(),
                amplitude: 9.0,
            }],
        };
        let miss = TraceAnalysis {
            manifestation_points: vec![],
            ..hit.clone()
        };
        let report = DiagnosisReport {
            traces: vec![miss.clone(), hit, miss],
            events: vec![],
            rankings: BTreeMap::new(),
            top_k: 6,
            stats: Default::default(),
        };
        assert_eq!(report.impacted_traces(), vec![1]);
        assert_eq!(report.manifestation_point_count(), 1);
    }
}
