//! The 5-step manifestation analysis pipeline.
//!
//! Each step is a standalone public function (C-INTERMEDIATE: callers
//! — the figures-regeneration benches in particular — need the
//! intermediate series, not just the final report); [`EnergyDx`] is the
//! façade chaining them.

use crate::amplitude::{sustained_amplitudes, variation_amplitudes};
use crate::config::AnalysisConfig;
use crate::input::DiagnosisInput;
use crate::report::{
    AnalysisStats, DiagnosisReport, ManifestationPoint, RankedEvent,
    SkippedTrace, TraceAnalysis,
};
use energydx_obsv::Metrics;
use energydx_stats::outlier::TukeyFences;
use energydx_stats::{average_ranks, percentile_many};
use energydx_trace::intern::{EventId, InternedTrace};
use energydx_trace::join::PoweredInstance;
use std::collections::BTreeMap;

/// Per-event-group power statistics shared by Steps 2 and 3.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EventGroups {
    /// Event key → power of every instance of that event, across all
    /// traces, in trace order.
    pub powers: BTreeMap<String, Vec<f64>>,
}

impl EventGroups {
    /// Collects per-event power populations from the input.
    pub fn collect(input: &DiagnosisInput) -> Self {
        Self::collect_traces(input.traces())
    }

    /// Collects per-event power populations from a run of traces (a
    /// shard of the fleet, or the whole of it).
    pub fn collect_traces(traces: &[Vec<PoweredInstance>]) -> Self {
        let mut powers: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for trace in traces {
            for p in trace {
                powers
                    .entry(p.instance.event.clone())
                    .or_default()
                    .push(p.power_mw);
            }
        }
        EventGroups { powers }
    }

    /// Appends another partial's populations after this one's.
    ///
    /// When `later` was collected from the traces that immediately
    /// follow this partial's in fleet order, the result is identical to
    /// one [`EventGroups::collect_traces`] pass over the concatenated
    /// run — group vectors stay in trace order, which is what makes
    /// shard-level collection equivalent to sequential collection.
    pub fn merge(&mut self, later: EventGroups) {
        for (event, powers) in later.powers {
            self.powers.entry(event).or_default().extend(powers);
        }
    }
}

/// Step 2: ranks all instances of each event across all traces by
/// power (average ranks on ties). Returned in the same grouping as
/// [`EventGroups::collect`].
///
/// # Examples
///
/// ```
/// # use energydx::pipeline::{step2_rank, EventGroups};
/// # use energydx::DiagnosisInput;
/// # use energydx_trace::event::EventInstance;
/// # use energydx_trace::join::PoweredInstance;
/// let mk = |mw: f64| PoweredInstance {
///     instance: EventInstance::new("E", 0, 1),
///     power_mw: mw,
/// };
/// let input = DiagnosisInput::new(vec![vec![mk(10.0), mk(30.0), mk(20.0)]]);
/// let ranks = step2_rank(&EventGroups::collect(&input));
/// assert_eq!(ranks["E"], vec![1.0, 3.0, 2.0]);
/// ```
pub fn step2_rank(groups: &EventGroups) -> BTreeMap<String, Vec<f64>> {
    groups
        .powers
        .iter()
        .filter_map(|(event, powers)| {
            // Groups are non-empty and finite after input sanitation;
            // a degenerate group (NaN smuggled past it) is dropped
            // rather than panicking mid-analysis.
            let ranks = average_ranks(powers).ok()?;
            Some((event.clone(), ranks))
        })
        .collect()
}

/// Step 3: normalizes every instance to the configured percentile
/// (default 10th) of its event group. Returns one normalized-power
/// series per trace, parallel to the input.
pub fn step3_normalize(
    input: &DiagnosisInput,
    groups: &EventGroups,
    config: &AnalysisConfig,
) -> Vec<Vec<f64>> {
    let bases = group_bases(groups, config);
    input
        .traces()
        .iter()
        .map(|trace| normalize_trace(trace, &bases, config))
        .collect()
}

/// The Step-3 normalization base of every non-degenerate event group:
/// the configured percentile, guarded from below by a fraction of the
/// median and by the absolute floor.
pub(crate) fn group_bases<'a>(
    groups: &'a EventGroups,
    config: &AnalysisConfig,
) -> BTreeMap<&'a str, f64> {
    groups
        .powers
        .iter()
        .filter_map(|(event, powers)| {
            // One sort serves both the percentile and the median;
            // `percentile_many` is bit-identical to two independent
            // `percentile` calls.
            let pm = percentile_many(powers, &[config.base_percentile, 50.0])
                .ok()?;
            let base = pm[0]
                .max(pm[1] * config.base_guard_fraction)
                .max(config.min_base_mw);
            (base.is_finite() && base > 0.0).then_some((event.as_str(), base))
        })
        .collect()
}

/// Normalizes one trace against the per-event bases — the pure
/// per-trace unit of Step 3.
pub(crate) fn normalize_trace(
    trace: &[PoweredInstance],
    bases: &BTreeMap<&str, f64>,
    config: &AnalysisConfig,
) -> Vec<f64> {
    trace
        .iter()
        .map(|p| {
            // An event missing its base (degenerate group, or groups
            // computed over different input) falls back to the
            // configured floor instead of panicking.
            let base = bases
                .get(p.instance.event.as_str())
                .copied()
                .unwrap_or(config.min_base_mw.max(f64::MIN_POSITIVE));
            p.power_mw / base
        })
        .collect()
}

/// [`normalize_trace`] over the interned representation: bases are a
/// dense table indexed by [`EventId`], `None` marking a degenerate
/// group. Performs the identical division (same fallback), so the
/// output is bit-identical to the string-keyed path.
pub(crate) fn normalize_interned(
    trace: &InternedTrace,
    bases: &[Option<f64>],
    config: &AnalysisConfig,
) -> Vec<f64> {
    trace
        .ids()
        .iter()
        .zip(trace.powers())
        .map(|(&id, &mw)| {
            let base = bases[id.index()]
                .unwrap_or(config.min_base_mw.max(f64::MIN_POSITIVE));
            mw / base
        })
        .collect()
}

/// Step 4: variation amplitudes and Tukey-fence outlier detection.
/// Returns, per trace, `(amplitudes, fence, outlier indices)`; traces
/// with fewer than 4 instances cannot produce meaningful quartiles and
/// yield no detections. Detection runs on the sustained amplitude when
/// `config.sustained_window > 0`, and on the paper's raw run-difference
/// amplitude otherwise.
pub fn step4_detect(
    normalized: &[Vec<f64>],
    config: &AnalysisConfig,
) -> Vec<(Vec<f64>, Option<TukeyFences>, Vec<usize>)> {
    normalized
        .iter()
        .map(|series| detect_series(series, config))
        .collect()
}

/// Detection over one normalized series — the pure per-trace unit of
/// Step 4.
pub(crate) fn detect_series(
    series: &[f64],
    config: &AnalysisConfig,
) -> (Vec<f64>, Option<TukeyFences>, Vec<usize>) {
    let amplitudes = if config.sustained_window > 0 {
        sustained_amplitudes(series, config.sustained_window)
    } else {
        variation_amplitudes(series)
    };
    if amplitudes.len() < 4 {
        return (amplitudes, None, Vec::new());
    }
    // Degenerate amplitude data (possible only when a caller bypasses
    // input sanitation) yields no detections rather than a panic.
    let Ok(fences) = TukeyFences::from_data(&amplitudes, config.fence_k) else {
        return (amplitudes, None, Vec::new());
    };
    let raw_outliers: Vec<usize> = amplitudes
        .iter()
        .enumerate()
        .filter(|(_, &v)| v > fences.upper + config.min_fence_excess)
        .map(|(i, _)| i)
        .collect();
    // One level shift makes several adjacent instances cross the fence
    // (the windowed median moves over the onset); collapse each
    // consecutive run to its strongest instance so one transition is
    // one manifestation point.
    let mut outliers: Vec<usize> = Vec::new();
    let mut run: Vec<usize> = Vec::new();
    for &idx in &raw_outliers {
        if run.last().is_some_and(|&last| idx > last + 1) {
            outliers.extend(argmax_of(&run, &amplitudes));
            run.clear();
        }
        run.push(idx);
    }
    outliers.extend(argmax_of(&run, &amplitudes));
    (amplitudes, Some(fences), outliers)
}

/// The index (from `candidates`) with the largest amplitude; `None`
/// for an empty run. `total_cmp` keeps the comparison total even if a
/// NaN slips through, so this can never panic.
fn argmax_of(candidates: &[usize], amplitudes: &[f64]) -> Option<usize> {
    candidates
        .iter()
        .copied()
        .max_by(|&a, &b| amplitudes[a].total_cmp(&amplitudes[b]))
}

/// Step 5: gathers the events inside each manifestation window,
/// computes per-event impacted-trace fractions, and sorts by distance
/// to the developer-reported fraction. The tie-break chain after the
/// fraction distance is total and deterministic: higher impacted
/// fraction, then smaller window proximity, then event name.
pub fn step5_report(
    input: &DiagnosisInput,
    detections: &[(Vec<f64>, Option<TukeyFences>, Vec<usize>)],
    config: &AnalysisConfig,
) -> Vec<RankedEvent> {
    let mut total = 0usize;
    let mut by_event: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for (trace, (_, _, outliers)) in input.traces().iter().zip(detections) {
        total += 1;
        for (event, distance) in trace_impact(trace, outliers, config) {
            let entry = by_event.entry(event).or_insert((0, usize::MAX));
            entry.0 += 1;
            entry.1 = entry.1.min(distance);
        }
    }
    if total == 0 {
        return Vec::new();
    }
    let mut ranked: Vec<RankedEvent> = by_event
        .into_iter()
        .map(|(event, (count, proximity))| RankedEvent {
            event,
            impacted_fraction: count as f64 / total as f64,
            proximity,
        })
        .collect();
    sort_ranked_events(&mut ranked, config);
    ranked
}

/// The Step-5 ordering shared by the reference and the dense hot path:
/// distance to the developer fraction, then higher impacted fraction,
/// then smaller proximity, then event name. The final name tie-break
/// makes the chain total, so the result does not depend on the
/// pre-sort order.
pub(crate) fn sort_ranked_events(
    ranked: &mut [RankedEvent],
    config: &AnalysisConfig,
) {
    ranked.sort_by(|a, b| {
        let da = (a.impacted_fraction - config.developer_fraction).abs();
        let db = (b.impacted_fraction - config.developer_fraction).abs();
        da.total_cmp(&db)
            .then_with(|| b.impacted_fraction.total_cmp(&a.impacted_fraction))
            .then_with(|| a.proximity.cmp(&b.proximity))
            .then_with(|| a.event.cmp(&b.event))
    });
}

/// The events whose instances fall inside any of one trace's
/// manifestation windows, with their smallest distance to a window
/// center — the pure per-trace unit of Step 5. Fold the results
/// (counts add, distances take the minimum), in any order, to recover
/// the global Step-5 aggregation.
pub(crate) fn trace_impact(
    trace: &[PoweredInstance],
    outliers: &[usize],
    config: &AnalysisConfig,
) -> BTreeMap<String, usize> {
    let mut impact: BTreeMap<String, usize> = BTreeMap::new();
    for &center in outliers {
        let lo = center.saturating_sub(config.window);
        let hi = (center + config.window).min(trace.len().saturating_sub(1));
        for (i, p) in trace[lo..=hi].iter().enumerate() {
            let distance = (lo + i).abs_diff(center);
            impact
                .entry(p.instance.event.clone())
                .and_modify(|d| *d = (*d).min(distance))
                .or_insert(distance);
        }
    }
    impact
}

/// [`trace_impact`] over the interned representation. Returns
/// `(event, smallest distance)` pairs — each event at most once — as a
/// small vector with linear-scan dedup: manifestation windows span a
/// handful of instances, so a map would cost more than it saves, and
/// the consumer indexes by id anyway.
pub(crate) fn trace_impact_interned(
    trace: &InternedTrace,
    outliers: &[usize],
    config: &AnalysisConfig,
) -> Vec<(EventId, usize)> {
    let mut impact: Vec<(EventId, usize)> = Vec::new();
    for &center in outliers {
        let lo = center.saturating_sub(config.window);
        let hi = (center + config.window).min(trace.len().saturating_sub(1));
        for (i, &id) in trace.ids()[lo..=hi].iter().enumerate() {
            let distance = (lo + i).abs_diff(center);
            match impact.iter_mut().find(|(e, _)| *e == id) {
                Some((_, d)) => *d = (*d).min(distance),
                None => impact.push((id, distance)),
            }
        }
    }
    impact
}

/// The EnergyDx analyzer: configuration plus the chained pipeline.
#[derive(Debug, Clone, Default)]
pub struct EnergyDx {
    config: AnalysisConfig,
    jobs: usize,
    pub(crate) metrics: Metrics,
}

impl EnergyDx {
    /// Creates an analyzer with the given configuration and automatic
    /// worker-pool sizing (see [`crate::par::resolve_jobs`]).
    pub fn new(config: AnalysisConfig) -> Self {
        EnergyDx {
            config,
            jobs: 0,
            metrics: Metrics::disabled(),
        }
    }

    /// Attaches a metrics handle: every pipeline stage then records
    /// its duration into `energydx_stage_duration_seconds{stage=...}`.
    /// The default handle is disabled and stage timing costs nothing.
    /// Timing wraps whole stages, never per-instance work, so reports
    /// stay byte-identical with metrics on or off.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// The attached metrics handle (disabled by default).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Sets the worker-pool size for [`EnergyDx::diagnose`]. `0` (the
    /// default) auto-sizes from the environment; `1` forces sequential
    /// execution. The report is byte-identical at every setting.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// The configured worker-pool size (`0` = auto).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The active configuration.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Runs Steps 2–5 over joined traces (Step 1 happens when the
    /// input is constructed) and assembles the full report, including
    /// the per-trace intermediate series needed to regenerate
    /// Figs. 7–10, 12, 13, and 15.
    ///
    /// Per-trace and per-event-group work runs on a worker pool of
    /// [`EnergyDx::jobs`] threads (see [`crate::par`]); the report is
    /// byte-identical to [`EnergyDx::diagnose_reference`] at every
    /// thread count — the guarantee the differential harness in
    /// `tests/diff_harness.rs` enforces.
    ///
    /// Diagnosis never panics on damaged input: traces carrying
    /// non-finite power are excluded (their report slot stays, empty)
    /// and accounted for in [`DiagnosisReport::stats`], so one corrupt
    /// upload cannot take down the analysis of an entire fleet.
    pub fn diagnose(&self, input: &DiagnosisInput) -> DiagnosisReport {
        let partial = self.map_shard(input.traces(), 0);
        self.finish(partial)
            .expect("a single shard at offset 0 is a complete fleet")
    }

    /// The textbook sequential implementation of Steps 2–5 — the ground
    /// truth the parallel and sharded paths are differentially tested
    /// against. Prefer [`EnergyDx::diagnose`]; this one exists so the
    /// equivalence claim is checked against an independent, straight-
    /// line implementation rather than against the parallel code with
    /// one thread.
    pub fn diagnose_reference(
        &self,
        input: &DiagnosisInput,
    ) -> DiagnosisReport {
        let (input, skipped) = input.sanitized();
        let input = &input;
        let groups = EventGroups::collect(input);
        let rankings = {
            let _span = self.metrics.span("rank");
            step2_rank(&groups)
        };
        let normalized = {
            let _span = self.metrics.span("normalize");
            step3_normalize(input, &groups, &self.config)
        };
        let detections = {
            let _span = self.metrics.span("detect");
            step4_detect(&normalized, &self.config)
        };
        let ranked_events = {
            let _span = self.metrics.span("report");
            step5_report(input, &detections, &self.config)
        };

        let stats = AnalysisStats {
            total_traces: input.len(),
            analyzed_traces: input.len() - skipped.len(),
            skipped: skipped
                .into_iter()
                .map(|(index, count)| SkippedTrace {
                    index,
                    reason: format!("{count} non-finite power value(s)"),
                })
                .collect(),
            degenerate_groups: groups.powers.len() - rankings.len(),
        };

        let traces: Vec<TraceAnalysis> = input
            .traces()
            .iter()
            .zip(normalized.iter())
            .zip(detections.iter())
            .map(|((trace, norm), (amplitudes, fences, outliers))| {
                let manifestation_points = outliers
                    .iter()
                    .map(|&idx| ManifestationPoint {
                        instance_index: idx,
                        event: trace[idx].instance.event.clone(),
                        amplitude: amplitudes[idx],
                    })
                    .collect();
                TraceAnalysis {
                    raw_power_mw: trace.iter().map(|p| p.power_mw).collect(),
                    events: trace
                        .iter()
                        .map(|p| p.instance.event.clone())
                        .collect(),
                    normalized_power: norm.clone(),
                    amplitudes: amplitudes.clone(),
                    upper_fence: fences.map(|f| f.upper),
                    manifestation_points,
                }
            })
            .collect();

        DiagnosisReport {
            traces,
            events: ranked_events,
            rankings,
            top_k: self.config.top_k,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use energydx_trace::event::EventInstance;
    use energydx_trace::join::PoweredInstance;

    fn instance(event: &str, start: u64, mw: f64) -> PoweredInstance {
        PoweredInstance {
            instance: EventInstance::new(event, start, start + 10),
            power_mw: mw,
        }
    }

    /// One normal trace: mostly cheap "circle" events with an
    /// occasional expensive "square" (the paper's Checkmail-style
    /// high-power-by-functionality event).
    fn normal_trace(seed: u64) -> Vec<PoweredInstance> {
        (0..24)
            .map(|i| {
                if i == 11 {
                    instance(
                        "square",
                        i * 1000,
                        400.0 + ((i + seed) % 3) as f64,
                    )
                } else {
                    instance(
                        "circle",
                        i * 1000,
                        100.0 + ((i + seed) % 3) as f64,
                    )
                }
            })
            .collect()
    }

    /// The paper's running scenario (Fig. 6): two event kinds with
    /// different raw power; one trace is hit by an ABD after a
    /// "triangle" trigger event and stays high.
    fn fig6_input() -> DiagnosisInput {
        let mut faulty = normal_trace(0);
        // The trigger at instance 12, after which everything runs hot.
        faulty[12] = instance("triangle", 12_000, 120.0);
        for p in faulty.iter_mut().skip(13) {
            p.power_mw *= 5.0;
        }
        DiagnosisInput::new(vec![
            normal_trace(0),
            faulty,
            normal_trace(1),
            normal_trace(0),
        ])
    }

    #[test]
    fn normalization_flattens_raw_power_differences() {
        let input = fig6_input();
        let groups = EventGroups::collect(&input);
        let config = AnalysisConfig::default();
        let normalized = step3_normalize(&input, &groups, &config);
        // Normal traces (0, 2, 3) are now flat: every value near 1.
        for t in [0usize, 2, 3] {
            for &v in &normalized[t] {
                assert!(
                    (0.9..=1.2).contains(&v),
                    "trace {t} value {v} not flat"
                );
            }
        }
        // The faulty trace still shows the jump.
        let max = normalized[1].iter().cloned().fold(0.0, f64::max);
        assert!(max > 3.0, "ABD must survive normalization, max {max}");
    }

    #[test]
    fn detection_finds_the_abd_and_only_the_abd() {
        let input = fig6_input();
        let report = EnergyDx::default().diagnose(&input);
        assert!(report.traces[0].manifestation_points.is_empty());
        assert!(report.traces[2].manifestation_points.is_empty());
        assert!(report.traces[3].manifestation_points.is_empty());
        let points = &report.traces[1].manifestation_points;
        assert_eq!(points.len(), 1, "exactly one manifestation point");
        // The rise begins at the trigger (index 12) or the instance
        // right after it.
        assert!(
            (12..=13).contains(&points[0].instance_index),
            "detected at {}",
            points[0].instance_index
        );
    }

    #[test]
    fn raw_transition_points_would_be_misdetected_without_normalization() {
        // Sanity check of the paper's motivation: running Step 4
        // directly on RAW power finds outliers even in normal traces
        // (circle→square transitions), which normalization removes.
        // Uses the paper's raw run-difference amplitude (sustained
        // smoothing off) and no degenerate-IQR guard, as the paper's
        // Step 4 would.
        let input = fig6_input();
        let config = AnalysisConfig {
            sustained_window: 0,
            min_fence_excess: 0.0,
            ..AnalysisConfig::default()
        };
        let raw: Vec<Vec<f64>> = input
            .traces()
            .iter()
            .map(|t| t.iter().map(|p| p.power_mw).collect())
            .collect();
        let raw_detections = step4_detect(&raw, &config);
        let normal_raw_outliers: usize = [0usize, 2, 3]
            .iter()
            .map(|&t| raw_detections[t].2.len())
            .sum();
        assert!(
            normal_raw_outliers > 0,
            "raw power must show misleading transitions"
        );
    }

    #[test]
    fn step5_fraction_matches_impacted_traces() {
        // Besides the ABD trace, give one normal trace a sustained
        // user spike (several hot circle instances — e.g. the user
        // recorded a video). Its window also contains circles and
        // squares, so those events impact 50 % of the windowed traces
        // while the trigger impacts only 25 % — and the
        // developer-reported 25 % sorts the trigger first, exactly the
        // Step-5 filtering story.
        let mut traces = fig6_input().traces().to_vec();
        for p in &mut traces[2][7..=11] {
            p.power_mw = 520.0;
        }
        let input = DiagnosisInput::new(traces);
        let config = AnalysisConfig::default().with_developer_fraction(0.25);
        let report = EnergyDx::new(config).diagnose(&input);
        let triangle = report
            .events
            .iter()
            .find(|e| e.event == "triangle")
            .expect("trigger event reported");
        // Exactly 1 of 4 traces is impacted — the paper's 25 % example.
        assert_eq!(triangle.impacted_fraction, 0.25);
        let circle = report
            .events
            .iter()
            .find(|e| e.event == "circle")
            .expect("normal event also windowed");
        assert_eq!(circle.impacted_fraction, 0.5);
        // With developer_fraction = 0.25 the trigger sorts first.
        assert_eq!(report.events[0].event, "triangle");
    }

    #[test]
    fn rankings_expose_the_anomalous_instances() {
        let input = fig6_input();
        let groups = EventGroups::collect(&input);
        let ranks = step2_rank(&groups);
        // The faulty trace's post-trigger circle instances (running at
        // 5× power) occupy the top ranks of the circle population —
        // the "7th instance ranked much higher" observation of Fig. 6.
        let circles = &ranks["circle"];
        let n = circles.len() as f64;
        let hot = circles.iter().filter(|&&r| r > n * 0.75).count();
        assert!(hot >= 10, "expected the 11 hot circles on top, got {hot}");
    }

    #[test]
    fn short_traces_yield_no_detections() {
        let input = DiagnosisInput::new(vec![vec![
            instance("A", 0, 1.0),
            instance("B", 10, 100.0),
        ]]);
        let report = EnergyDx::default().diagnose(&input);
        assert!(report.traces[0].manifestation_points.is_empty());
        assert!(report.traces[0].upper_fence.is_none());
    }

    #[test]
    fn empty_input_yields_empty_report() {
        let report = EnergyDx::default().diagnose(&DiagnosisInput::default());
        assert!(report.traces.is_empty());
        assert!(report.events.is_empty());
    }

    #[test]
    fn flat_traces_never_alarm() {
        let input = DiagnosisInput::new(vec![(0..50)
            .map(|i| instance("E", i * 500, 150.0))
            .collect()]);
        let report = EnergyDx::default().diagnose(&input);
        assert!(report.traces[0].manifestation_points.is_empty());
    }

    #[test]
    fn corrupt_trace_is_isolated_not_fatal() {
        // One trace carries NaN power (a corrupt float that survived a
        // salvaged decode). Diagnosis must complete, skip that trace,
        // and still find the ABD in the healthy ones.
        let mut traces = fig6_input().traces().to_vec();
        traces.push(vec![
            instance("circle", 0, f64::NAN),
            instance("circle", 1000, 100.0),
        ]);
        let report = EnergyDx::default().diagnose(&DiagnosisInput::new(traces));
        assert_eq!(report.stats.total_traces, 5);
        assert_eq!(report.stats.analyzed_traces, 4);
        assert_eq!(report.stats.skipped.len(), 1);
        assert_eq!(report.stats.skipped[0].index, 4);
        assert!(report.stats.skipped[0].reason.contains("non-finite"));
        // The skipped trace's slot stays, empty, so the report remains
        // parallel to the input.
        assert_eq!(report.traces.len(), 5);
        assert!(report.traces[4].raw_power_mw.is_empty());
        // The healthy traces still diagnose.
        assert_eq!(report.impacted_traces(), vec![1]);
    }

    #[test]
    fn all_nan_input_yields_empty_but_sound_report() {
        let traces = vec![
            (0..8).map(|i| instance("E", i * 100, f64::NAN)).collect(),
            (0..8)
                .map(|i| instance("E", i * 100, f64::INFINITY))
                .collect::<Vec<_>>(),
        ];
        let report = EnergyDx::default().diagnose(&DiagnosisInput::new(traces));
        assert_eq!(report.stats.analyzed_traces, 0);
        assert_eq!(report.stats.skipped.len(), 2);
        assert!(report.events.is_empty());
        assert!(!report.stats.is_clean());
    }

    #[test]
    fn clean_input_reports_clean_stats() {
        let report = EnergyDx::default().diagnose(&fig6_input());
        assert!(report.stats.is_clean());
        assert_eq!(report.stats.total_traces, 4);
        assert_eq!(report.stats.analyzed_traces, 4);
        assert_eq!(report.stats.degenerate_groups, 0);
    }

    #[test]
    fn parallel_diagnose_matches_the_reference() {
        let input = fig6_input();
        let reference = EnergyDx::default().diagnose_reference(&input);
        for jobs in [1, 2, 3, 8] {
            let report = EnergyDx::default().with_jobs(jobs).diagnose(&input);
            assert_eq!(report, reference, "jobs={jobs}");
        }
    }

    #[test]
    fn metrics_record_stage_durations_without_changing_the_report() {
        use energydx_obsv::{MetricsRegistry, STAGE_FAMILY};
        use std::sync::Arc;

        let input = DiagnosisInput::new(vec![(0..20)
            .map(|i| {
                instance("E", i * 100, if i == 10 { 400.0 } else { 100.0 })
            })
            .collect()]);
        let plain = EnergyDx::default().diagnose(&input);

        let reg = Arc::new(MetricsRegistry::deterministic());
        let dx = EnergyDx::default()
            .with_metrics(Metrics::enabled(Arc::clone(&reg)));
        assert_eq!(dx.diagnose(&input), plain, "metrics changed the report");
        assert_eq!(
            dx.diagnose_reference(&input),
            plain,
            "metrics changed the reference report"
        );
        assert_eq!(dx.diagnose_sharded(&input, 2), plain);

        // diagnose + reference + sharded(2) touched every stage.
        for stage in [
            "map",
            "merge",
            "analyze",
            "render",
            "finish",
            "rank",
            "normalize",
            "detect",
            "report",
        ] {
            let snap = reg
                .histogram_snapshot(STAGE_FAMILY, &[("stage", stage)])
                .unwrap_or_else(|| panic!("stage {stage} not recorded"));
            assert!(snap.count() > 0, "stage {stage} has no observations");
            assert_eq!(snap.sum(), 0.0, "deterministic time must zero {stage}");
        }
    }

    #[test]
    fn window_bounds_are_clamped_at_trace_edges() {
        // ABD at the very last instances: window must not index past
        // the end.
        let mut trace: Vec<PoweredInstance> =
            (0..20).map(|i| instance("E", i * 500, 100.0)).collect();
        let n = trace.len();
        trace[n - 1].power_mw = 900.0;
        let input = DiagnosisInput::new(vec![trace]);
        let report = EnergyDx::default().diagnose(&input);
        // Must not panic; the event is reported.
        assert!(report.events.iter().any(|e| e.event == "E"));
    }
}
