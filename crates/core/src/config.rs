//! Tunable parameters of the manifestation analysis.

use serde::{Deserialize, Serialize};

/// Parameters of the 5-step analysis. The defaults are the paper's
/// published choices; §III-A notes they were "decided through
/// experiments" and "can be adjusted for different training sets",
/// hence a config struct rather than constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Percentile of an event group used as the normalization base
    /// (Step 3). Paper: 10.
    pub base_percentile: f64,
    /// Floor for the normalization base in milliwatts, guarding
    /// against division by (near-)zero for events whose idle power
    /// rounds to 0.
    pub min_base_mw: f64,
    /// Robustness guard for the normalization base: the base is at
    /// least this fraction of the event group's *median* power. When a
    /// few instances of an event land in an aberrant context (e.g. an
    /// `onResume` immediately followed by backgrounding, whose
    /// attributed power is idle-level), the raw 10th percentile can
    /// collapse to that low mode and inflate every normal instance;
    /// the guard keeps the base anchored to the group's typical value.
    /// Set to 0 to reproduce the paper's raw percentile exactly.
    pub base_guard_fraction: f64,
    /// Tukey fence multiplier `k` in `Q3 + k·IQR` (Step 4). Paper: 3
    /// (the "upper outer fence").
    pub fence_k: f64,
    /// Minimum amount by which an amplitude must exceed the fence to
    /// be reported, guarding the degenerate `IQR == 0` case of flat
    /// normalized traces.
    pub min_fence_excess: f64,
    /// Detection smoothing: half-width of the windowed-median used by
    /// the *sustained* variation amplitude (see
    /// [`crate::amplitude::sustained_amplitudes`]). A real
    /// manifestation is a level shift, not a one-instance spike; the
    /// windowed median suppresses aberrant-context single instances.
    /// Set to 0 to detect on the paper's raw run-difference amplitude.
    pub sustained_window: usize,
    /// Manifestation window half-width in events (Step 5).
    pub window: usize,
    /// Number of events reported to the developer (Table II shows the
    /// "first six events").
    pub top_k: usize,
    /// The developer-estimated fraction of users impacted by the ABD
    /// (Step 5 sorts reported events by distance to this; K9 Mail used
    /// 15 %).
    pub developer_fraction: f64,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            base_percentile: 10.0,
            min_base_mw: 1.0,
            base_guard_fraction: 0.5,
            fence_k: 3.0,
            min_fence_excess: 3.5,
            sustained_window: 3,
            window: 5,
            top_k: 6,
            developer_fraction: 0.15,
        }
    }
}

impl AnalysisConfig {
    /// Sets the developer-reported impacted-user fraction (clamped to
    /// `[0, 1]`).
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx::AnalysisConfig;
    /// let c = AnalysisConfig::default().with_developer_fraction(0.15);
    /// assert_eq!(c.developer_fraction, 0.15);
    /// ```
    pub fn with_developer_fraction(mut self, fraction: f64) -> Self {
        self.developer_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the manifestation window half-width.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Sets the Tukey fence multiplier.
    pub fn with_fence_k(mut self, k: f64) -> Self {
        self.fence_k = k.max(0.0);
        self
    }

    /// Sets the normalization base percentile (clamped to `[0, 100]`).
    pub fn with_base_percentile(mut self, p: f64) -> Self {
        self.base_percentile = p.clamp(0.0, 100.0);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = AnalysisConfig::default();
        assert_eq!(c.base_percentile, 10.0);
        assert_eq!(c.fence_k, 3.0);
        assert_eq!(c.top_k, 6);
    }

    #[test]
    fn builders_clamp() {
        let c = AnalysisConfig::default()
            .with_developer_fraction(7.0)
            .with_base_percentile(200.0)
            .with_fence_k(-1.0);
        assert_eq!(c.developer_fraction, 1.0);
        assert_eq!(c.base_percentile, 100.0);
        assert_eq!(c.fence_k, 0.0);
    }
}
