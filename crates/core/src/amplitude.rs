//! Variation amplitude (Step 4's metric).
//!
//! For a trace of normalized powers `p[0..n]`, the variation amplitude
//! of instance `i` is `p[i+1] − p[i]`; when the normalized power "keeps
//! increasing from the i-th instance until the (i+n)-th instance", the
//! amplitude is instead `p[i+n] − p[i]` — the whole rise is attributed
//! to the instance where it begins, because real ABDs often ramp power
//! up across several events rather than in one jump.

/// Computes the variation amplitude of every instance. The last
/// instance has amplitude 0 (nothing follows it).
///
/// # Examples
///
/// ```
/// # use energydx::amplitude::variation_amplitudes;
/// // A two-step ramp: the whole rise (1→5) lands on index 1.
/// let v = variation_amplitudes(&[1.0, 1.0, 3.0, 5.0, 5.0]);
/// assert_eq!(v, vec![0.0, 4.0, 2.0, 0.0, 0.0]);
/// ```
pub fn variation_amplitudes(normalized: &[f64]) -> Vec<f64> {
    let n = normalized.len();
    let mut out = vec![0.0; n];
    for i in 0..n.saturating_sub(1) {
        if normalized[i + 1] > normalized[i] {
            // Extend across the maximal strictly increasing run.
            let mut j = i + 1;
            while j + 1 < n && normalized[j + 1] > normalized[j] {
                j += 1;
            }
            out[i] = normalized[j] - normalized[i];
        } else {
            out[i] = normalized[i + 1] - normalized[i];
        }
    }
    out
}

/// Robust (sustained) variation amplitude: the median normalized power
/// of the `w` instances after `i` minus the median of the `w`
/// instances up to and including `i`.
///
/// The paper's adjacent-difference amplitude reacts to any single
/// high-power instance; on traces with occasional aberrant-context
/// instances this produces spurious spikes that rise and immediately
/// fall. A real manifestation is a *level shift* — power rises and
/// stays (Fig. 3) — which this windowed-median variant isolates: one
/// outlying instance cannot move either median, while a sustained rise
/// moves the entire after-window.
///
/// # Examples
///
/// ```
/// # use energydx::amplitude::sustained_amplitudes;
/// // A one-instance glitch is suppressed...
/// let glitch = [1.0, 1.0, 9.0, 1.0, 1.0, 1.0, 1.0];
/// let v = sustained_amplitudes(&glitch, 3);
/// assert!(v.iter().all(|&a| a.abs() < 1e-9));
/// // ...while a level shift is attributed to its onset.
/// let shift = [1.0, 1.0, 1.0, 6.0, 6.0, 6.0, 6.0];
/// let v = sustained_amplitudes(&shift, 3);
/// assert_eq!(v[2], 5.0);
/// ```
pub fn sustained_amplitudes(normalized: &[f64], w: usize) -> Vec<f64> {
    let n = normalized.len();
    let w = w.max(1);
    let mut out = vec![0.0; n];
    if n < 2 {
        return out;
    }
    // One scratch buffer serves every window median: the windows are
    // at most `w` long, so after the first iterations the buffer never
    // reallocates — the whole scan is allocation-free past `out`.
    let mut scratch = Vec::with_capacity(w);
    for i in 0..n - 1 {
        let before_lo = i.saturating_sub(w - 1);
        let after_hi = (i + w).min(n - 1);
        let before = median_of(&mut scratch, &normalized[before_lo..=i]);
        let after = median_of(&mut scratch, &normalized[i + 1..=after_hi]);
        out[i] = after - before;
    }
    out
}

fn median_of(scratch: &mut Vec<f64>, values: &[f64]) -> f64 {
    scratch.clear();
    scratch.extend_from_slice(values);
    scratch
        .sort_by(|a, b| a.partial_cmp(b).expect("normalized power is finite"));
    let n = scratch.len();
    if n % 2 == 1 {
        scratch[n / 2]
    } else {
        (scratch[n / 2 - 1] + scratch[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_trace_has_zero_amplitudes() {
        assert_eq!(variation_amplitudes(&[2.0; 5]), vec![0.0; 5]);
    }

    #[test]
    fn single_jump_is_attributed_to_its_start() {
        let v = variation_amplitudes(&[1.0, 1.0, 6.0, 6.0]);
        assert_eq!(v, vec![0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn gradual_rise_accumulates_on_the_first_instance() {
        // The paper's rationale: "the power consumption of the app
        // gradually increases after the ABD is triggered".
        let v = variation_amplitudes(&[1.0, 2.0, 3.0, 4.0, 4.0]);
        assert_eq!(v[0], 3.0);
        // Instances inside the run still see their own remaining rise.
        assert_eq!(v[1], 2.0);
        assert_eq!(v[2], 1.0);
        assert_eq!(v[3], 0.0);
    }

    #[test]
    fn drops_produce_negative_amplitudes() {
        let v = variation_amplitudes(&[5.0, 1.0]);
        assert_eq!(v, vec![-4.0, 0.0]);
    }

    #[test]
    fn run_sum_property_holds() {
        // Over a strictly monotone run, the amplitude at the start
        // equals the endpoint delta.
        let data = [0.5, 1.0, 2.5, 7.0];
        let v = variation_amplitudes(&data);
        assert_eq!(v[0], 7.0 - 0.5);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(variation_amplitudes(&[]).is_empty());
        assert_eq!(variation_amplitudes(&[3.0]), vec![0.0]);
    }

    #[test]
    fn valley_then_rise() {
        let v = variation_amplitudes(&[3.0, 1.0, 4.0]);
        assert_eq!(v, vec![-2.0, 3.0, 0.0]);
    }

    #[test]
    fn sustained_flat_trace_is_zero() {
        assert_eq!(sustained_amplitudes(&[2.0; 8], 3), vec![0.0; 8]);
    }

    #[test]
    fn sustained_suppresses_alternating_context_noise() {
        // Oscillation between two context modes must not register.
        let data = [1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.0, 2.0];
        let v = sustained_amplitudes(&data, 3);
        let max = v.iter().cloned().fold(0.0, f64::max);
        assert!(max <= 1.0, "oscillation amp {max}");
    }

    #[test]
    fn sustained_detects_level_shift_above_oscillation() {
        let mut data = vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0];
        data.extend([8.0, 9.0, 8.0, 9.0, 8.0]);
        let v = sustained_amplitudes(&data, 3);
        let (argmax, &max) = v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!(max > 5.0);
        assert!((4..=6).contains(&argmax), "shift onset at {argmax}");
    }

    #[test]
    fn sustained_handles_short_inputs() {
        assert!(sustained_amplitudes(&[], 3).is_empty());
        assert_eq!(sustained_amplitudes(&[1.0], 3), vec![0.0]);
        assert_eq!(sustained_amplitudes(&[1.0, 4.0], 3), vec![3.0, 0.0]);
    }

    #[test]
    fn sustained_window_one_is_adjacent_difference() {
        let data = [1.0, 3.0, 2.0];
        assert_eq!(sustained_amplitudes(&data, 1), vec![2.0, -1.0, 0.0]);
    }
}
