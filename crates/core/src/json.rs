//! Canonical JSON rendering of diagnosis reports.
//!
//! The differential harness and the golden-report regression tests
//! compare reports **byte for byte**, so the rendering must be a pure
//! function of the report value: fields appear in declaration order,
//! map keys in their `BTreeMap` order, and floats print via Rust's
//! shortest-round-trip `Display` (the same bits always produce the same
//! text). Non-finite floats — impossible in a report produced by the
//! pipeline, which sanitizes its input — render as `null` so the output
//! is always valid JSON.
//!
//! Hand-rolled rather than derived: the output is a *test oracle* and a
//! CLI artifact, and owning the byte layout keeps the determinism
//! guarantee auditable in one screen of code.

use crate::report::{
    AnalysisStats, DiagnosisReport, ManifestationPoint, RankedEvent,
    SkippedTrace, TraceAnalysis,
};

/// Renders a report as canonical, pretty-printed JSON.
///
/// Two equal reports render to equal bytes; this is the comparison key
/// of `tests/diff_harness.rs` and the storage format of
/// `tests/golden/`.
pub fn report_json(report: &DiagnosisReport) -> String {
    let mut w = JsonWriter::new();
    w.obj(|w| {
        w.key("traces");
        w.arr(&report.traces, trace_json);
        w.key("events");
        w.arr(&report.events, event_json);
        w.key("rankings");
        w.obj(|w| {
            for (event, ranks) in &report.rankings {
                w.key(event);
                w.floats(ranks);
            }
        });
        w.key("top_k");
        w.usize(report.top_k);
        w.key("stats");
        stats_json(w, &report.stats);
    });
    w.into_line()
}

fn trace_json(w: &mut JsonWriter, t: &TraceAnalysis) {
    w.obj(|w| {
        w.key("raw_power_mw");
        w.floats(&t.raw_power_mw);
        w.key("events");
        w.strings(&t.events);
        w.key("normalized_power");
        w.floats(&t.normalized_power);
        w.key("amplitudes");
        w.floats(&t.amplitudes);
        w.key("upper_fence");
        match t.upper_fence {
            Some(v) => w.float(v),
            None => w.out.push_str("null"),
        }
        w.key("manifestation_points");
        w.arr(&t.manifestation_points, point_json);
    });
}

fn point_json(w: &mut JsonWriter, p: &ManifestationPoint) {
    w.obj(|w| {
        w.key("instance_index");
        w.usize(p.instance_index);
        w.key("event");
        w.string(&p.event);
        w.key("amplitude");
        w.float(p.amplitude);
    });
}

fn event_json(w: &mut JsonWriter, e: &RankedEvent) {
    w.obj(|w| {
        w.key("event");
        w.string(&e.event);
        w.key("impacted_fraction");
        w.float(e.impacted_fraction);
        w.key("proximity");
        w.usize(e.proximity);
    });
}

fn stats_json(w: &mut JsonWriter, s: &AnalysisStats) {
    w.obj(|w| {
        w.key("total_traces");
        w.usize(s.total_traces);
        w.key("analyzed_traces");
        w.usize(s.analyzed_traces);
        w.key("skipped");
        w.arr(&s.skipped, |w, sk: &SkippedTrace| {
            w.obj(|w| {
                w.key("index");
                w.usize(sk.index);
                w.key("reason");
                w.string(&sk.reason);
            });
        });
        w.key("degenerate_groups");
        w.usize(s.degenerate_groups);
    });
}

/// A tiny pretty-printing JSON writer: 2-space indentation, scalar
/// arrays on one line, object members one per line.
///
/// Public because it is the *one* JSON renderer of the workspace:
/// every hand-rolled JSON surface (diagnosis reports here, fleetd's
/// stats/health documents) goes through it, so key ordering, float
/// formatting, and escaping are consistent — and byte-deterministic —
/// everywhere.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    indent: usize,
    /// Whether the current container already has a member (comma
    /// bookkeeping), one flag per nesting level.
    has_member: Vec<bool>,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        JsonWriter {
            out: String::new(),
            indent: 0,
            has_member: Vec::new(),
        }
    }

    /// The rendered document.
    pub fn into_string(self) -> String {
        self.out
    }

    /// The rendered document with a trailing newline — the shape every
    /// CLI/file artifact in the repo uses.
    pub fn into_line(mut self) -> String {
        self.out.push('\n');
        self.out
    }

    /// Appends a raw token (e.g. `null`) verbatim.
    pub fn raw(&mut self, token: &str) {
        self.out.push_str(token);
    }

    /// Writes an unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.out.push_str(&v.to_string());
    }

    fn newline(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    /// Starts a member slot inside the current container: emits the
    /// separating comma and fresh-line indentation.
    fn member(&mut self) {
        if let Some(has) = self.has_member.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
        self.newline();
    }

    fn open(&mut self, bracket: char) {
        self.out.push(bracket);
        self.indent += 1;
        self.has_member.push(false);
    }

    fn close(&mut self, bracket: char) {
        self.indent -= 1;
        let had_members = self.has_member.pop() == Some(true);
        if had_members {
            self.newline();
        }
        self.out.push(bracket);
    }

    /// Writes an object whose members are emitted by `body`.
    pub fn obj(&mut self, body: impl FnOnce(&mut JsonWriter)) {
        self.open('{');
        body(self);
        self.close('}');
    }

    /// Starts an object member: comma bookkeeping, indentation, the
    /// quoted key, and the `: ` separator. The caller writes the value.
    pub fn key(&mut self, key: &str) {
        self.member();
        self.string(key);
        self.out.push_str(": ");
    }

    /// Writes an array with one member per line, each emitted by
    /// `each`.
    pub fn arr<T>(
        &mut self,
        items: &[T],
        mut each: impl FnMut(&mut JsonWriter, &T),
    ) {
        self.open('[');
        for item in items {
            self.member();
            each(self, item);
        }
        self.close(']');
    }

    /// A scalar array on a single line — number series dominate a
    /// report, and one-line arrays keep golden files diffable.
    pub fn floats(&mut self, values: &[f64]) {
        self.out.push('[');
        for (i, &v) in values.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.float(v);
        }
        self.out.push(']');
    }

    /// A string array on a single line.
    pub fn strings(&mut self, values: &[String]) {
        self.out.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            self.string(v);
        }
        self.out.push(']');
    }

    /// Writes a float with shortest-round-trip `Display` (always a
    /// valid JSON number that reads back as the same bits; non-finite
    /// values render as `null`).
    pub fn float(&mut self, v: f64) {
        if v.is_finite() {
            // Rust's shortest-round-trip Display: deterministic for
            // given bits, and `-0.0` keeps its sign so distinct bit
            // patterns stay distinguishable in golden files.
            let s = format!("{v}");
            self.out.push_str(&s);
            // Keep every float a JSON number that reads back as f64.
            if !s.contains(['.', 'e', 'E']) {
                self.out.push_str(".0");
            }
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes an unsigned integer value.
    pub fn usize(&mut self, v: usize) {
        self.out.push_str(&v.to_string());
    }

    /// Writes a quoted, escaped JSON string.
    pub fn string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

impl DiagnosisReport {
    /// Renders this report as canonical JSON (see [`report_json`]).
    pub fn to_canonical_json(&self) -> String {
        report_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::DiagnosisInput;
    use crate::pipeline::EnergyDx;
    use energydx_trace::event::EventInstance;
    use energydx_trace::join::PoweredInstance;

    fn instance(event: &str, start: u64, mw: f64) -> PoweredInstance {
        PoweredInstance {
            instance: EventInstance::new(event, start, start + 10),
            power_mw: mw,
        }
    }

    #[test]
    fn empty_report_renders_empty_containers() {
        let report = EnergyDx::default().diagnose(&DiagnosisInput::default());
        let json = report.to_canonical_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"traces\": []"));
        assert!(json.contains("\"rankings\": {}"));
        assert!(json.contains("\"total_traces\": 0"));
    }

    #[test]
    fn equal_reports_render_equal_bytes() {
        let traces: Vec<Vec<PoweredInstance>> = (0..3)
            .map(|t| {
                (0..12)
                    .map(|i| {
                        instance("E", i * 100, 50.0 + ((i + t) % 5) as f64)
                    })
                    .collect()
            })
            .collect();
        let input = DiagnosisInput::new(traces);
        let dx = EnergyDx::default();
        assert_eq!(
            dx.diagnose(&input).to_canonical_json(),
            dx.diagnose(&input).to_canonical_json()
        );
    }

    #[test]
    fn floats_always_read_back_as_numbers() {
        let mut w = JsonWriter::new();
        w.float(2.0);
        w.out.push(' ');
        w.float(0.5);
        w.out.push(' ');
        w.float(-0.0);
        assert_eq!(w.out, "2.0 0.5 -0.0");
        // Every rendered float parses back to the exact same bits.
        for v in [2.0f64, 0.5, -0.0, 1e300, 1e-300, 123.456] {
            let mut w = JsonWriter::new();
            w.float(v);
            let back: f64 = w.out.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {}", w.out);
        }
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let mut w = JsonWriter::new();
        w.float(f64::NAN);
        w.out.push(' ');
        w.float(f64::INFINITY);
        assert_eq!(w.out, "null null");
    }

    #[test]
    fn strings_are_escaped() {
        let mut w = JsonWriter::new();
        w.string("a\"b\\c\nd\u{1}");
        assert_eq!(w.out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn report_json_is_structurally_sound() {
        let input = DiagnosisInput::new(vec![(0..20)
            .map(|i| {
                instance(
                    if i == 10 { "hot" } else { "cold" },
                    i * 100,
                    if i >= 10 { 400.0 } else { 100.0 },
                )
            })
            .collect()]);
        let json = EnergyDx::default().diagnose(&input).to_canonical_json();
        // Balanced brackets and quotes — a cheap structural check that
        // does not require a JSON parser in the tree.
        let quotes = json.matches('"').count();
        assert_eq!(quotes % 2, 0);
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
        assert!(json.contains("\"upper_fence\": "));
    }
}
