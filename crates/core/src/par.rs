//! A minimal deterministic worker pool for fleet-parallel analysis.
//!
//! The container this workspace builds in has no network access, so
//! `rayon` is not available; this module provides the small slice of it
//! the pipeline needs — an indexed parallel map over a slice — on plain
//! [`std::thread::scope`] workers.
//!
//! Determinism is the design constraint, not a side effect: results are
//! returned **in input order** no matter how the operating system
//! schedules the workers, so a caller that computes pure per-item
//! functions gets bit-identical output at any thread count. The
//! differential harness in `tests/diff_harness.rs` holds the pipeline
//! to exactly that guarantee.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A job-count environment variable held a value that is not a
/// positive integer.
///
/// Silently falling back to the default here would be a trap: a CI
/// file with `ENERGYDX_JOBS=fulll` would quietly run at machine
/// parallelism and "pass" the single-thread determinism gate without
/// ever pinning a thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobsEnvError {
    /// The offending environment variable.
    pub var: String,
    /// The raw value it held.
    pub value: String,
}

impl std::fmt::Display for JobsEnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}={:?} is not a valid job count (expected a positive \
             integer; unset the variable or use e.g. {}=4)",
            self.var, self.value, self.var
        )
    }
}

impl std::error::Error for JobsEnvError {}

/// Parses one job-count environment value strictly.
///
/// Returns `Ok(None)` when the value is empty or whitespace-only
/// (treated as unset, like the variable not existing), `Ok(Some(n))`
/// for a positive integer, and [`JobsEnvError`] for anything else —
/// zero included, because a zero job count has no meaning the caller
/// could honor.
pub fn parse_jobs(
    var: &str,
    value: &str,
) -> Result<Option<usize>, JobsEnvError> {
    let trimmed = value.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    match trimmed.parse::<usize>() {
        Ok(n) if n > 0 => Ok(Some(n)),
        _ => Err(JobsEnvError {
            var: var.to_owned(),
            value: value.to_owned(),
        }),
    }
}

/// Resolves a requested job count to an effective one, surfacing
/// malformed environment values as an error.
///
/// `0` means "auto": the `ENERGYDX_JOBS` environment variable if set,
/// then `RAYON_NUM_THREADS` (honored for CI muscle-memory
/// compatibility), then the machine's available parallelism. A set but
/// invalid variable is an error, not a silent default — see
/// [`parse_jobs`].
///
/// # Errors
///
/// Returns [`JobsEnvError`] when `requested` is 0 and a job-count
/// variable holds a non-empty value that is not a positive integer.
pub fn try_resolve_jobs(requested: usize) -> Result<usize, JobsEnvError> {
    if requested > 0 {
        return Ok(requested);
    }
    for var in ["ENERGYDX_JOBS", "RAYON_NUM_THREADS"] {
        if let Ok(value) = std::env::var(var) {
            if let Some(n) = parse_jobs(var, &value)? {
                return Ok(n);
            }
        }
    }
    Ok(std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1))
}

/// Resolves a requested job count to an effective one.
///
/// Infallible variant of [`try_resolve_jobs`] for deep-in-the-pipeline
/// callers that have no error channel.
///
/// # Panics
///
/// Panics with the [`JobsEnvError`] message when a job-count
/// environment variable holds garbage; entry points that can report
/// errors gracefully should call [`try_resolve_jobs`] first.
///
/// # Examples
///
/// ```
/// # use energydx::par::resolve_jobs;
/// assert_eq!(resolve_jobs(3), 3);
/// assert!(resolve_jobs(0) >= 1);
/// ```
pub fn resolve_jobs(requested: usize) -> usize {
    try_resolve_jobs(requested).unwrap_or_else(|e| panic!("{e}"))
}

/// Applies `f` to every element of `items`, returning the results in
/// input order.
///
/// `jobs` is resolved via [`resolve_jobs`] and clamped to the item
/// count; with one effective job the map runs inline on the calling
/// thread (no spawn overhead). With more, workers claim indices from a
/// shared atomic counter — dynamic load balancing for fleets whose
/// traces differ wildly in length — and the results are reassembled by
/// index, so the output is identical at every thread count.
///
/// # Panics
///
/// Propagates a panic from `f` (the panicking worker's payload is
/// re-raised on the calling thread).
///
/// # Examples
///
/// ```
/// # use energydx::par::par_map;
/// let doubled = par_map(&[1, 2, 3], 2, |_, &x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = resolve_jobs(jobs).min(items.len()).max(1);
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let locals: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(i, item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (i, r) in locals.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index is claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for jobs in [1, 2, 3, 8] {
            let out = par_map(&items, jobs, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            let expected: Vec<usize> = items.iter().map(|x| x * x).collect();
            assert_eq!(out, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map(&[] as &[u8], 4, |_, &x| x), Vec::<u8>::new());
        assert_eq!(par_map(&[7u8], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn explicit_request_overrides_auto() {
        assert_eq!(resolve_jobs(5), 5);
    }

    #[test]
    fn parse_jobs_accepts_positive_integers() {
        assert_eq!(parse_jobs("ENERGYDX_JOBS", "1"), Ok(Some(1)));
        assert_eq!(parse_jobs("ENERGYDX_JOBS", " 16 "), Ok(Some(16)));
    }

    #[test]
    fn parse_jobs_treats_empty_as_unset() {
        assert_eq!(parse_jobs("ENERGYDX_JOBS", ""), Ok(None));
        assert_eq!(parse_jobs("ENERGYDX_JOBS", "   \t"), Ok(None));
    }

    #[test]
    fn parse_jobs_rejects_zero() {
        let err = parse_jobs("ENERGYDX_JOBS", "0").unwrap_err();
        assert_eq!(err.var, "ENERGYDX_JOBS");
        assert_eq!(err.value, "0");
        assert!(err.to_string().contains("positive integer"));
    }

    #[test]
    fn parse_jobs_rejects_non_numeric_garbage() {
        for bad in ["fulll", "-3", "4.5", "2x", "0x10", "∞"] {
            let err = parse_jobs("RAYON_NUM_THREADS", bad)
                .expect_err(&format!("{bad:?} must be rejected"));
            assert_eq!(err.var, "RAYON_NUM_THREADS");
            assert_eq!(err.value, bad);
            assert!(
                err.to_string().contains("RAYON_NUM_THREADS"),
                "error must name the variable: {err}"
            );
        }
    }

    #[test]
    fn explicit_request_bypasses_environment_validation() {
        // A non-zero request never reads the environment, so it cannot
        // fail even when the variables hold garbage.
        assert_eq!(try_resolve_jobs(7), Ok(7));
    }

    #[test]
    fn jobs_beyond_item_count_are_harmless() {
        let out = par_map(&[1, 2], 64, |_, &x| x);
        assert_eq!(out, vec![1, 2]);
    }
}
