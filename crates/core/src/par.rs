//! A minimal deterministic worker pool for fleet-parallel analysis.
//!
//! The container this workspace builds in has no network access, so
//! `rayon` is not available; this module provides the small slice of it
//! the pipeline needs — an indexed parallel map over a slice — on plain
//! [`std::thread::scope`] workers.
//!
//! Determinism is the design constraint, not a side effect: results are
//! returned **in input order** no matter how the operating system
//! schedules the workers, so a caller that computes pure per-item
//! functions gets bit-identical output at any thread count. The
//! differential harness in `tests/diff_harness.rs` holds the pipeline
//! to exactly that guarantee.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a requested job count to an effective one.
///
/// `0` means "auto": the `ENERGYDX_JOBS` environment variable if set to
/// a positive integer, then `RAYON_NUM_THREADS` (honored for CI
/// muscle-memory compatibility), then the machine's available
/// parallelism.
///
/// # Examples
///
/// ```
/// # use energydx::par::resolve_jobs;
/// assert_eq!(resolve_jobs(3), 3);
/// assert!(resolve_jobs(0) >= 1);
/// ```
pub fn resolve_jobs(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    for var in ["ENERGYDX_JOBS", "RAYON_NUM_THREADS"] {
        if let Some(n) = std::env::var(var)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every element of `items`, returning the results in
/// input order.
///
/// `jobs` is resolved via [`resolve_jobs`] and clamped to the item
/// count; with one effective job the map runs inline on the calling
/// thread (no spawn overhead). With more, workers claim indices from a
/// shared atomic counter — dynamic load balancing for fleets whose
/// traces differ wildly in length — and the results are reassembled by
/// index, so the output is identical at every thread count.
///
/// # Panics
///
/// Propagates a panic from `f` (the panicking worker's payload is
/// re-raised on the calling thread).
///
/// # Examples
///
/// ```
/// # use energydx::par::par_map;
/// let doubled = par_map(&[1, 2, 3], 2, |_, &x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = resolve_jobs(jobs).min(items.len()).max(1);
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let locals: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(i, item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (i, r) in locals.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index is claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for jobs in [1, 2, 3, 8] {
            let out = par_map(&items, jobs, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            let expected: Vec<usize> = items.iter().map(|x| x * x).collect();
            assert_eq!(out, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map(&[] as &[u8], 4, |_, &x| x), Vec::<u8>::new());
        assert_eq!(par_map(&[7u8], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn explicit_request_overrides_auto() {
        assert_eq!(resolve_jobs(5), 5);
    }

    #[test]
    fn jobs_beyond_item_count_are_harmless() {
        let out = par_map(&[1, 2], 64, |_, &x| x);
        assert_eq!(out, vec![1, 2]);
    }
}
