//! Event distance (the Fig.-1 metric).
//!
//! "Event distance is defined as the number of events (user interaction
//! or activity lifecycle) invoked between (exclusive) the real
//! triggering event (i.e., root cause) and the event that is closest to
//! the manifestation point" (§II-A). The paper's headline statistic:
//! over 40 real ABD cases the 90th percentile of event distances is ≤ 3.

use crate::report::DiagnosisReport;

/// Event distance between the *last* occurrence of the root-cause
/// event at or before a manifestation point and that point, within one
/// analyzed trace. Returns `None` when the trace has no detection or
/// the root cause never occurs before one.
///
/// # Examples
///
/// ```
/// # use energydx::distance::event_distance_in_trace;
/// let events = ["A", "B", "C", "D", "E"];
/// // Root cause at index 0, manifestation at index 4 → 3 events between.
/// assert_eq!(event_distance_in_trace(&events, "A", 4), Some(3));
/// assert_eq!(event_distance_in_trace(&events, "E", 4), Some(0));
/// assert_eq!(event_distance_in_trace(&events, "Z", 4), None);
/// ```
pub fn event_distance_in_trace<S: AsRef<str>>(
    events: &[S],
    root_cause: &str,
    manifestation_index: usize,
) -> Option<usize> {
    let idx = events
        [..=manifestation_index.min(events.len().saturating_sub(1))]
        .iter()
        .rposition(|e| e.as_ref() == root_cause)?;
    Some(manifestation_index - idx - usize::from(idx != manifestation_index))
}

/// The minimum event distance between the root cause and any detected
/// manifestation point, across all traces of a report. `None` when
/// nothing was detected near the root cause.
pub fn event_distance(
    report: &DiagnosisReport,
    root_cause: &str,
) -> Option<usize> {
    report
        .traces
        .iter()
        .flat_map(|t| {
            t.manifestation_points.iter().filter_map(|p| {
                event_distance_in_trace(&t.events, root_cause, p.instance_index)
            })
        })
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{ManifestationPoint, TraceAnalysis};

    #[test]
    fn k9_example_distance_is_three() {
        // Fig. 2: AccountSettings:onResume (root cause) then three
        // events, then the manifestation point.
        let events = [
            "Lcom/fsck/k9/activity/setup/AccountSettings;->onResume",
            "Lcom/fsck/k9/service/MailService;->onCreate",
            "Lcom/fsck/k9/activity/MessageList;->onResume",
            "Lcom/fsck/k9/K9Activity;->onResume",
            "Ljava/net/Socket;->connect",
        ];
        assert_eq!(
            event_distance_in_trace(
                &events,
                "Lcom/fsck/k9/activity/setup/AccountSettings;->onResume",
                4
            ),
            Some(3)
        );
    }

    #[test]
    fn unlogged_manifestation_uses_nearest_event() {
        // If the 5th event were not logged, the 4th would be the
        // manifestation point and the distance shrinks to 2.
        let events = [
            "AccountSettings;->onResume",
            "MailService;->onCreate",
            "MessageList;->onResume",
            "K9Activity;->onResume",
        ];
        assert_eq!(
            event_distance_in_trace(&events, "AccountSettings;->onResume", 3),
            Some(2)
        );
    }

    #[test]
    fn root_cause_at_the_point_has_distance_zero() {
        assert_eq!(event_distance_in_trace(&["X", "Y"], "Y", 1), Some(0));
    }

    #[test]
    fn root_cause_after_the_point_is_not_found() {
        let events = ["A", "B", "C"];
        assert_eq!(event_distance_in_trace(&events, "C", 1), None);
    }

    #[test]
    fn report_level_distance_takes_the_minimum() {
        let mk = |events: Vec<&str>, idx: usize| TraceAnalysis {
            raw_power_mw: vec![],
            events: events.into_iter().map(String::from).collect(),
            normalized_power: vec![],
            amplitudes: vec![],
            upper_fence: None,
            manifestation_points: vec![ManifestationPoint {
                instance_index: idx,
                event: "M".into(),
                amplitude: 1.0,
            }],
        };
        let report = DiagnosisReport {
            traces: vec![
                mk(vec!["R", "x", "x", "x", "M"], 4), // distance 3
                mk(vec!["R", "M"], 1),                // distance 0
            ],
            events: vec![],
            rankings: Default::default(),
            top_k: 6,
            stats: Default::default(),
        };
        assert_eq!(event_distance(&report, "R"), Some(0));
        assert_eq!(event_distance(&report, "ZZZ"), None);
    }
}
