//! Fleet-sharded, worker-pool execution of the manifestation analysis.
//!
//! The paper evaluates 40 apps with ~30 volunteers each; the ROADMAP
//! target is millions of users. At that scale the fleet cannot be
//! analyzed as one sequential pass, so the 5-step pipeline is split
//! along its natural data-parallel seams:
//!
//! ```text
//!        map (per trace, worker pool)          merge           analyze (per group / per trace)
//! traces ──────────────────────────▶ ShardPartial ⊕ ShardPartial ──▶ analyze ──▶ render ──▶ DiagnosisReport
//!   sanitize + intern + group tables    associative merge        Steps 2–5, ids only    names resolved
//! ```
//!
//! - **Map** ([`EnergyDx::map_shard`]): Step 1–2 per-trace work —
//!   sanitation and event interning — runs on the [`crate::par`] worker
//!   pool and folds into a [`ShardPartial`]. From here on the hot path
//!   carries [`InternedTrace`]s (dense `u32` event ids, no per-instance
//!   strings) and group populations in a `Vec` indexed by [`EventId`].
//! - **Merge** ([`ShardPartial::merge`]): partials carry their global
//!   trace offsets and a *canonical* (name-sorted) [`EventInterner`],
//!   so shards of the fleet can be mapped on different workers (or
//!   different machines) and combined in **any order** — vocabularies
//!   union into the same sorted interner from either side, ids are
//!   remapped with a stable table, and the merge stays associative and
//!   commutative with [`ShardPartial::empty`] as identity.
//! - **Analyze** ([`EnergyDx::analyze`]): Steps 2–5 run over the merged
//!   partial — per *event group* for the sort-once statistics cache
//!   ([`GroupStatCache`], one [`SortedGroup`] sort serving ranks, base
//!   percentile, and median), per *trace* for normalization, detection,
//!   and the Step-5 window scan — entirely on interned ids.
//! - **Render** ([`EnergyDx::render`]): the only step that touches
//!   strings again — event names are resolved at the report boundary.
//!   [`EnergyDx::finish`] is analyze-then-render.
//!
//! The headline guarantee, enforced by `tests/diff_harness.rs` and the
//! golden reports under `tests/golden/`, is that sequential, parallel,
//! and sharded-then-merged execution produce **byte-identical**
//! [`DiagnosisReport`]s: every parallel unit is a pure function of its
//! inputs, every merge combines exact values (integer counts, `usize`
//! minima, order-preserving concatenation, id remaps), and results are
//! reassembled in input order.

use crate::config::AnalysisConfig;
use crate::pipeline::{
    detect_series, normalize_interned, sort_ranked_events,
    trace_impact_interned, EnergyDx,
};
use crate::report::{
    AnalysisStats, DiagnosisReport, ManifestationPoint, RankedEvent,
    SkippedTrace, TraceAnalysis,
};
use energydx_stats::SortedGroup;
use energydx_trace::intern::{EventId, EventInterner, InternedTrace};
use energydx_trace::join::PoweredInstance;
use std::collections::BTreeMap;

/// A fleet analysis partial: one or more runs of contiguous traces
/// after the per-trace map phase (sanitation + event interning), plus
/// the canonical vocabulary those runs are interned against.
///
/// Partials merge associatively and commutatively; [`EnergyDx::finish`]
/// requires the merged result to cover a contiguous fleet starting at
/// trace 0.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShardPartial {
    /// The canonical (name-sorted) vocabulary every segment's ids and
    /// group tables are expressed in. Canonical order is what makes
    /// merged partials structurally equal regardless of merge order.
    interner: EventInterner,
    /// Disjoint segments keyed by their first global trace index.
    segments: BTreeMap<usize, Segment>,
}

/// Per-instance bytes in a partial: `u32` id + `f64` power in the
/// trace columns, plus the `f64` copy in the group table.
const INSTANCE_BYTES: usize = 4 + 8 + 8;
/// Flat per-trace container overhead (two `Vec` headers).
const TRACE_OVERHEAD: usize = 48;
/// Flat per-segment overhead (offset, three `Vec` headers, map node).
const SEGMENT_OVERHEAD: usize = 64;
/// Flat per-vocabulary-name overhead (`String` header + index entry).
const NAME_OVERHEAD: usize = 64;
/// Per-skip-entry bytes (two `usize`s).
const SKIP_BYTES: usize = 16;

/// One contiguous run of mapped traces.
#[derive(Debug, Clone, PartialEq)]
struct Segment {
    offset: usize,
    /// Sanitized interned traces (corrupt ones emptied, slots kept).
    traces: Vec<InternedTrace>,
    /// `(global index, non-finite count)` of emptied traces, ascending.
    skipped: Vec<(usize, usize)>,
    /// Per-event power populations of this segment in trace order,
    /// indexed by [`EventId`]; events absent from this segment hold an
    /// empty vector.
    groups: Vec<Vec<f64>>,
}

impl Segment {
    fn end(&self) -> usize {
        self.offset + self.traces.len()
    }

    /// Appends an adjacent segment (`next.offset == self.end()`),
    /// expressed in the same vocabulary.
    fn absorb(&mut self, next: Segment) {
        debug_assert_eq!(self.end(), next.offset);
        debug_assert_eq!(self.groups.len(), next.groups.len());
        for (mine, theirs) in self.groups.iter_mut().zip(next.groups) {
            mine.extend(theirs);
        }
        self.traces.extend(next.traces);
        self.skipped.extend(next.skipped);
    }

    /// Rewrites the segment into a larger vocabulary: trace ids go
    /// through `remap` and the group table is re-scattered to `vocab`
    /// slots (the remap is injective, so no populations collide).
    fn remap(&mut self, remap: &[u32], vocab: usize) {
        for trace in &mut self.traces {
            trace.remap(remap);
        }
        let old = std::mem::take(&mut self.groups);
        self.groups = vec![Vec::new(); vocab];
        for (old_id, powers) in old.into_iter().enumerate() {
            self.groups[remap[old_id] as usize] = powers;
        }
    }
}

impl ShardPartial {
    /// The identity partial: merging it into anything is a no-op.
    pub fn empty() -> Self {
        ShardPartial::default()
    }

    /// Number of traces covered (across all segments).
    pub fn trace_count(&self) -> usize {
        self.segments.values().map(|s| s.traces.len()).sum()
    }

    /// Whether this is the identity partial — no traces, no
    /// vocabulary. `merge` with an empty partial (from either side) is
    /// a no-op, which is what lets compaction fold a delta list from
    /// [`ShardPartial::empty`] without special-casing the seed.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty() && self.interner.is_empty()
    }

    /// Distinct event names across the covered traces.
    pub fn vocabulary(&self) -> &[String] {
        self.interner.names()
    }

    /// Global offset of the first covered trace (`0` when empty).
    pub fn start_offset(&self) -> usize {
        self.segments.keys().next().copied().unwrap_or(0)
    }

    /// One past the last covered trace index (`0` when empty).
    pub fn end_offset(&self) -> usize {
        self.segments.values().next_back().map_or(0, Segment::end)
    }

    /// Deterministic estimate of the partial's resident size in
    /// bytes, for spill budget accounting. The formula is a fixed
    /// function of the partial's shape — per-instance column widths
    /// (id + power + group entry), flat per-trace / per-segment /
    /// per-name container overheads — so two identical partials always
    /// account identically, on any platform. It intentionally ignores
    /// allocator slack; budget margins live with the caller.
    pub fn approx_bytes(&self) -> usize {
        let names: usize = self
            .interner
            .names()
            .iter()
            .map(|n| n.len() + NAME_OVERHEAD)
            .sum();
        let segments: usize = self
            .segments
            .values()
            .map(|s| {
                let instances: usize =
                    s.traces.iter().map(|t| t.ids().len()).sum();
                SEGMENT_OVERHEAD
                    + s.traces.len() * TRACE_OVERHEAD
                    + instances * INSTANCE_BYTES
                    + s.skipped.len() * SKIP_BYTES
            })
            .sum();
        names + segments
    }

    /// Whether the partial covers one contiguous run starting at trace
    /// 0 (vacuously true when empty), i.e. is ready for
    /// [`EnergyDx::finish`].
    pub fn is_complete(&self) -> bool {
        match self.segments.len() {
            0 => true,
            1 => self.segments.contains_key(&0),
            _ => false,
        }
    }

    /// Merges another partial into this one. Associative and
    /// commutative: vocabularies union into the same canonical
    /// interner from either side (ids remapped stably), segments are
    /// keyed by global trace offset, and adjacent runs are coalesced
    /// by order-preserving concatenation — so any merge tree over a
    /// partition of the fleet produces the same partial, structurally.
    ///
    /// # Panics
    ///
    /// Panics if the two partials cover overlapping trace ranges —
    /// that is a caller error (the same shard merged twice), not a
    /// data-quality condition.
    pub fn merge(mut self, other: ShardPartial) -> ShardPartial {
        if self.segments.is_empty() {
            self.interner = other.interner;
            self.segments = other.segments;
        } else if other.segments.is_empty() {
            // Nothing to fold in; the vocabulary stays ours.
        } else if self.interner == other.interner {
            // Identical vocabularies (the common case when shards of
            // one app merge): no remap needed.
            for (_, segment) in other.segments {
                self.insert(segment);
            }
        } else {
            let (union, remap_self, remap_other) =
                EventInterner::union(&self.interner, &other.interner);
            let vocab = union.len();
            for segment in self.segments.values_mut() {
                segment.remap(&remap_self, vocab);
            }
            self.interner = union;
            for (_, mut segment) in other.segments {
                segment.remap(&remap_other, vocab);
                self.insert(segment);
            }
        }
        self.coalesce();
        self
    }

    fn insert(&mut self, segment: Segment) {
        if segment.traces.is_empty() {
            return;
        }
        if let Some((_, prev)) =
            self.segments.range(..=segment.offset).next_back()
        {
            assert!(
                prev.end() <= segment.offset,
                "overlapping shard partials: [{}, {}) and [{}, {})",
                prev.offset,
                prev.end(),
                segment.offset,
                segment.end(),
            );
        }
        if let Some((&next_off, _)) =
            self.segments.range(segment.offset..).next()
        {
            assert!(
                segment.end() <= next_off,
                "overlapping shard partials at offset {}",
                segment.offset,
            );
        }
        self.segments.insert(segment.offset, segment);
    }

    fn coalesce(&mut self) {
        let old = std::mem::take(&mut self.segments);
        let mut merged: Vec<Segment> = Vec::with_capacity(old.len());
        for segment in old.into_values() {
            match merged.last_mut() {
                Some(prev) if prev.end() == segment.offset => {
                    prev.absorb(segment);
                }
                _ => merged.push(segment),
            }
        }
        self.segments = merged.into_iter().map(|s| (s.offset, s)).collect();
    }

    /// Shifts every segment (and the global indices of its skipped
    /// traces) right by `base` traces. A worker that mapped its
    /// partition with local offsets `0..n` can be placed after `base`
    /// traces owned by other workers: `map_shard(ts, base)` equals
    /// `map_shard(ts, 0).rebase(base)`, structurally. This is what
    /// lets a cluster coordinator concatenate per-worker partials into
    /// one contiguous fleet without the workers agreeing on global
    /// offsets up front.
    pub fn rebase(mut self, base: usize) -> ShardPartial {
        if base == 0 {
            return self;
        }
        let old = std::mem::take(&mut self.segments);
        self.segments = old
            .into_values()
            .map(|mut segment| {
                segment.offset += base;
                for entry in &mut segment.skipped {
                    entry.0 += base;
                }
                (segment.offset, segment)
            })
            .collect();
        self
    }

    /// Moves the partial so its first segment starts at `new_start`,
    /// shifting every segment (and skipped index) by the same amount
    /// — down as well as up, which [`rebase`](Self::rebase) cannot do.
    /// Like `rebase` this is pure offset arithmetic: populations and
    /// interner are untouched, so extracting one version's run from
    /// the middle of a versioned epoch and re-anchoring it at its
    /// version-local offset is byte-exact. No-op on an empty partial.
    ///
    /// # Panics
    ///
    /// Panics if shifting down would move a skipped-trace index below
    /// zero while its segment stays representable (cannot happen for
    /// partials built by `map_shard`, whose skipped indices all lie
    /// inside their segment).
    pub fn rebase_to(self, new_start: usize) -> ShardPartial {
        let Some(first) = self.segments.keys().next().copied() else {
            return self;
        };
        if new_start >= first {
            self.rebase(new_start - first)
        } else {
            let delta = first - new_start;
            let mut shifted = self;
            let old = std::mem::take(&mut shifted.segments);
            shifted.segments = old
                .into_values()
                .map(|mut segment| {
                    segment.offset -= delta;
                    for entry in &mut segment.skipped {
                        entry.0 -= delta;
                    }
                    (segment.offset, segment)
                })
                .collect();
            shifted
        }
    }
}

/// Why a merged partial could not be finished into a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The partial does not cover a contiguous fleet starting at trace
    /// 0; some shard was never mapped or merged in.
    IncompleteFleet {
        /// First trace indices of the runs that are present.
        covered: Vec<usize>,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::IncompleteFleet { covered } => write!(
                f,
                "shard partial is not a contiguous fleet from trace 0 \
                 (segments start at {covered:?})"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

/// A [`ShardPartial`] disassembled into plain, serializable pieces:
/// the canonical vocabulary plus each segment's traces and skip list.
///
/// Group tables are deliberately absent — they are a pure function of
/// the traces and are rebuilt on [`ShardPartial::from_parts`], so a
/// checkpoint cannot smuggle in populations that disagree with the
/// traces they were derived from.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPartialParts {
    /// The vocabulary in canonical (ascending name) order.
    pub names: Vec<String>,
    /// The segments, ascending by offset.
    pub segments: Vec<SegmentParts>,
}

/// One contiguous run of traces, disassembled.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentParts {
    /// Global index of the first trace.
    pub offset: usize,
    /// The interned traces (emptied slots kept).
    pub traces: Vec<InternedTrace>,
    /// `(global index, non-finite count)` of emptied traces.
    pub skipped: Vec<(usize, usize)>,
}

/// Why a [`ShardPartialParts`] value does not describe a valid
/// partial. Returned — never panicked — by
/// [`ShardPartial::from_parts`], so a corrupt or adversarial
/// checkpoint surfaces as a typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartsError {
    /// The vocabulary is not sorted strictly ascending.
    VocabularyNotCanonical,
    /// A trace references an event id outside the vocabulary.
    IdOutOfRange {
        /// Global index of the offending trace.
        trace: usize,
        /// The out-of-range id.
        id: usize,
        /// The vocabulary size it had to fit under.
        vocab: usize,
    },
    /// Two segments cover overlapping trace ranges.
    OverlappingSegments {
        /// Offset of the first segment involved.
        first: usize,
        /// Offset of the second segment involved.
        second: usize,
    },
    /// A skip entry points outside its segment's trace range.
    SkippedOutOfSegment {
        /// The skip entry's global trace index.
        index: usize,
    },
    /// A skip entry names a trace that still has instances, or a
    /// non-positive non-finite count.
    SkippedNotEmptied {
        /// The skip entry's global trace index.
        index: usize,
    },
}

impl std::fmt::Display for PartsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartsError::VocabularyNotCanonical => {
                write!(f, "vocabulary is not sorted strictly ascending")
            }
            PartsError::IdOutOfRange { trace, id, vocab } => write!(
                f,
                "trace {trace} references event id {id} outside the \
                 vocabulary of {vocab}"
            ),
            PartsError::OverlappingSegments { first, second } => {
                write!(f, "segments at offsets {first} and {second} overlap")
            }
            PartsError::SkippedOutOfSegment { index } => {
                write!(f, "skip entry {index} lies outside its segment")
            }
            PartsError::SkippedNotEmptied { index } => write!(
                f,
                "skip entry {index} names a trace that was not emptied \
                 (or a zero non-finite count)"
            ),
        }
    }
}

impl std::error::Error for PartsError {}

impl ShardPartial {
    /// Disassembles the partial into serializable parts; the inverse
    /// of [`ShardPartial::from_parts`].
    pub fn to_parts(&self) -> ShardPartialParts {
        ShardPartialParts {
            names: self.interner.names().to_vec(),
            segments: self
                .segments
                .values()
                .map(|s| SegmentParts {
                    offset: s.offset,
                    traces: s.traces.clone(),
                    skipped: s.skipped.clone(),
                })
                .collect(),
        }
    }

    /// Reassembles a partial from parts, validating every structural
    /// invariant the rest of the pipeline assumes: canonical
    /// vocabulary, in-range event ids, disjoint segments, and skip
    /// entries that point at emptied traces inside their segment.
    /// Group tables are rebuilt from the traces.
    ///
    /// # Errors
    ///
    /// Returns a [`PartsError`] naming the first violated invariant;
    /// this function never panics on malformed input, which is what
    /// makes it safe to feed from an untrusted checkpoint file.
    pub fn from_parts(
        parts: ShardPartialParts,
    ) -> Result<ShardPartial, PartsError> {
        let sorted = parts.names.windows(2).all(|w| w[0] < w[1]);
        if !sorted {
            return Err(PartsError::VocabularyNotCanonical);
        }
        let mut interner = EventInterner::new();
        for name in &parts.names {
            interner.intern(name);
        }
        let vocab = interner.len();

        let mut partial = ShardPartial {
            interner,
            segments: BTreeMap::new(),
        };
        let mut prev_range: Option<(usize, usize)> = None;
        let mut by_offset: Vec<&SegmentParts> = parts.segments.iter().collect();
        by_offset.sort_by_key(|s| s.offset);
        for seg in by_offset {
            let end = seg.offset + seg.traces.len();
            if let Some((prev_off, prev_end)) = prev_range {
                if seg.offset < prev_end {
                    return Err(PartsError::OverlappingSegments {
                        first: prev_off,
                        second: seg.offset,
                    });
                }
            }
            if !seg.traces.is_empty() {
                prev_range = Some((seg.offset, end));
            }
            for (i, trace) in seg.traces.iter().enumerate() {
                for id in trace.ids() {
                    if id.index() >= vocab {
                        return Err(PartsError::IdOutOfRange {
                            trace: seg.offset + i,
                            id: id.index(),
                            vocab,
                        });
                    }
                }
            }
            let mut prev_skip: Option<usize> = None;
            for &(index, count) in &seg.skipped {
                if index < seg.offset
                    || index >= end
                    || prev_skip.is_some_and(|p| index <= p)
                {
                    return Err(PartsError::SkippedOutOfSegment { index });
                }
                if count == 0 || !seg.traces[index - seg.offset].is_empty() {
                    return Err(PartsError::SkippedNotEmptied { index });
                }
                prev_skip = Some(index);
            }
            if seg.traces.is_empty() {
                continue;
            }
            let mut groups: Vec<Vec<f64>> = vec![Vec::new(); vocab];
            for trace in &seg.traces {
                for (&id, &mw) in trace.ids().iter().zip(trace.powers()) {
                    groups[id.index()].push(mw);
                }
            }
            partial.segments.insert(
                seg.offset,
                Segment {
                    offset: seg.offset,
                    traces: seg.traces.clone(),
                    skipped: seg.skipped.clone(),
                    groups,
                },
            );
        }
        partial.coalesce();
        Ok(partial)
    }
}

/// An incrementally folded fleet: the merged [`ShardPartial`] plus
/// per-event **sorted runs** maintained alongside it, so the analysis
/// phase can k-way merge each group's runs
/// ([`SortedGroup::merge_runs`]) instead of re-argsorting the world
/// after the fold.
///
/// Deltas must arrive in trace order, each extending the fold
/// contiguously — exactly how the daemon folds spilled segments (seq
/// order) followed by resident deltas (accept order), and how the
/// streaming CLI folds one bundle file at a time. Under that
/// discipline every group's population is the concatenation of its
/// runs in absorb order, so the merged [`SortedGroup`] — and therefore
/// every statistic [`EnergyDx::analyze_streamed`] serves — is
/// bit-identical to the one-shot argsort the resident path computes.
#[derive(Debug, Clone, Default)]
pub struct StreamingFold {
    partial: ShardPartial,
    /// Sorted runs per vocabulary id of `partial`, in trace order.
    slots: Vec<SlotRuns>,
}

/// One event group's accumulated sorted runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct SlotRuns {
    /// The group's population, one sorted run per absorbed segment
    /// that touched it, in absorb (= trace) order.
    runs: Vec<SortedGroup>,
    /// A run failed to sort (NaN smuggled into a population): the
    /// whole group is degenerate, matching what the one-shot argsort
    /// of the concatenation would conclude.
    poisoned: bool,
}

impl StreamingFold {
    /// The empty fold.
    pub fn new() -> Self {
        StreamingFold::default()
    }

    /// Traces folded so far.
    pub fn trace_count(&self) -> usize {
        self.partial.trace_count()
    }

    /// The merged partial folded so far.
    pub fn partial(&self) -> &ShardPartial {
        &self.partial
    }

    /// Consumes the fold, keeping only the merged partial.
    pub fn into_partial(self) -> ShardPartial {
        self.partial
    }

    /// Deterministic estimate of the fold's resident size in bytes:
    /// the merged partial plus every retained sorted run. Like
    /// [`ShardPartial::approx_bytes`], a fixed function of shape, for
    /// cache budget accounting.
    pub fn approx_bytes(&self) -> usize {
        const SLOT_OVERHEAD: usize = 32;
        let runs: usize = self
            .slots
            .iter()
            .map(|s| {
                SLOT_OVERHEAD
                    + s.runs
                        .iter()
                        .map(SortedGroup::approx_bytes)
                        .sum::<usize>()
            })
            .sum();
        self.partial.approx_bytes() + runs
    }

    /// Folds the next delta in. The delta's group populations are
    /// sorted now, as runs; the final merge is deferred to
    /// [`EnergyDx::analyze_streamed`], which k-way merges each group's
    /// accumulated runs once.
    ///
    /// # Panics
    ///
    /// Panics if the delta does not extend the fold contiguously (its
    /// first trace must be the fold's current end) — out-of-order
    /// absorption would silently scramble the run concatenation order,
    /// so it is a caller error, exactly like overlapping merges.
    pub fn absorb(&mut self, delta: ShardPartial) {
        if delta.is_empty() {
            return;
        }
        let start = delta
            .segments
            .keys()
            .next()
            .copied()
            .expect("non-empty partial has a segment");
        assert_eq!(
            start,
            self.partial.end_offset(),
            "streaming fold requires contiguous deltas in trace order"
        );
        // Sort the delta's populations while they are still per-run:
        // one sorted run per (segment, group) in offset order.
        let delta_names = delta.vocabulary().to_vec();
        let mut delta_slots: Vec<SlotRuns> =
            vec![SlotRuns::default(); delta_names.len()];
        for segment in delta.segments.values() {
            for (id, powers) in segment.groups.iter().enumerate() {
                if powers.is_empty() {
                    continue;
                }
                match SortedGroup::new(powers) {
                    Ok(run) => delta_slots[id].runs.push(run),
                    Err(_) => delta_slots[id].poisoned = true,
                }
            }
        }
        let old_names = self.partial.vocabulary().to_vec();
        self.partial = std::mem::take(&mut self.partial).merge(delta);
        // The merged vocabulary is the canonical union: re-scatter the
        // accumulated slots, then append the delta's runs — existing
        // runs cover earlier traces, so they stay first.
        let new_names = self.partial.vocabulary();
        let mut slots: Vec<SlotRuns> =
            vec![SlotRuns::default(); new_names.len()];
        for (old_id, slot) in
            std::mem::take(&mut self.slots).into_iter().enumerate()
        {
            let new_id = new_names
                .binary_search(&old_names[old_id])
                .expect("union vocabulary keeps every name");
            slots[new_id] = slot;
        }
        for (old_id, slot) in delta_slots.into_iter().enumerate() {
            let new_id = new_names
                .binary_search(&delta_names[old_id])
                .expect("union vocabulary keeps every name");
            slots[new_id].poisoned |= slot.poisoned;
            slots[new_id].runs.extend(slot.runs);
        }
        self.slots = slots;
    }
}

/// The memoized per-event-group statistics cache shared by Steps 2–3,
/// indexed densely by [`EventId`].
///
/// Each event group's power population is sorted **once** (via
/// [`SortedGroup`]); the Step-2 rank vector and the Step-3
/// normalization base (configured percentile, median-guarded) are both
/// served from that single sorted view and reused for every trace,
/// instead of being re-sorted per statistic as the textbook pipeline
/// does. Built on the worker pool, one task per event group.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupStatCache {
    /// One entry per vocabulary id.
    stats: Vec<GroupStat>,
}

/// Per-event-group derived statistics.
#[derive(Debug, Clone, PartialEq)]
struct GroupStat {
    /// Step-2 average ranks, `None` for a degenerate group.
    ranks: Option<Vec<f64>>,
    /// Step-3 normalization base, `None` for a degenerate group.
    base: Option<f64>,
}

impl GroupStatCache {
    /// Builds the cache from merged dense group populations (one slot
    /// per vocabulary id), one worker-pool task per event group.
    pub fn build(
        groups: &[Vec<f64>],
        config: &AnalysisConfig,
        jobs: usize,
    ) -> Self {
        GroupStatCache {
            stats: crate::par::par_map(groups, jobs, |_, powers| {
                GroupStat::compute(powers, config)
            }),
        }
    }

    /// Builds the cache from pre-sorted runs accumulated by a
    /// [`StreamingFold`]: each group's runs are k-way merged once
    /// ([`SortedGroup::merge_runs`]) instead of the population being
    /// re-argsorted, and the merged view serves the same bits as
    /// [`GroupStatCache::build`] over the concatenated populations.
    fn build_from_runs(
        slots: &[SlotRuns],
        config: &AnalysisConfig,
        jobs: usize,
    ) -> Self {
        GroupStatCache {
            stats: crate::par::par_map(slots, jobs, |_, slot| {
                if slot.poisoned {
                    return GroupStat {
                        ranks: None,
                        base: None,
                    };
                }
                match SortedGroup::merge_runs(&slot.runs) {
                    Ok(group) => GroupStat::of_group(&group, config),
                    // No runs: the group is empty, hence degenerate —
                    // the same verdict `SortedGroup::new(&[])` returns
                    // on the resident path.
                    Err(_) => GroupStat {
                        ranks: None,
                        base: None,
                    },
                }
            }),
        }
    }

    /// Event groups in the cache (the vocabulary size).
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Groups whose statistics could not be computed (NaN smuggled
    /// past sanitation, or an empty population).
    pub fn degenerate_count(&self) -> usize {
        self.stats.iter().filter(|s| s.ranks.is_none()).count()
    }

    /// The Step-3 normalization base per vocabulary id, `None` for
    /// degenerate groups.
    pub fn bases(&self) -> Vec<Option<f64>> {
        self.stats.iter().map(|s| s.base).collect()
    }

    /// The Step-2 rankings per vocabulary id, consuming the cache.
    fn into_rankings(self) -> Vec<Option<Vec<f64>>> {
        self.stats.into_iter().map(|s| s.ranks).collect()
    }
}

impl GroupStat {
    /// One sort of the group population, both derived statistics.
    ///
    /// The base formula must stay bit-identical to
    /// [`crate::pipeline::step3_normalize`]'s computation —
    /// [`SortedGroup`] serves the same bits as independent
    /// `percentile`/`average_ranks` calls on the same population.
    fn compute(powers: &[f64], config: &AnalysisConfig) -> GroupStat {
        let Ok(group) = SortedGroup::new(powers) else {
            return GroupStat {
                ranks: None,
                base: None,
            };
        };
        GroupStat::of_group(&group, config)
    }

    /// The shared statistics body, given the sorted view — whether it
    /// came from a fresh argsort ([`GroupStat::compute`]) or a k-way
    /// run merge ([`GroupStatCache::build_from_runs`]), the same
    /// expressions run on the same bits.
    fn of_group(group: &SortedGroup, config: &AnalysisConfig) -> GroupStat {
        let ranks = Some(group.average_ranks());
        let base =
            group.percentile(config.base_percentile).ok().and_then(|p| {
                let base = p
                    .max(group.median() * config.base_guard_fraction)
                    .max(config.min_base_mw);
                (base.is_finite() && base > 0.0).then_some(base)
            });
        GroupStat { ranks, base }
    }
}

/// The Step-5 aggregation state: impacted-trace counts and window
/// proximities in a dense table indexed by [`EventId`]. Commutative
/// and associative under [`Step5Partial::absorb_trace`]-style
/// accumulation — counts add, proximities take the `usize` minimum —
/// so traces can be scanned in any order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Step5Partial {
    /// Traces covered, impacted or not (the fraction denominator).
    pub total: usize,
    /// `(impacted-trace count, smallest window distance)` per
    /// vocabulary id; `(0, usize::MAX)` marks an unimpacted event.
    by_event: Vec<(usize, usize)>,
}

impl Step5Partial {
    /// An empty aggregation over a vocabulary of `vocab` events.
    pub fn new(vocab: usize) -> Self {
        Step5Partial {
            total: 0,
            by_event: vec![(0, usize::MAX); vocab],
        }
    }

    /// Folds in one trace's window scan (see
    /// [`crate::pipeline`]'s per-trace Step-5 unit), expressed in this
    /// partial's vocabulary.
    pub fn absorb_trace(&mut self, impact: &[(EventId, usize)]) {
        self.total += 1;
        for &(id, distance) in impact {
            let entry = &mut self.by_event[id.index()];
            entry.0 += 1;
            entry.1 = entry.1.min(distance);
        }
    }

    /// Merges another partial (shard-level Step-5 state over the same
    /// vocabulary) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the vocabularies differ in size — remap both sides to
    /// a common interner first.
    pub fn merge(&mut self, other: Step5Partial) {
        assert_eq!(
            self.by_event.len(),
            other.by_event.len(),
            "Step5Partial vocabularies differ"
        );
        self.total += other.total;
        for (mine, (count, distance)) in
            self.by_event.iter_mut().zip(other.by_event)
        {
            mine.0 += count;
            mine.1 = mine.1.min(distance);
        }
    }

    /// Sorts the aggregated events by closeness to the developer
    /// fraction — the final, inherently global piece of Step 5. Names
    /// are resolved here, at the boundary; the ordering is the shared
    /// total chain of [`crate::pipeline::step5_report`].
    pub fn into_ranked(
        self,
        interner: &EventInterner,
        config: &AnalysisConfig,
    ) -> Vec<RankedEvent> {
        if self.total == 0 {
            return Vec::new();
        }
        let total = self.total;
        let mut ranked: Vec<RankedEvent> = self
            .by_event
            .into_iter()
            .enumerate()
            .filter(|&(_, (count, _))| count > 0)
            .map(|(id, (count, proximity))| RankedEvent {
                event: interner.names()[id].clone(),
                impacted_fraction: count as f64 / total as f64,
                proximity,
            })
            .collect();
        sort_ranked_events(&mut ranked, config);
        ranked
    }
}

/// Balanced contiguous shard bounds: `len` traces into at most
/// `shards` runs, each `(start, end)` half-open, first remainders one
/// longer.
///
/// # Examples
///
/// ```
/// # use energydx::shard::shard_bounds;
/// assert_eq!(shard_bounds(5, 2), vec![(0, 3), (3, 5)]);
/// assert_eq!(shard_bounds(2, 8), vec![(0, 1), (1, 2)]);
/// assert!(shard_bounds(0, 3).is_empty());
/// ```
pub fn shard_bounds(len: usize, shards: usize) -> Vec<(usize, usize)> {
    if len == 0 || shards == 0 {
        return Vec::new();
    }
    let shards = shards.min(len);
    let base = len / shards;
    let remainder = len % shards;
    let mut bounds = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let size = base + usize::from(i < remainder);
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

/// A fully analyzed fleet: everything Steps 2–5 produce, still in
/// interned (id-only) form. [`EnergyDx::render`] turns it into a
/// [`DiagnosisReport`] by resolving names at the boundary; keeping the
/// two apart lets callers (the hot-path benchmark in particular)
/// measure analysis without report materialization.
#[derive(Debug, Clone)]
pub struct AnalyzedFleet {
    interner: EventInterner,
    traces: Vec<InternedTrace>,
    skipped: Vec<(usize, usize)>,
    outcomes: Vec<TraceOutcome>,
    rankings: Vec<Option<Vec<f64>>>,
    step5: Step5Partial,
    degenerate_groups: usize,
}

/// Per-trace analysis products, id-only.
#[derive(Debug, Clone)]
struct TraceOutcome {
    normalized: Vec<f64>,
    amplitudes: Vec<f64>,
    upper_fence: Option<f64>,
    outliers: Vec<usize>,
}

impl AnalyzedFleet {
    /// Number of traces analyzed (including emptied slots).
    pub fn trace_count(&self) -> usize {
        self.traces.len()
    }

    /// Total manifestation points detected across the fleet.
    pub fn detection_count(&self) -> usize {
        self.outcomes.iter().map(|o| o.outliers.len()).sum()
    }

    /// Deterministic estimate of the analyzed fleet's resident size in
    /// bytes, for cache budget accounting — the same shape-based
    /// discipline as [`ShardPartial::approx_bytes`]: per-instance
    /// column widths and flat container overheads, never allocator
    /// slack.
    pub fn approx_bytes(&self) -> usize {
        let names: usize = self
            .interner
            .names()
            .iter()
            .map(|n| n.len() + NAME_OVERHEAD)
            .sum();
        let traces: usize = self
            .traces
            .iter()
            .map(|t| TRACE_OVERHEAD + t.ids().len() * INSTANCE_BYTES)
            .sum();
        let outcomes: usize = self
            .outcomes
            .iter()
            .map(|o| {
                TRACE_OVERHEAD
                    + (o.normalized.len() + o.amplitudes.len()) * 8
                    + o.outliers.len() * 8
            })
            .sum();
        let rankings: usize = self
            .rankings
            .iter()
            .map(|r| TRACE_OVERHEAD + r.as_ref().map_or(0, |v| v.len() * 8))
            .sum();
        names
            + traces
            + outcomes
            + rankings
            + self.skipped.len() * SKIP_BYTES
            + self.step5.by_event.len() * 16
    }
}

impl EnergyDx {
    /// The map phase: Step-1 per-trace work (sanitation + interning)
    /// over one shard of the fleet, on the worker pool. `offset` is
    /// the global index of the shard's first trace.
    ///
    /// Traces are *interned, not cloned*: each instance contributes a
    /// `u32` id and an `f64` power to the partial; its event string is
    /// looked up against a vocabulary built in one sequential pre-scan
    /// (so interning stays deterministic under any worker count) and
    /// canonicalized to name order.
    pub fn map_shard(
        &self,
        traces: &[Vec<PoweredInstance>],
        offset: usize,
    ) -> ShardPartial {
        let _span = self.metrics.span("map");
        let non_finite: Vec<usize> =
            crate::par::par_map(traces, self.jobs(), |_, trace| {
                trace.iter().filter(|p| !p.power_mw.is_finite()).count()
            });
        // Sequential vocabulary pre-scan over clean traces; corrupt
        // traces are excluded exactly as their populations are.
        let mut interner = EventInterner::new();
        for (trace, &bad) in traces.iter().zip(&non_finite) {
            if bad == 0 {
                for p in trace {
                    interner.intern(&p.instance.event);
                }
            }
        }
        // No ids are issued yet, so the canonicalization remap is
        // dropped; workers below intern against the sorted vocabulary.
        interner.canonicalize();
        let interned: Vec<InternedTrace> =
            crate::par::par_map(traces, self.jobs(), |i, trace| {
                if non_finite[i] > 0 {
                    InternedTrace::default()
                } else {
                    InternedTrace::from_powered_in(trace, &interner)
                }
            });
        let mut groups: Vec<Vec<f64>> = vec![Vec::new(); interner.len()];
        for trace in &interned {
            for (&id, &mw) in trace.ids().iter().zip(trace.powers()) {
                groups[id.index()].push(mw);
            }
        }
        let skipped: Vec<(usize, usize)> = non_finite
            .iter()
            .enumerate()
            .filter(|&(_, &bad)| bad > 0)
            .map(|(i, &bad)| (offset + i, bad))
            .collect();
        let mut partial = ShardPartial {
            interner,
            segments: BTreeMap::new(),
        };
        partial.insert(Segment {
            offset,
            traces: interned,
            skipped,
            groups,
        });
        partial
    }

    /// The reduce phase, analysis half: Steps 2–5 over a merged
    /// partial covering the whole fleet, entirely on interned ids.
    /// Per-group and per-trace work runs on the worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::IncompleteFleet`] if the partial's
    /// segments do not form one contiguous run starting at trace 0.
    pub fn analyze(
        &self,
        partial: ShardPartial,
    ) -> Result<AnalyzedFleet, ShardError> {
        let _span = self.metrics.span("analyze");
        if !partial.is_complete() {
            return Err(ShardError::IncompleteFleet {
                covered: partial.segments.keys().copied().collect(),
            });
        }
        let interner = partial.interner;
        let (traces, skipped, groups) =
            match partial.segments.into_values().next() {
                Some(segment) => {
                    (segment.traces, segment.skipped, segment.groups)
                }
                None => (Vec::new(), Vec::new(), Vec::new()),
            };
        let cache = GroupStatCache::build(&groups, self.config(), self.jobs());
        Ok(self.analyze_with_cache(interner, traces, skipped, cache))
    }

    /// Steps 2–5 over a [`StreamingFold`] — the same analysis as
    /// [`EnergyDx::analyze`] but with the group statistics served from
    /// the fold's accumulated sorted runs (one k-way merge per group,
    /// never a re-argsort). Byte-identical to analyzing the fold's
    /// merged partial on the resident path.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::IncompleteFleet`] if the fold's partial
    /// does not form one contiguous run starting at trace 0.
    pub fn analyze_streamed(
        &self,
        fold: StreamingFold,
    ) -> Result<AnalyzedFleet, ShardError> {
        let _span = self.metrics.span("analyze");
        let StreamingFold { partial, slots } = fold;
        if !partial.is_complete() {
            return Err(ShardError::IncompleteFleet {
                covered: partial.segments.keys().copied().collect(),
            });
        }
        let cache =
            GroupStatCache::build_from_runs(&slots, self.config(), self.jobs());
        let interner = partial.interner;
        let (traces, skipped) = match partial.segments.into_values().next() {
            Some(segment) => (segment.traces, segment.skipped),
            None => (Vec::new(), Vec::new()),
        };
        Ok(self.analyze_with_cache(interner, traces, skipped, cache))
    }

    /// The shared per-trace half of Steps 2–5, once the group
    /// statistics cache exists.
    fn analyze_with_cache(
        &self,
        interner: EventInterner,
        traces: Vec<InternedTrace>,
        skipped: Vec<(usize, usize)>,
        cache: GroupStatCache,
    ) -> AnalyzedFleet {
        let config = self.config();
        let bases = cache.bases();

        let per_trace =
            crate::par::par_map(&traces, self.jobs(), |_, trace| {
                let normalized = normalize_interned(trace, &bases, config);
                let (amplitudes, fences, outliers) =
                    detect_series(&normalized, config);
                let impact = trace_impact_interned(trace, &outliers, config);
                let outcome = TraceOutcome {
                    normalized,
                    amplitudes,
                    upper_fence: fences.map(|f| f.upper),
                    outliers,
                };
                (outcome, impact)
            });

        let mut step5 = Step5Partial::new(interner.len());
        let mut outcomes = Vec::with_capacity(per_trace.len());
        for (outcome, impact) in per_trace {
            step5.absorb_trace(&impact);
            outcomes.push(outcome);
        }

        AnalyzedFleet {
            degenerate_groups: cache.degenerate_count(),
            rankings: cache.into_rankings(),
            interner,
            traces,
            skipped,
            outcomes,
            step5,
        }
    }

    /// The reduce phase, rendering half: resolves interned ids back to
    /// event names and assembles the [`DiagnosisReport`]. This is the
    /// only place the hot path allocates strings again.
    pub fn render(&self, fleet: AnalyzedFleet) -> DiagnosisReport {
        let _span = self.metrics.span("render");
        let AnalyzedFleet {
            interner,
            traces,
            skipped,
            outcomes,
            rankings,
            step5,
            degenerate_groups,
        } = fleet;
        let config = self.config();

        let ranked_events = step5.into_ranked(&interner, config);

        // The interner is canonical (name-sorted), so id order *is*
        // BTreeMap key order; the map is built without re-sorting.
        let rankings: BTreeMap<String, Vec<f64>> = rankings
            .into_iter()
            .enumerate()
            .filter_map(|(id, ranks)| {
                Some((interner.names()[id].clone(), ranks?))
            })
            .collect();

        let trace_analyses: Vec<TraceAnalysis> = traces
            .iter()
            .zip(outcomes)
            .map(|(trace, outcome)| {
                let manifestation_points = outcome
                    .outliers
                    .iter()
                    .map(|&idx| ManifestationPoint {
                        instance_index: idx,
                        event: interner.resolve(trace.ids()[idx]).to_owned(),
                        amplitude: outcome.amplitudes[idx],
                    })
                    .collect();
                TraceAnalysis {
                    raw_power_mw: trace.powers().to_vec(),
                    events: trace
                        .ids()
                        .iter()
                        .map(|&id| interner.resolve(id).to_owned())
                        .collect(),
                    normalized_power: outcome.normalized,
                    amplitudes: outcome.amplitudes,
                    upper_fence: outcome.upper_fence,
                    manifestation_points,
                }
            })
            .collect();

        let stats = AnalysisStats {
            total_traces: traces.len(),
            analyzed_traces: traces.len() - skipped.len(),
            skipped: skipped
                .into_iter()
                .map(|(index, count)| SkippedTrace {
                    index,
                    reason: format!("{count} non-finite power value(s)"),
                })
                .collect(),
            degenerate_groups,
        };

        DiagnosisReport {
            traces: trace_analyses,
            events: ranked_events,
            rankings,
            top_k: config.top_k,
            stats,
        }
    }

    /// The full reduce phase: [`EnergyDx::analyze`] then
    /// [`EnergyDx::render`]. The result is byte-identical to
    /// [`EnergyDx::diagnose_reference`] on the same fleet.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::IncompleteFleet`] if the partial's
    /// segments do not form one contiguous run starting at trace 0.
    pub fn finish(
        &self,
        partial: ShardPartial,
    ) -> Result<DiagnosisReport, ShardError> {
        let _span = self.metrics.span("finish");
        Ok(self.render(self.analyze(partial)?))
    }

    /// [`EnergyDx::analyze_streamed`] then [`EnergyDx::render`] — the
    /// streaming counterpart of [`EnergyDx::finish`].
    ///
    /// # Errors
    ///
    /// As [`EnergyDx::analyze_streamed`].
    pub fn finish_streamed(
        &self,
        fold: StreamingFold,
    ) -> Result<DiagnosisReport, ShardError> {
        let _span = self.metrics.span("finish");
        Ok(self.render(self.analyze_streamed(fold)?))
    }

    /// Diagnoses the fleet in `shards` independent shards whose
    /// partials are then merged and finished — the distributed-backend
    /// dataflow, exercised end-to-end on one machine. Byte-identical to
    /// [`EnergyDx::diagnose`] for every shard count.
    pub fn diagnose_sharded(
        &self,
        input: &crate::input::DiagnosisInput,
        shards: usize,
    ) -> DiagnosisReport {
        let traces = input.traces();
        let partials: Vec<ShardPartial> = shard_bounds(traces.len(), shards)
            .into_iter()
            .map(|(start, end)| self.map_shard(&traces[start..end], start))
            .collect();
        let partial = {
            let _span = self.metrics.span("merge");
            partials
                .into_iter()
                .fold(ShardPartial::empty(), ShardPartial::merge)
        };
        self.finish(partial)
            .expect("a partition of the fleet merges to a complete partial")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::DiagnosisInput;
    use energydx_trace::event::EventInstance;

    fn instance(event: &str, start: u64, mw: f64) -> PoweredInstance {
        PoweredInstance {
            instance: EventInstance::new(event, start, start + 10),
            power_mw: mw,
        }
    }

    fn fleet() -> DiagnosisInput {
        let mut traces: Vec<Vec<PoweredInstance>> = (0..7)
            .map(|t| {
                (0..30)
                    .map(|i| {
                        instance(
                            if i % 7 == 0 { "B" } else { "A" },
                            i * 500,
                            100.0 + ((i + t) % 4) as f64,
                        )
                    })
                    .collect()
            })
            .collect();
        for p in traces[2].iter_mut().skip(14) {
            p.power_mw *= 6.0;
        }
        traces[5][3].power_mw = f64::NAN;
        DiagnosisInput::new(traces)
    }

    #[test]
    fn sharded_equals_reference_for_every_shard_count() {
        let input = fleet();
        let dx = EnergyDx::default();
        let reference = dx.diagnose_reference(&input);
        for shards in 1..=8 {
            assert_eq!(
                dx.diagnose_sharded(&input, shards),
                reference,
                "shards={shards}"
            );
        }
    }

    #[test]
    fn rebase_equals_mapping_at_the_shifted_offset() {
        let input = fleet();
        let dx = EnergyDx::default();
        let traces = input.traces();
        for (start, end) in shard_bounds(traces.len(), 3) {
            let local = dx.map_shard(&traces[start..end], 0);
            let global = dx.map_shard(&traces[start..end], start);
            assert_eq!(local.rebase(start), global, "shard [{start}, {end})");
        }
    }

    #[test]
    fn rebase_zero_is_identity_and_rebased_shards_concatenate() {
        let input = fleet();
        let dx = EnergyDx::default();
        let traces = input.traces();
        let mut merged = ShardPartial::empty();
        let mut base = 0;
        for (start, end) in shard_bounds(traces.len(), 3) {
            // Each worker maps its slice with local offsets 0..n; the
            // coordinator places it after everything merged so far.
            let local = dx.map_shard(&traces[start..end], 0);
            assert_eq!(local.clone().rebase(0), local);
            merged = merged.merge(local.rebase(base));
            base = merged.trace_count();
        }
        assert!(merged.is_complete());
        assert_eq!(dx.finish(merged).unwrap(), dx.diagnose_reference(&input));
    }

    #[test]
    fn rebase_to_reanchors_in_both_directions() {
        let input = fleet();
        let dx = EnergyDx::default();
        let traces = input.traces();
        for (start, end) in shard_bounds(traces.len(), 3) {
            // Shift down: a partial mapped at a global offset
            // re-anchored at zero equals the local mapping — the
            // inverse of `rebase`.
            let global = dx.map_shard(&traces[start..end], start);
            let local = dx.map_shard(&traces[start..end], 0);
            assert_eq!(global.clone().rebase_to(0), local);
            // Shift up agrees with `rebase`, and the round trip is
            // the identity.
            assert_eq!(local.clone().rebase_to(start), global);
            assert_eq!(global.clone().rebase_to(start), global);
        }
        assert_eq!(ShardPartial::empty().rebase_to(7), ShardPartial::empty());
    }

    #[test]
    fn merge_is_order_independent() {
        let input = fleet();
        let dx = EnergyDx::default();
        let traces = input.traces();
        let parts: Vec<ShardPartial> = shard_bounds(traces.len(), 3)
            .into_iter()
            .map(|(s, e)| dx.map_shard(&traces[s..e], s))
            .collect();
        let [a, b, c] = <[ShardPartial; 3]>::try_from(parts).unwrap();
        let forward = a.clone().merge(b.clone()).merge(c.clone());
        let backward = c.merge(b).merge(a);
        assert_eq!(forward, backward);
        assert_eq!(dx.finish(forward).unwrap(), dx.diagnose_reference(&input));
    }

    #[test]
    fn empty_partial_is_merge_identity() {
        let input = fleet();
        let dx = EnergyDx::default();
        let mapped = dx.map_shard(input.traces(), 0);
        let merged = ShardPartial::empty()
            .merge(mapped.clone())
            .merge(ShardPartial::empty());
        assert_eq!(merged, mapped);
    }

    #[test]
    fn partial_vocabulary_is_canonical() {
        let input = fleet();
        let mapped = EnergyDx::default().map_shard(input.traces(), 0);
        assert_eq!(mapped.vocabulary(), ["A", "B"]);
    }

    #[test]
    fn merging_disjoint_vocabularies_remaps_ids() {
        // Two shards whose event vocabularies do not overlap at all:
        // after the merge both segments must be expressed in the
        // sorted union, from either merge direction.
        let dx = EnergyDx::default();
        let left: Vec<Vec<PoweredInstance>> = vec![(0..10)
            .map(|i| instance("zz", i * 500, 100.0 + i as f64))
            .collect()];
        let right: Vec<Vec<PoweredInstance>> = vec![(0..10)
            .map(|i| instance("aa", i * 500, 200.0 + i as f64))
            .collect()];
        let a = dx.map_shard(&left, 0);
        let b = dx.map_shard(&right, 1);
        let forward = a.clone().merge(b.clone());
        let backward = b.merge(a);
        assert_eq!(forward, backward);
        assert_eq!(forward.vocabulary(), ["aa", "zz"]);
        let input =
            DiagnosisInput::new(left.into_iter().chain(right).collect());
        assert_eq!(dx.finish(forward).unwrap(), dx.diagnose_reference(&input));
    }

    #[test]
    fn finish_rejects_a_gap() {
        let input = fleet();
        let dx = EnergyDx::default();
        let traces = input.traces();
        // Map only the first and last thirds; the middle is missing.
        let partial = dx
            .map_shard(&traces[..2], 0)
            .merge(dx.map_shard(&traces[5..], 5));
        let err = dx.finish(partial).unwrap_err();
        assert!(matches!(err, ShardError::IncompleteFleet { .. }));
        assert!(err.to_string().contains("contiguous"));
    }

    #[test]
    fn finish_of_empty_partial_is_the_empty_report() {
        let dx = EnergyDx::default();
        let report = dx.finish(ShardPartial::empty()).unwrap();
        assert_eq!(report, dx.diagnose_reference(&DiagnosisInput::default()));
    }

    #[test]
    fn skipped_indices_are_global() {
        let input = fleet();
        let dx = EnergyDx::default();
        let report = dx.diagnose_sharded(&input, 4);
        assert_eq!(report.stats.skipped.len(), 1);
        assert_eq!(report.stats.skipped[0].index, 5);
    }

    #[test]
    fn analyze_exposes_fleet_shape_without_rendering() {
        let input = fleet();
        let dx = EnergyDx::default();
        let analyzed = dx.analyze(dx.map_shard(input.traces(), 0)).unwrap();
        assert_eq!(analyzed.trace_count(), 7);
        assert!(analyzed.detection_count() >= 1);
        let report = dx.render(analyzed);
        assert_eq!(report, dx.diagnose_reference(&input));
    }

    #[test]
    fn streaming_fold_equals_the_resident_path_byte_for_byte() {
        let input = fleet();
        let dx = EnergyDx::default();
        let traces = input.traces();
        let reference = dx.diagnose_reference(&input).to_canonical_json();
        // Fold one trace at a time, two at a time, and in a 3/4 split:
        // every schedule must serve the reference bytes.
        for chunk in [1, 2, 3] {
            let mut fold = StreamingFold::new();
            let mut offset = 0;
            for slice in traces.chunks(chunk) {
                fold.absorb(dx.map_shard(slice, offset));
                offset += slice.len();
            }
            assert_eq!(fold.trace_count(), traces.len());
            let report = dx.finish_streamed(fold).unwrap();
            assert_eq!(
                report.to_canonical_json(),
                reference,
                "chunk = {chunk}"
            );
        }
    }

    #[test]
    fn streaming_fold_of_nothing_is_the_empty_report() {
        let dx = EnergyDx::default();
        let report = dx.finish_streamed(StreamingFold::new()).unwrap();
        assert_eq!(report, dx.diagnose_reference(&DiagnosisInput::default()));
    }

    #[test]
    fn streaming_fold_keeps_the_partial_reachable() {
        let input = fleet();
        let dx = EnergyDx::default();
        let mut fold = StreamingFold::new();
        fold.absorb(dx.map_shard(input.traces(), 0));
        let resident = dx.map_shard(input.traces(), 0);
        assert_eq!(fold.partial(), &resident);
        assert_eq!(fold.into_partial(), resident);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn streaming_fold_rejects_out_of_order_deltas() {
        let input = fleet();
        let dx = EnergyDx::default();
        let mut fold = StreamingFold::new();
        fold.absorb(dx.map_shard(&input.traces()[2..4], 2));
    }

    #[test]
    fn approx_bytes_tracks_the_partial_shape() {
        let input = fleet();
        let dx = EnergyDx::default();
        let whole = dx.map_shard(input.traces(), 0);
        let half = dx.map_shard(&input.traces()[..3], 0);
        assert_eq!(ShardPartial::empty().approx_bytes(), 0);
        assert!(whole.approx_bytes() > half.approx_bytes());
        // Deterministic: the same partial always accounts identically.
        assert_eq!(
            whole.approx_bytes(),
            dx.map_shard(input.traces(), 0).approx_bytes()
        );
        // And merging accounts for the union, not the sum of headers:
        // a merged partial never reports more than its pieces did.
        let a = dx.map_shard(&input.traces()[..3], 0);
        let b = dx.map_shard(&input.traces()[3..], 3);
        let merged_bytes = a.approx_bytes() + b.approx_bytes();
        assert!(a.merge(b).approx_bytes() <= merged_bytes);
    }

    #[test]
    fn shard_bounds_partition_the_range() {
        for len in 0..40 {
            for shards in 0..10 {
                let bounds = shard_bounds(len, shards);
                let covered: usize = bounds.iter().map(|(s, e)| e - s).sum();
                if len == 0 || shards == 0 {
                    assert!(bounds.is_empty());
                } else {
                    assert_eq!(covered, len);
                    assert_eq!(bounds[0].0, 0);
                    assert_eq!(bounds.last().unwrap().1, len);
                    for w in bounds.windows(2) {
                        assert_eq!(w[0].1, w[1].0);
                        assert!(!bounds.iter().any(|(s, e)| s >= e));
                    }
                }
            }
        }
    }
}
