//! Fleet-sharded, worker-pool execution of the manifestation analysis.
//!
//! The paper evaluates 40 apps with ~30 volunteers each; the ROADMAP
//! target is millions of users. At that scale the fleet cannot be
//! analyzed as one sequential pass, so the 5-step pipeline is split
//! along its natural data-parallel seams:
//!
//! ```text
//!        map (per trace, worker pool)          merge           detect (per group / per trace)
//! traces ──────────────────────────▶ ShardPartial ⊕ ShardPartial ──▶ finish ──▶ DiagnosisReport
//!   sanitize + per-trace EventGroups    associative merge        Step 2–5 on the pool
//! ```
//!
//! - **Map** ([`EnergyDx::map_shard`]): Step 1–2 per-trace work —
//!   sanitation and event-group collection — runs independently per
//!   trace on the [`crate::par`] worker pool and folds into a
//!   [`ShardPartial`].
//! - **Merge** ([`ShardPartial::merge`]): partials carry their global
//!   trace offsets, so shards of the fleet can be mapped on different
//!   workers (or different machines) and combined in **any order** —
//!   the merge is associative and commutative, with
//!   [`ShardPartial::empty`] as identity.
//! - **Finish** ([`EnergyDx::finish`]): Steps 2–5 run over the merged
//!   partial — per *event group* for the memoized rank/percentile cache
//!   ([`GroupStatCache`]), per *trace* for normalization, detection,
//!   and the Step-5 window scan — again on the worker pool.
//!
//! The headline guarantee, enforced by `tests/diff_harness.rs` and the
//! golden reports under `tests/golden/`, is that sequential, parallel,
//! and sharded-then-merged execution produce **byte-identical**
//! [`DiagnosisReport`]s: every parallel unit is a pure function of its
//! inputs, every merge combines exact values (integer counts, `usize`
//! minima, order-preserving concatenation), and results are reassembled
//! in input order.

use crate::config::AnalysisConfig;
use crate::pipeline::{
    detect_series, normalize_trace, trace_impact, EnergyDx, EventGroups,
};
use crate::report::{
    AnalysisStats, DiagnosisReport, ManifestationPoint, RankedEvent,
    SkippedTrace, TraceAnalysis,
};
use energydx_stats::{average_ranks, percentile_many};
use energydx_trace::join::PoweredInstance;
use std::collections::BTreeMap;

/// A fleet analysis partial: one or more runs of contiguous traces
/// after the per-trace map phase (sanitation + event-group collection).
///
/// Partials merge associatively and commutatively; [`EnergyDx::finish`]
/// requires the merged result to cover a contiguous fleet starting at
/// trace 0.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShardPartial {
    /// Disjoint segments keyed by their first global trace index.
    segments: BTreeMap<usize, Segment>,
}

/// One contiguous run of mapped traces.
#[derive(Debug, Clone, PartialEq)]
struct Segment {
    offset: usize,
    /// Sanitized traces (corrupt ones emptied, slots kept).
    traces: Vec<Vec<PoweredInstance>>,
    /// `(global index, non-finite count)` of emptied traces, ascending.
    skipped: Vec<(usize, usize)>,
    /// Event-group powers of this segment, in trace order.
    groups: EventGroups,
}

impl Segment {
    fn end(&self) -> usize {
        self.offset + self.traces.len()
    }

    /// Appends an adjacent segment (`next.offset == self.end()`).
    fn absorb(&mut self, next: Segment) {
        debug_assert_eq!(self.end(), next.offset);
        self.groups.merge(next.groups);
        self.traces.extend(next.traces);
        self.skipped.extend(next.skipped);
    }
}

impl ShardPartial {
    /// The identity partial: merging it into anything is a no-op.
    pub fn empty() -> Self {
        ShardPartial::default()
    }

    /// Number of traces covered (across all segments).
    pub fn trace_count(&self) -> usize {
        self.segments.values().map(|s| s.traces.len()).sum()
    }

    /// Whether the partial covers one contiguous run starting at trace
    /// 0 (vacuously true when empty), i.e. is ready for
    /// [`EnergyDx::finish`].
    pub fn is_complete(&self) -> bool {
        match self.segments.len() {
            0 => true,
            1 => self.segments.contains_key(&0),
            _ => false,
        }
    }

    /// Merges another partial into this one. Associative and
    /// commutative: segments are keyed by global trace offset and
    /// adjacent runs are coalesced by order-preserving concatenation,
    /// so any merge tree over a partition of the fleet produces the
    /// same partial.
    ///
    /// # Panics
    ///
    /// Panics if the two partials cover overlapping trace ranges —
    /// that is a caller error (the same shard merged twice), not a
    /// data-quality condition.
    pub fn merge(mut self, other: ShardPartial) -> ShardPartial {
        for (_, segment) in other.segments {
            self.insert(segment);
        }
        self.coalesce();
        self
    }

    fn insert(&mut self, segment: Segment) {
        if segment.traces.is_empty() {
            return;
        }
        if let Some((_, prev)) =
            self.segments.range(..=segment.offset).next_back()
        {
            assert!(
                prev.end() <= segment.offset,
                "overlapping shard partials: [{}, {}) and [{}, {})",
                prev.offset,
                prev.end(),
                segment.offset,
                segment.end(),
            );
        }
        if let Some((&next_off, _)) =
            self.segments.range(segment.offset..).next()
        {
            assert!(
                segment.end() <= next_off,
                "overlapping shard partials at offset {}",
                segment.offset,
            );
        }
        self.segments.insert(segment.offset, segment);
    }

    fn coalesce(&mut self) {
        let old = std::mem::take(&mut self.segments);
        let mut merged: Vec<Segment> = Vec::with_capacity(old.len());
        for segment in old.into_values() {
            match merged.last_mut() {
                Some(prev) if prev.end() == segment.offset => {
                    prev.absorb(segment);
                }
                _ => merged.push(segment),
            }
        }
        self.segments = merged.into_iter().map(|s| (s.offset, s)).collect();
    }
}

/// Why a merged partial could not be finished into a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The partial does not cover a contiguous fleet starting at trace
    /// 0; some shard was never mapped or merged in.
    IncompleteFleet {
        /// First trace indices of the runs that are present.
        covered: Vec<usize>,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::IncompleteFleet { covered } => write!(
                f,
                "shard partial is not a contiguous fleet from trace 0 \
                 (segments start at {covered:?})"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

/// The memoized per-event-group statistics cache shared by Steps 2–3.
///
/// Each event group's power population is sorted **once**; the Step-2
/// rank vector and the Step-3 normalization base (10th percentile,
/// median-guarded) are both derived from it and reused for every trace,
/// instead of being recomputed per step as the textbook pipeline does.
/// Built on the worker pool, one task per event group.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupStatCache {
    stats: BTreeMap<String, GroupStat>,
}

/// Per-event-group derived statistics.
#[derive(Debug, Clone, PartialEq)]
struct GroupStat {
    /// Step-2 average ranks, `None` for a degenerate group.
    ranks: Option<Vec<f64>>,
    /// Step-3 normalization base, `None` for a degenerate group.
    base: Option<f64>,
}

impl GroupStatCache {
    /// Builds the cache from merged event groups, one worker-pool task
    /// per event group.
    pub fn build(
        groups: &EventGroups,
        config: &AnalysisConfig,
        jobs: usize,
    ) -> Self {
        let entries: Vec<(&String, &Vec<f64>)> = groups.powers.iter().collect();
        let computed =
            crate::par::par_map(&entries, jobs, |_, &(event, powers)| {
                (event.clone(), GroupStat::compute(powers, config))
            });
        GroupStatCache {
            stats: computed.into_iter().collect(),
        }
    }

    /// Event groups in the cache.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// The Step-2 rankings of every non-degenerate group.
    pub fn rankings(&self) -> BTreeMap<String, Vec<f64>> {
        self.stats
            .iter()
            .filter_map(|(event, stat)| {
                Some((event.clone(), stat.ranks.clone()?))
            })
            .collect()
    }

    /// The Step-3 normalization bases of every non-degenerate group.
    pub fn bases(&self) -> BTreeMap<&str, f64> {
        self.stats
            .iter()
            .filter_map(|(event, stat)| Some((event.as_str(), stat.base?)))
            .collect()
    }
}

impl GroupStat {
    /// One sort of the group population, both derived statistics.
    ///
    /// The base formula must stay bit-identical to
    /// [`crate::pipeline::step3_normalize`]'s inline computation —
    /// `percentile_many` returns the same bits as two independent
    /// `percentile` calls.
    fn compute(powers: &[f64], config: &AnalysisConfig) -> GroupStat {
        let ranks = average_ranks(powers).ok();
        let base = percentile_many(powers, &[config.base_percentile, 50.0])
            .ok()
            .and_then(|pm| {
                let base = pm[0]
                    .max(pm[1] * config.base_guard_fraction)
                    .max(config.min_base_mw);
                (base.is_finite() && base > 0.0).then_some(base)
            });
        GroupStat { ranks, base }
    }
}

/// The Step-5 aggregation state: per-event impacted-trace counts and
/// window proximities. Commutative and associative under
/// [`Step5Partial::absorb`]-style accumulation — counts add, proximities
/// take the `usize` minimum — so traces can be scanned in any order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Step5Partial {
    /// Traces covered, impacted or not (the fraction denominator).
    pub total: usize,
    /// Event → (impacted-trace count, smallest window distance).
    by_event: BTreeMap<String, (usize, usize)>,
}

impl Step5Partial {
    /// An empty aggregation.
    pub fn new() -> Self {
        Step5Partial::default()
    }

    /// Folds in one trace's window scan (see
    /// [`crate::pipeline::trace_impact`]).
    pub fn absorb_trace(&mut self, impact: BTreeMap<String, usize>) {
        self.total += 1;
        for (event, distance) in impact {
            let entry = self.by_event.entry(event).or_insert((0, usize::MAX));
            entry.0 += 1;
            entry.1 = entry.1.min(distance);
        }
    }

    /// Merges another partial (shard-level Step-5 state) into this one.
    pub fn merge(&mut self, other: Step5Partial) {
        self.total += other.total;
        for (event, (count, distance)) in other.by_event {
            let entry = self.by_event.entry(event).or_insert((0, usize::MAX));
            entry.0 += count;
            entry.1 = entry.1.min(distance);
        }
    }

    /// Sorts the aggregated events by closeness to the developer
    /// fraction — the final, inherently global piece of Step 5. The
    /// tie-break chain is total and documented: distance to the
    /// developer fraction, then higher impacted fraction, then smaller
    /// proximity, then event name.
    pub fn into_ranked(self, config: &AnalysisConfig) -> Vec<RankedEvent> {
        if self.total == 0 {
            return Vec::new();
        }
        let total = self.total;
        let mut ranked: Vec<RankedEvent> = self
            .by_event
            .into_iter()
            .map(|(event, (count, proximity))| RankedEvent {
                event,
                impacted_fraction: count as f64 / total as f64,
                proximity,
            })
            .collect();
        ranked.sort_by(|a, b| {
            let da = (a.impacted_fraction - config.developer_fraction).abs();
            let db = (b.impacted_fraction - config.developer_fraction).abs();
            da.total_cmp(&db)
                .then_with(|| {
                    b.impacted_fraction.total_cmp(&a.impacted_fraction)
                })
                .then_with(|| a.proximity.cmp(&b.proximity))
                .then_with(|| a.event.cmp(&b.event))
        });
        ranked
    }
}

/// Balanced contiguous shard bounds: `len` traces into at most
/// `shards` runs, each `(start, end)` half-open, first remainders one
/// longer.
///
/// # Examples
///
/// ```
/// # use energydx::shard::shard_bounds;
/// assert_eq!(shard_bounds(5, 2), vec![(0, 3), (3, 5)]);
/// assert_eq!(shard_bounds(2, 8), vec![(0, 1), (1, 2)]);
/// assert!(shard_bounds(0, 3).is_empty());
/// ```
pub fn shard_bounds(len: usize, shards: usize) -> Vec<(usize, usize)> {
    if len == 0 || shards == 0 {
        return Vec::new();
    }
    let shards = shards.min(len);
    let base = len / shards;
    let remainder = len % shards;
    let mut bounds = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let size = base + usize::from(i < remainder);
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

impl EnergyDx {
    /// The map phase: Step 1–2 per-trace work (sanitation + event-group
    /// collection) over one shard of the fleet, on the worker pool.
    /// `offset` is the global index of the shard's first trace.
    pub fn map_shard(
        &self,
        traces: &[Vec<PoweredInstance>],
        offset: usize,
    ) -> ShardPartial {
        let mapped = crate::par::par_map(traces, self.jobs(), |_, trace| {
            let non_finite =
                trace.iter().filter(|p| !p.power_mw.is_finite()).count();
            let sanitized = if non_finite > 0 {
                Vec::new()
            } else {
                trace.clone()
            };
            let groups =
                EventGroups::collect_traces(std::slice::from_ref(&sanitized));
            (sanitized, non_finite, groups)
        });
        let mut traces = Vec::with_capacity(mapped.len());
        let mut skipped = Vec::new();
        let mut groups = EventGroups::default();
        for (index, (trace, non_finite, trace_groups)) in
            mapped.into_iter().enumerate()
        {
            if non_finite > 0 {
                skipped.push((offset + index, non_finite));
            }
            traces.push(trace);
            groups.merge(trace_groups);
        }
        let mut partial = ShardPartial::empty();
        partial.insert(Segment {
            offset,
            traces,
            skipped,
            groups,
        });
        partial
    }

    /// The reduce phase: Steps 2–5 over a merged partial covering the
    /// whole fleet. Per-group and per-trace work runs on the worker
    /// pool; the result is byte-identical to
    /// [`EnergyDx::diagnose_reference`] on the same fleet.
    ///
    /// # Errors
    ///
    /// Returns [`ShardError::IncompleteFleet`] if the partial's
    /// segments do not form one contiguous run starting at trace 0.
    pub fn finish(
        &self,
        partial: ShardPartial,
    ) -> Result<DiagnosisReport, ShardError> {
        if !partial.is_complete() {
            return Err(ShardError::IncompleteFleet {
                covered: partial.segments.keys().copied().collect(),
            });
        }
        let (traces, skipped, groups) =
            match partial.segments.into_values().next() {
                Some(segment) => {
                    (segment.traces, segment.skipped, segment.groups)
                }
                None => (Vec::new(), Vec::new(), EventGroups::default()),
            };
        let config = self.config();

        let cache = GroupStatCache::build(&groups, config, self.jobs());
        let rankings = cache.rankings();
        let bases = cache.bases();

        let per_trace =
            crate::par::par_map(&traces, self.jobs(), |_, trace| {
                let normalized = normalize_trace(trace, &bases, config);
                let (amplitudes, fences, outliers) =
                    detect_series(&normalized, config);
                let impact = trace_impact(trace, &outliers, config);
                let manifestation_points = outliers
                    .iter()
                    .map(|&idx| ManifestationPoint {
                        instance_index: idx,
                        event: trace[idx].instance.event.clone(),
                        amplitude: amplitudes[idx],
                    })
                    .collect();
                let analysis = TraceAnalysis {
                    raw_power_mw: trace.iter().map(|p| p.power_mw).collect(),
                    events: trace
                        .iter()
                        .map(|p| p.instance.event.clone())
                        .collect(),
                    normalized_power: normalized,
                    amplitudes,
                    upper_fence: fences.map(|f| f.upper),
                    manifestation_points,
                };
                (analysis, impact)
            });

        let mut step5 = Step5Partial::new();
        let mut trace_analyses = Vec::with_capacity(per_trace.len());
        for (analysis, impact) in per_trace {
            step5.absorb_trace(impact);
            trace_analyses.push(analysis);
        }
        let ranked_events = step5.into_ranked(config);

        let stats = AnalysisStats {
            total_traces: traces.len(),
            analyzed_traces: traces.len() - skipped.len(),
            skipped: skipped
                .into_iter()
                .map(|(index, count)| SkippedTrace {
                    index,
                    reason: format!("{count} non-finite power value(s)"),
                })
                .collect(),
            degenerate_groups: cache.len() - rankings.len(),
        };

        Ok(DiagnosisReport {
            traces: trace_analyses,
            events: ranked_events,
            rankings,
            top_k: config.top_k,
            stats,
        })
    }

    /// Diagnoses the fleet in `shards` independent shards whose
    /// partials are then merged and finished — the distributed-backend
    /// dataflow, exercised end-to-end on one machine. Byte-identical to
    /// [`EnergyDx::diagnose`] for every shard count.
    pub fn diagnose_sharded(
        &self,
        input: &crate::input::DiagnosisInput,
        shards: usize,
    ) -> DiagnosisReport {
        let traces = input.traces();
        let partial = shard_bounds(traces.len(), shards)
            .into_iter()
            .map(|(start, end)| self.map_shard(&traces[start..end], start))
            .fold(ShardPartial::empty(), ShardPartial::merge);
        self.finish(partial)
            .expect("a partition of the fleet merges to a complete partial")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::DiagnosisInput;
    use energydx_trace::event::EventInstance;

    fn instance(event: &str, start: u64, mw: f64) -> PoweredInstance {
        PoweredInstance {
            instance: EventInstance::new(event, start, start + 10),
            power_mw: mw,
        }
    }

    fn fleet() -> DiagnosisInput {
        let mut traces: Vec<Vec<PoweredInstance>> = (0..7)
            .map(|t| {
                (0..30)
                    .map(|i| {
                        instance(
                            if i % 7 == 0 { "B" } else { "A" },
                            i * 500,
                            100.0 + ((i + t) % 4) as f64,
                        )
                    })
                    .collect()
            })
            .collect();
        for p in traces[2].iter_mut().skip(14) {
            p.power_mw *= 6.0;
        }
        traces[5][3].power_mw = f64::NAN;
        DiagnosisInput::new(traces)
    }

    #[test]
    fn sharded_equals_reference_for_every_shard_count() {
        let input = fleet();
        let dx = EnergyDx::default();
        let reference = dx.diagnose_reference(&input);
        for shards in 1..=8 {
            assert_eq!(
                dx.diagnose_sharded(&input, shards),
                reference,
                "shards={shards}"
            );
        }
    }

    #[test]
    fn merge_is_order_independent() {
        let input = fleet();
        let dx = EnergyDx::default();
        let traces = input.traces();
        let parts: Vec<ShardPartial> = shard_bounds(traces.len(), 3)
            .into_iter()
            .map(|(s, e)| dx.map_shard(&traces[s..e], s))
            .collect();
        let [a, b, c] = <[ShardPartial; 3]>::try_from(parts).unwrap();
        let forward = a.clone().merge(b.clone()).merge(c.clone());
        let backward = c.merge(b).merge(a);
        assert_eq!(forward, backward);
        assert_eq!(dx.finish(forward).unwrap(), dx.diagnose_reference(&input));
    }

    #[test]
    fn empty_partial_is_merge_identity() {
        let input = fleet();
        let dx = EnergyDx::default();
        let mapped = dx.map_shard(input.traces(), 0);
        let merged = ShardPartial::empty()
            .merge(mapped.clone())
            .merge(ShardPartial::empty());
        assert_eq!(merged, mapped);
    }

    #[test]
    fn finish_rejects_a_gap() {
        let input = fleet();
        let dx = EnergyDx::default();
        let traces = input.traces();
        // Map only the first and last thirds; the middle is missing.
        let partial = dx
            .map_shard(&traces[..2], 0)
            .merge(dx.map_shard(&traces[5..], 5));
        let err = dx.finish(partial).unwrap_err();
        assert!(matches!(err, ShardError::IncompleteFleet { .. }));
        assert!(err.to_string().contains("contiguous"));
    }

    #[test]
    fn finish_of_empty_partial_is_the_empty_report() {
        let dx = EnergyDx::default();
        let report = dx.finish(ShardPartial::empty()).unwrap();
        assert_eq!(report, dx.diagnose_reference(&DiagnosisInput::default()));
    }

    #[test]
    fn skipped_indices_are_global() {
        let input = fleet();
        let dx = EnergyDx::default();
        let report = dx.diagnose_sharded(&input, 4);
        assert_eq!(report.stats.skipped.len(), 1);
        assert_eq!(report.stats.skipped[0].index, 5);
    }

    #[test]
    fn shard_bounds_partition_the_range() {
        for len in 0..40 {
            for shards in 0..10 {
                let bounds = shard_bounds(len, shards);
                let covered: usize = bounds.iter().map(|(s, e)| e - s).sum();
                if len == 0 || shards == 0 {
                    assert!(bounds.is_empty());
                } else {
                    assert_eq!(covered, len);
                    assert_eq!(bounds[0].0, 0);
                    assert_eq!(bounds.last().unwrap().1, len);
                    for w in bounds.windows(2) {
                        assert_eq!(w[0].1, w[1].0);
                        assert!(!bounds.iter().any(|(s, e)| s >= e));
                    }
                }
            }
        }
    }
}
