//! Human-readable diagnosis reports.
//!
//! EnergyDx's output is ultimately read by an app developer hunting a
//! bug. This module renders a [`DiagnosisReport`] into the narrative
//! the paper's workflow implies: how many users are affected, where
//! the power transits from normal to abnormal, which events to start
//! from, and how much code that leaves to read.

use crate::config::AnalysisConfig;
use crate::report::{CodeIndex, DiagnosisReport};
use std::fmt::Write as _;

/// Renders the full developer-facing report.
///
/// # Examples
///
/// ```
/// use energydx::{AnalysisConfig, DiagnosisInput, EnergyDx};
/// use energydx::explain::explain;
/// use energydx::report::CodeIndex;
/// # use energydx_trace::event::EventInstance;
/// # use energydx_trace::join::PoweredInstance;
/// # let mk = |mw: f64, i: u64| PoweredInstance {
/// #     instance: EventInstance::new("LA;->onResume", i * 1000, i * 1000 + 10),
/// #     power_mw: mw,
/// # };
/// # let quiet: Vec<_> = (0..20).map(|i| mk(100.0, i)).collect();
/// # let mut hot = quiet.clone();
/// # for p in hot.iter_mut().skip(10) { p.power_mw = 900.0; }
/// let input = DiagnosisInput::new(vec![quiet, hot]);
/// let config = AnalysisConfig::default().with_developer_fraction(0.5);
/// let report = EnergyDx::new(config.clone()).diagnose(&input);
/// let text = explain(&report, &config, Some(&CodeIndex::new(1_000)));
/// assert!(text.contains("manifestation point"));
/// ```
pub fn explain(
    report: &DiagnosisReport,
    config: &AnalysisConfig,
    code: Option<&CodeIndex>,
) -> String {
    let mut out = String::new();
    let impacted = report.impacted_traces();
    let total = report.traces.len();

    if impacted.is_empty() {
        let _ = writeln!(
            out,
            "No abnormal battery drain detected across {total} collected trace(s): \
             every trace's normalized power stays flat after event normalization."
        );
        return out;
    }

    let _ = writeln!(
        out,
        "Abnormal battery drain detected in {} of {} collected trace(s) \
         ({} manifestation point(s) total).",
        impacted.len(),
        total,
        report.manifestation_point_count()
    );
    let _ = writeln!(
        out,
        "You estimated {:.0}% of users are affected; the events below impacted \
         the closest-matching fraction of traces.",
        config.developer_fraction * 100.0
    );
    out.push('\n');

    let _ = writeln!(out, "Start your search from these events:");
    for (i, event) in report.reported_events().iter().enumerate() {
        let lines = code
            .and_then(|c| c.lines_by_event.get(&event.event))
            .copied();
        let location = match lines {
            Some(n) => format!(" ({n} lines)"),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "  {}. {}{location} — impacted {:.0}% of traces, {} event(s) from a \
             manifestation point",
            i + 1,
            event.event,
            event.impacted_fraction * 100.0,
            event.proximity
        );
    }
    out.push('\n');

    let _ = writeln!(out, "Where the power transits from normal to abnormal:");
    for &t in impacted.iter().take(5) {
        let analysis = &report.traces[t];
        for point in analysis.manifestation_points.iter().take(2) {
            let before = analysis.normalized_power[..point.instance_index]
                .last()
                .copied()
                .unwrap_or(1.0);
            let after = analysis
                .normalized_power
                .get(point.instance_index + 1)
                .copied()
                .unwrap_or(before);
            let _ = writeln!(
                out,
                "  trace {t}: at instance {} ({}), normalized power {:.1} -> {:.1}",
                point.instance_index, point.event, before, after
            );
        }
    }
    if impacted.len() > 5 {
        let _ = writeln!(out, "  ... and {} more trace(s)", impacted.len() - 5);
    }

    if let Some(code) = code {
        let diag = code.diagnosis_lines(report.reported_events());
        let _ = writeln!(
            out,
            "\nSearch space: {} of {} lines ({:.1}% reduction).",
            diag,
            code.total_lines,
            code.code_reduction(report.reported_events()) * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiagnosisInput, EnergyDx};
    use energydx_trace::event::EventInstance;
    use energydx_trace::join::PoweredInstance;

    fn mk(event: &str, i: u64, mw: f64) -> PoweredInstance {
        PoweredInstance {
            instance: EventInstance::new(event, i * 1000, i * 1000 + 10),
            power_mw: mw,
        }
    }

    fn faulty_report() -> (DiagnosisReport, AnalysisConfig) {
        let quiet: Vec<_> = (0..24).map(|i| mk("LA;->cb", i, 100.0)).collect();
        let mut hot = quiet.clone();
        for p in hot.iter_mut().skip(12) {
            p.power_mw = 1_200.0;
        }
        let config = AnalysisConfig::default().with_developer_fraction(0.5);
        let report = EnergyDx::new(config.clone())
            .diagnose(&DiagnosisInput::new(vec![quiet, hot]));
        (report, config)
    }

    #[test]
    fn detected_report_mentions_counts_events_and_transition() {
        let (report, config) = faulty_report();
        let mut code = CodeIndex::new(2_000);
        code.insert("LA;->cb", 40);
        let text = explain(&report, &config, Some(&code));
        assert!(text.contains("detected in 1 of 2"));
        assert!(text.contains("LA;->cb (40 lines)"));
        assert!(text.contains("normalized power"));
        assert!(text.contains("Search space: 40 of 2000 lines"));
    }

    #[test]
    fn clean_report_says_so() {
        let quiet: Vec<_> = (0..24).map(|i| mk("LA;->cb", i, 100.0)).collect();
        let config = AnalysisConfig::default();
        let report = EnergyDx::new(config.clone())
            .diagnose(&DiagnosisInput::new(vec![quiet.clone(), quiet]));
        let text = explain(&report, &config, None);
        assert!(text.contains("No abnormal battery drain detected"));
    }

    #[test]
    fn works_without_a_code_index() {
        let (report, config) = faulty_report();
        let text = explain(&report, &config, None);
        assert!(!text.contains("Search space"));
        assert!(text.contains("Start your search"));
    }

    #[test]
    fn many_impacted_traces_are_truncated() {
        let quiet: Vec<_> = (0..24).map(|i| mk("LA;->cb", i, 100.0)).collect();
        let mut traces = vec![quiet.clone(); 4];
        for _ in 0..8 {
            let mut hot = quiet.clone();
            for p in hot.iter_mut().skip(12) {
                p.power_mw = 1_200.0;
            }
            traces.push(hot);
        }
        let config =
            AnalysisConfig::default().with_developer_fraction(8.0 / 12.0);
        let report = EnergyDx::new(config.clone())
            .diagnose(&DiagnosisInput::new(traces));
        let text = explain(&report, &config, None);
        assert!(text.contains("more trace(s)"), "{text}");
    }
}
