//! Analysis input: per-user traces of powered event instances.
//!
//! Step 1 of the analysis produces, for every collected trace, "a
//! sequence of events with their corresponding power in the
//! chronological order". [`DiagnosisInput`] is exactly that. The
//! timestamp join itself is [`energydx_trace::join::join_power`];
//! [`DiagnosisInput::from_traces`] applies it to raw
//! (event trace, power trace) pairs.

use energydx_trace::event::EventTrace;
use energydx_trace::join::{join_power, PoweredInstance};
use energydx_trace::power::PowerTrace;
use serde::{Deserialize, Serialize};

/// The input to the 5-step analysis: one chronologically ordered
/// sequence of powered event instances per collected user trace.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DiagnosisInput {
    traces: Vec<Vec<PoweredInstance>>,
}

impl DiagnosisInput {
    /// Wraps pre-joined traces.
    pub fn new(traces: Vec<Vec<PoweredInstance>>) -> Self {
        DiagnosisInput { traces }
    }

    /// Step 1: joins each `(events, power)` pair by timestamp. Power
    /// traces are expected to be already scaled to a common reference
    /// device (see `energydx_powermodel::scale_trace`).
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx::DiagnosisInput;
    /// # use energydx_trace::event::{Direction, EventRecord, EventTrace};
    /// # use energydx_trace::power::{PowerSample, PowerTrace};
    /// # use energydx_trace::util::Component;
    /// let mut events = EventTrace::new();
    /// events.push(EventRecord::new(0, Direction::Enter, "LA;->onResume"));
    /// events.push(EventRecord::new(600, Direction::Exit, "LA;->onResume"));
    /// let mut power = PowerTrace::new();
    /// let mut s = PowerSample::new(500);
    /// s.set_component(Component::Cpu, 150.0);
    /// power.push(s);
    /// let input = DiagnosisInput::from_traces(&[(events, power)]);
    /// assert_eq!(input.traces()[0][0].power_mw, 150.0);
    /// ```
    pub fn from_traces(pairs: &[(EventTrace, PowerTrace)]) -> Self {
        let traces = pairs
            .iter()
            .map(|(events, power)| {
                let mut instances = events.pair_instances();
                // Chronological order of entry, as the paper plots.
                instances.sort_by_key(|i| i.start_ms);
                join_power(instances, power)
            })
            .collect();
        DiagnosisInput { traces }
    }

    /// The joined traces.
    pub fn traces(&self) -> &[Vec<PoweredInstance>] {
        &self.traces
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether there are no traces.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Total instances across traces.
    pub fn instance_count(&self) -> usize {
        self.traces.iter().map(Vec::len).sum()
    }

    /// Per-trace count of non-finite (`NaN`/infinite) power values.
    /// Corrupt utilization samples — a bit-flipped float that survived
    /// a v1 decode, say — surface here before they can poison the
    /// group statistics.
    pub fn non_finite_counts(&self) -> Vec<usize> {
        self.traces
            .iter()
            .map(|trace| {
                trace.iter().filter(|p| !p.power_mw.is_finite()).count()
            })
            .collect()
    }

    /// Returns a copy with every trace containing non-finite power
    /// emptied out, plus `(index, non_finite_count)` for each such
    /// trace. Emptied traces keep their slot so downstream results
    /// stay parallel to the original input.
    pub fn sanitized(&self) -> (DiagnosisInput, Vec<(usize, usize)>) {
        let counts = self.non_finite_counts();
        let skipped: Vec<(usize, usize)> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect();
        if skipped.is_empty() {
            return (self.clone(), skipped);
        }
        let traces = self
            .traces
            .iter()
            .zip(&counts)
            .map(|(trace, &c)| if c > 0 { Vec::new() } else { trace.clone() })
            .collect();
        (DiagnosisInput { traces }, skipped)
    }

    /// Distinct event identifiers across all traces, sorted.
    pub fn event_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .traces
            .iter()
            .flatten()
            .map(|p| p.instance.event.clone())
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use energydx_trace::event::{Direction, EventInstance, EventRecord};
    use energydx_trace::power::PowerSample;
    use energydx_trace::util::Component;

    fn powered(event: &str, start: u64, mw: f64) -> PoweredInstance {
        PoweredInstance {
            instance: EventInstance::new(event, start, start + 10),
            power_mw: mw,
        }
    }

    #[test]
    fn event_keys_dedupe_across_traces() {
        let input = DiagnosisInput::new(vec![
            vec![powered("A", 0, 1.0), powered("B", 10, 2.0)],
            vec![powered("B", 0, 3.0)],
        ]);
        assert_eq!(input.event_keys(), vec!["A".to_string(), "B".to_string()]);
        assert_eq!(input.instance_count(), 3);
        assert_eq!(input.len(), 2);
    }

    #[test]
    fn from_traces_orders_instances_chronologically() {
        let mut events = EventTrace::new();
        // Nested callbacks: outer starts first but exits last.
        events.push(EventRecord::new(0, Direction::Enter, "Outer"));
        events.push(EventRecord::new(5, Direction::Enter, "Inner"));
        events.push(EventRecord::new(10, Direction::Exit, "Inner"));
        events.push(EventRecord::new(20, Direction::Exit, "Outer"));
        let mut power = PowerTrace::new();
        let mut s = PowerSample::new(10);
        s.set_component(Component::Cpu, 42.0);
        power.push(s);
        let input = DiagnosisInput::from_traces(&[(events, power)]);
        let trace = &input.traces()[0];
        assert_eq!(trace[0].instance.event, "Outer");
        assert_eq!(trace[1].instance.event, "Inner");
        assert!(trace.iter().all(|p| p.power_mw == 42.0));
    }

    #[test]
    fn empty_input_is_empty() {
        let input = DiagnosisInput::default();
        assert!(input.is_empty());
        assert_eq!(input.instance_count(), 0);
        assert!(input.event_keys().is_empty());
    }
}
