//! Property tests for the device simulator (DESIGN.md §6): the
//! lifecycle automaton never corrupts, and any legal action sequence
//! produces well-formed traces.

use energydx_dexir::instr::Instruction;
use energydx_dexir::instrument::{EventPool, Instrumenter};
use energydx_dexir::module::{Class, ComponentKind, Method, Module};
use energydx_droidsim::{Device, LifecycleEvent, LifecycleState, Timeline};
use energydx_trace::util::Component;
use proptest::prelude::*;

fn test_app() -> Module {
    let mut module = Module::new("com.prop.app");
    for name in ["LA;", "LB;", "LC;"] {
        let mut class = Class::new(name, ComponentKind::Activity);
        for cb in [
            "onCreate",
            "onStart",
            "onResume",
            "onPause",
            "onStop",
            "onDestroy",
        ] {
            let mut m = Method::new(cb, "()V");
            m.body = vec![Instruction::ReturnVoid];
            class.methods.push(m);
        }
        let mut click = Method::new("onClick", "()V");
        click.body = vec![Instruction::ReturnVoid];
        class.methods.push(click);
        module.add_class(class).unwrap();
    }
    Instrumenter::new(EventPool::standard())
        .instrument(&module)
        .unwrap()
        .module
}

/// A random user action the driver can always attempt (illegal ones
/// are simply skipped, like a user mashing buttons).
#[derive(Debug, Clone)]
enum Act {
    Launch(u8),
    Back,
    Home,
    Resume,
    Idle(u16),
    Tap(u8),
}

fn act() -> impl Strategy<Value = Act> {
    prop_oneof![
        (0u8..3).prop_map(Act::Launch),
        Just(Act::Back),
        Just(Act::Home),
        Just(Act::Resume),
        (100u16..5_000).prop_map(Act::Idle),
        (0u8..3).prop_map(Act::Tap),
    ]
}

fn class_name(i: u8) -> &'static str {
    ["LA;", "LB;", "LC;"][i as usize % 3]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random event sequences through the lifecycle automaton either
    /// step legally or are rejected; a rejected step leaves the state
    /// unchanged by construction.
    #[test]
    fn lifecycle_automaton_is_total_and_stable(events in prop::collection::vec(0usize..6, 0..40)) {
        use LifecycleEvent as E;
        let all = [E::Create, E::Start, E::Resume, E::Pause, E::Stop, E::Destroy];
        let mut state = LifecycleState::NotCreated;
        for &e in &events {
            if let Some(next) = state.apply(all[e]) {
                state = next;
            }
        }
        // Reaching here without panic is the property; destroyed stays
        // terminal.
        if state == LifecycleState::Destroyed {
            for e in all {
                prop_assert_eq!(state.apply(e), None);
            }
        }
    }

    /// Any random mash of user actions keeps the device consistent:
    /// the event trace is ordered and strictly paired, destroyed
    /// activities have balanced callbacks, and at most one activity is
    /// in the foreground.
    #[test]
    fn random_sessions_produce_valid_traces(actions in prop::collection::vec(act(), 1..40)) {
        let mut device = Device::new(test_app());
        for action in &actions {
            // Errors model user actions that are impossible in the
            // current UI state; they must not corrupt anything.
            let _ = match action {
                Act::Launch(i) => device.launch_activity(class_name(*i)),
                Act::Back => device.press_back(),
                Act::Home => device.press_home(),
                Act::Resume => device.resume_app(),
                Act::Idle(ms) => {
                    device.idle_ms(*ms as u64);
                    Ok(())
                }
                Act::Tap(i) => device.tap(class_name(*i), "onClick"),
            };
            let foregrounds = ["LA;", "LB;", "LC;"]
                .iter()
                .filter(|c| device.activity_state(c).is_foreground())
                .count();
            prop_assert!(foregrounds <= 1, "two foreground activities");
        }
        for class in ["LA;", "LB;", "LC;"] {
            if device.activity_state(class) == LifecycleState::Destroyed {
                prop_assert!(device.audit(class).is_balanced(), "{class} unbalanced");
            }
        }
        let session = device.finish_session();
        session.events.validate().unwrap();
        session.events.pair_instances_strict().unwrap();
    }

    /// Timeline utilization is always within [0, 1] no matter how
    /// intervals overlap.
    #[test]
    fn timeline_utilization_is_bounded(
        spans in prop::collection::vec((0u64..100_000, 1u64..50_000, 0.0f64..2.0), 0..40),
        window in (0u64..100_000, 1u64..100_000),
    ) {
        let mut t = Timeline::new();
        for (start, len, level) in spans {
            t.add(Component::Cpu, start, start + len, level);
        }
        let u = t.mean_utilization(Component::Cpu, window.0, window.0 + window.1);
        prop_assert!((0.0..=1.0).contains(&u), "utilization {u}");
    }

    /// Adding activity never lowers mean utilization over a fixed
    /// window (monotonicity of the integral).
    #[test]
    fn timeline_is_monotone_under_additions(
        base in prop::collection::vec((0u64..50_000, 1u64..20_000, 0.05f64..1.0), 1..10),
        extra in (0u64..50_000, 1u64..20_000, 0.05f64..1.0),
    ) {
        let mut t = Timeline::new();
        for &(start, len, level) in &base {
            t.add(Component::Wifi, start, start + len, level);
        }
        let before = t.mean_utilization(Component::Wifi, 0, 100_000);
        t.add(Component::Wifi, extra.0, extra.0 + extra.1, extra.2);
        let after = t.mean_utilization(Component::Wifi, 0, 100_000);
        prop_assert!(after >= before - 1e-12);
    }
}
