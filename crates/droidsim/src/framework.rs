//! Power effects of framework API invocations.
//!
//! When app code invokes an energy-relevant framework API (the K9 Mail
//! manifestation point in Fig. 2 is literally `Ljava/net/Socket;->connect`),
//! hardware components light up. This module maps invocation targets to
//! transient utilization bursts. Resource *holds* (wakelock, GPS, ...)
//! are modeled separately through the `acquire`/`release` instructions.

use energydx_dexir::instr::{MethodRef, ResourceKind};
use energydx_trace::util::Component;
use serde::{Deserialize, Serialize};

/// A transient hardware burst caused by one API invocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Burst {
    /// The component driven by the call.
    pub component: Component,
    /// Utilization level during the burst (0..=1).
    pub level: f64,
    /// Burst duration in microseconds.
    pub duration_us: u64,
}

impl Burst {
    /// Creates a burst.
    pub fn new(component: Component, level: f64, duration_us: u64) -> Self {
        Burst {
            component,
            level,
            duration_us,
        }
    }
}

/// One pattern rule: substring matches against the callee.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct EffectRule {
    class_contains: String,
    name_contains: String,
    bursts: Vec<Burst>,
}

/// The table mapping framework invocations to hardware bursts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameworkEffects {
    rules: Vec<EffectRule>,
}

impl FrameworkEffects {
    /// The standard table covering the APIs the evaluation apps use.
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_dexir::instr::MethodRef;
    /// # use energydx_droidsim::FrameworkEffects;
    /// let fx = FrameworkEffects::standard();
    /// let connect = MethodRef::new("Ljava/net/Socket;", "connect", "()V");
    /// assert!(!fx.bursts_for(&connect).is_empty());
    /// let helper = MethodRef::new("Lcom/example/Util;", "format", "()V");
    /// assert!(fx.bursts_for(&helper).is_empty());
    /// ```
    pub fn standard() -> Self {
        let rule = |class: &str, name: &str, bursts: Vec<Burst>| EffectRule {
            class_contains: class.to_string(),
            name_contains: name.to_string(),
            bursts,
        };
        FrameworkEffects {
            rules: vec![
                // Network: sockets, HTTP, sync — WiFi radio plus CPU.
                rule(
                    "Ljava/net/Socket;",
                    "connect",
                    vec![
                        Burst::new(Component::Wifi, 0.9, 400_000),
                        Burst::new(Component::Cpu, 0.3, 400_000),
                    ],
                ),
                rule(
                    "Lorg/apache/http/",
                    "",
                    vec![
                        Burst::new(Component::Wifi, 0.8, 300_000),
                        Burst::new(Component::Cpu, 0.25, 300_000),
                    ],
                ),
                rule(
                    "Ljava/net/URL",
                    "open",
                    vec![
                        Burst::new(Component::Wifi, 0.8, 350_000),
                        Burst::new(Component::Cpu, 0.25, 350_000),
                    ],
                ),
                // Storage / database: CPU burst.
                rule(
                    "Landroid/database/",
                    "",
                    vec![Burst::new(Component::Cpu, 0.5, 60_000)],
                ),
                rule(
                    "Ljava/io/",
                    "",
                    vec![Burst::new(Component::Cpu, 0.35, 40_000)],
                ),
                // Rendering: CPU + display refresh.
                rule(
                    "Landroid/graphics/",
                    "",
                    vec![Burst::new(Component::Cpu, 0.4, 30_000)],
                ),
                rule(
                    "Landroid/view/",
                    "invalidate",
                    vec![Burst::new(Component::Cpu, 0.4, 30_000)],
                ),
                // Media.
                rule(
                    "Landroid/media/",
                    "",
                    vec![
                        Burst::new(Component::Audio, 0.8, 1_000_000),
                        Burst::new(Component::Cpu, 0.2, 200_000),
                    ],
                ),
                // Location one-shot reads (holds go through acquire).
                rule(
                    "Landroid/location/",
                    "getLastKnown",
                    vec![Burst::new(Component::Cpu, 0.1, 20_000)],
                ),
                // Cellular data (apps without WiFi preference).
                rule(
                    "Landroid/telephony/",
                    "",
                    vec![Burst::new(Component::Cellular, 0.8, 400_000)],
                ),
            ],
        }
    }

    /// An empty table (no invocation has hardware effects).
    pub fn none() -> Self {
        FrameworkEffects { rules: Vec::new() }
    }

    /// Adds a custom rule matching callees whose class contains
    /// `class_contains` and name contains `name_contains`.
    pub fn with_rule(
        mut self,
        class_contains: impl Into<String>,
        name_contains: impl Into<String>,
        bursts: Vec<Burst>,
    ) -> Self {
        self.rules.push(EffectRule {
            class_contains: class_contains.into(),
            name_contains: name_contains.into(),
            bursts,
        });
        self
    }

    /// The bursts triggered by invoking `target` (first matching rule).
    pub fn bursts_for(&self, target: &MethodRef) -> Vec<Burst> {
        self.rules
            .iter()
            .find(|r| {
                target.class.contains(r.class_contains.as_str())
                    && target.name.contains(r.name_contains.as_str())
            })
            .map(|r| r.bursts.clone())
            .unwrap_or_default()
    }
}

impl Default for FrameworkEffects {
    fn default() -> Self {
        FrameworkEffects::standard()
    }
}

/// The component and level a held resource keeps active, for the
/// no-sleep ABD class: a leaked GPS hold keeps the GPS lane at 1.0
/// until released (cf. Fig. 11, "GPS keeps consuming power in the
/// background").
pub fn hold_effect(kind: ResourceKind) -> (Component, f64) {
    match kind {
        ResourceKind::WakeLock => (Component::Cpu, 0.25),
        ResourceKind::Gps => (Component::Gps, 1.0),
        ResourceKind::WifiLock => (Component::Wifi, 0.5),
        ResourceKind::Sensor => (Component::Cpu, 0.15),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_connect_drives_wifi() {
        let fx = FrameworkEffects::standard();
        let bursts = fx.bursts_for(&MethodRef::new(
            "Ljava/net/Socket;",
            "connect",
            "()V",
        ));
        assert!(bursts.iter().any(|b| b.component == Component::Wifi));
        assert!(bursts.iter().any(|b| b.component == Component::Cpu));
    }

    #[test]
    fn first_matching_rule_wins() {
        let fx = FrameworkEffects::none()
            .with_rule("LA;", "", vec![Burst::new(Component::Cpu, 0.1, 10)])
            .with_rule("LA;", "f", vec![Burst::new(Component::Gps, 1.0, 10)]);
        let bursts = fx.bursts_for(&MethodRef::new("LA;", "f", "()V"));
        assert_eq!(bursts[0].component, Component::Cpu);
    }

    #[test]
    fn unknown_target_has_no_effect() {
        let fx = FrameworkEffects::standard();
        assert!(fx
            .bursts_for(&MethodRef::new("Lcom/app/Helper;", "compute", "()V"))
            .is_empty());
    }

    #[test]
    fn gps_hold_saturates_gps_lane() {
        let (c, level) = hold_effect(ResourceKind::Gps);
        assert_eq!(c, Component::Gps);
        assert_eq!(level, 1.0);
    }

    #[test]
    fn wakelock_hold_keeps_cpu_partially_awake() {
        let (c, level) = hold_effect(ResourceKind::WakeLock);
        assert_eq!(c, Component::Cpu);
        assert!(level > 0.0 && level < 1.0);
    }

    #[test]
    fn media_rule_drives_audio() {
        let fx = FrameworkEffects::standard();
        let bursts = fx.bursts_for(&MethodRef::new(
            "Landroid/media/MediaPlayer;",
            "start",
            "()V",
        ));
        assert!(bursts.iter().any(|b| b.component == Component::Audio));
    }
}
