//! Errors produced by the device simulator.

use crate::lifecycle::{LifecycleEvent, LifecycleState};
use std::error::Error;
use std::fmt;

/// Error type for the `energydx-droidsim` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A lifecycle callback was dispatched in a state that does not
    /// permit it (e.g. `onResume` before `onCreate`).
    IllegalTransition {
        /// The activity class.
        class: String,
        /// The state the activity was in.
        state: LifecycleState,
        /// The callback that was attempted.
        event: LifecycleEvent,
    },
    /// An activity or service class is not declared in the module.
    UnknownClass {
        /// The missing class descriptor.
        class: String,
    },
    /// A UI callback was dispatched on an activity that is not resumed.
    NotInForeground {
        /// The activity class.
        class: String,
    },
    /// A service operation targeted a class that is not a service, or
    /// an activity operation targeted a non-activity.
    WrongComponentKind {
        /// The class descriptor.
        class: String,
        /// What the operation expected.
        expected: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::IllegalTransition {
                class,
                state,
                event,
            } => write!(
                f,
                "illegal lifecycle transition: {event} on {class} in state {state}"
            ),
            SimError::UnknownClass { class } => write!(f, "unknown class {class}"),
            SimError::NotInForeground { class } => {
                write!(f, "{class} is not the foreground activity")
            }
            SimError::WrongComponentKind { class, expected } => {
                write!(f, "{class} is not a {expected}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_class() {
        let e = SimError::UnknownClass {
            class: "LNope;".into(),
        };
        assert!(e.to_string().contains("LNope;"));
    }
}
