//! The activity lifecycle state machine.
//!
//! Android activities move through a fixed lifecycle; the paper's event
//! pool is largely these callbacks (Table I), and its Fig.-1 analysis
//! notes that "five events will typically be generated when a user
//! simply switches from one activity to another" — exactly the sequence
//! [`Device::launch_activity`](crate::Device::launch_activity)
//! dispatches: `old.onPause`, `new.onCreate`, `new.onStart`,
//! `new.onResume`, `old.onStop`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The lifecycle callbacks the state machine understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LifecycleEvent {
    /// `onCreate` — first creation.
    Create,
    /// `onStart` — becoming visible (also the restart path).
    Start,
    /// `onResume` — entering the foreground.
    Resume,
    /// `onPause` — leaving the foreground.
    Pause,
    /// `onStop` — no longer visible.
    Stop,
    /// `onDestroy` — final teardown.
    Destroy,
}

impl LifecycleEvent {
    /// All events in lifecycle order.
    pub const ALL: [LifecycleEvent; 6] = [
        LifecycleEvent::Create,
        LifecycleEvent::Start,
        LifecycleEvent::Resume,
        LifecycleEvent::Pause,
        LifecycleEvent::Stop,
        LifecycleEvent::Destroy,
    ];

    /// The Android callback name (`onCreate`, ...).
    pub fn callback_name(&self) -> &'static str {
        match self {
            LifecycleEvent::Create => "onCreate",
            LifecycleEvent::Start => "onStart",
            LifecycleEvent::Resume => "onResume",
            LifecycleEvent::Pause => "onPause",
            LifecycleEvent::Stop => "onStop",
            LifecycleEvent::Destroy => "onDestroy",
        }
    }
}

impl fmt::Display for LifecycleEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.callback_name())
    }
}

/// The state of one activity instance.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize,
)]
pub enum LifecycleState {
    /// Not yet created (or never launched).
    #[default]
    NotCreated,
    /// `onCreate` has run.
    Created,
    /// Visible (`onStart` has run).
    Started,
    /// Foreground (`onResume` has run).
    Resumed,
    /// Backgrounded but visible state left (`onPause` has run).
    Paused,
    /// Invisible (`onStop` has run).
    Stopped,
    /// Torn down (`onDestroy` has run).
    Destroyed,
}

impl fmt::Display for LifecycleState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LifecycleState::NotCreated => "not-created",
            LifecycleState::Created => "created",
            LifecycleState::Started => "started",
            LifecycleState::Resumed => "resumed",
            LifecycleState::Paused => "paused",
            LifecycleState::Stopped => "stopped",
            LifecycleState::Destroyed => "destroyed",
        };
        f.write_str(s)
    }
}

impl LifecycleState {
    /// The state after `event` fires, or `None` when the transition is
    /// illegal in this state.
    ///
    /// The automaton follows the Android documentation:
    /// `NotCreated →(create) Created →(start) Started →(resume) Resumed
    /// →(pause) Paused →{(resume) Resumed | (stop) Stopped}` and
    /// `Stopped →{(start) Started | (destroy) Destroyed}` (the
    /// restart path re-enters through `onStart`).
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_droidsim::{LifecycleEvent, LifecycleState};
    /// let s = LifecycleState::NotCreated;
    /// let s = s.apply(LifecycleEvent::Create).unwrap();
    /// assert_eq!(s, LifecycleState::Created);
    /// assert_eq!(s.apply(LifecycleEvent::Resume), None); // must start first
    /// ```
    pub fn apply(self, event: LifecycleEvent) -> Option<LifecycleState> {
        use LifecycleEvent as E;
        use LifecycleState as S;
        match (self, event) {
            (S::NotCreated, E::Create) => Some(S::Created),
            (S::Created, E::Start) => Some(S::Started),
            (S::Started, E::Resume) => Some(S::Resumed),
            (S::Resumed, E::Pause) => Some(S::Paused),
            (S::Paused, E::Resume) => Some(S::Resumed),
            (S::Paused, E::Stop) => Some(S::Stopped),
            (S::Stopped, E::Start) => Some(S::Started),
            (S::Stopped, E::Destroy) => Some(S::Destroyed),
            _ => None,
        }
    }

    /// Whether the activity currently owns the screen.
    pub fn is_foreground(&self) -> bool {
        matches!(self, LifecycleState::Resumed)
    }

    /// Whether the activity still exists (created and not destroyed).
    pub fn is_alive(&self) -> bool {
        !matches!(self, LifecycleState::NotCreated | LifecycleState::Destroyed)
    }
}

/// A lifecycle tracker that counts callbacks, used to assert the
/// balanced-callback invariant in tests: an activity that reaches
/// `Destroyed` has `#create == #destroy`, `#start == #stop`, and
/// `#resume == #pause`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LifecycleAudit {
    counts: [u32; 6],
}

impl LifecycleAudit {
    /// Creates an empty audit.
    pub fn new() -> Self {
        LifecycleAudit::default()
    }

    /// Records one event.
    pub fn record(&mut self, event: LifecycleEvent) {
        self.counts[event as usize] += 1;
    }

    /// Count of one event kind.
    pub fn count(&self, event: LifecycleEvent) -> u32 {
        self.counts[event as usize]
    }

    /// Whether the callback pairs balance (valid once destroyed).
    pub fn is_balanced(&self) -> bool {
        self.count(LifecycleEvent::Create)
            == self.count(LifecycleEvent::Destroy)
            && self.count(LifecycleEvent::Start)
                == self.count(LifecycleEvent::Stop)
            && self.count(LifecycleEvent::Resume)
                == self.count(LifecycleEvent::Pause)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LifecycleEvent as E;
    use LifecycleState as S;

    #[test]
    fn happy_path_to_destroyed() {
        let path = [
            E::Create,
            E::Start,
            E::Resume,
            E::Pause,
            E::Stop,
            E::Destroy,
        ];
        let mut s = S::NotCreated;
        let mut audit = LifecycleAudit::new();
        for e in path {
            s = s.apply(e).unwrap_or_else(|| panic!("{e} illegal in {s}"));
            audit.record(e);
        }
        assert_eq!(s, S::Destroyed);
        assert!(audit.is_balanced());
    }

    #[test]
    fn resume_before_create_is_illegal() {
        assert_eq!(S::NotCreated.apply(E::Resume), None);
        assert_eq!(S::Created.apply(E::Resume), None);
    }

    #[test]
    fn pause_resume_cycle_is_legal() {
        let mut s = S::Resumed;
        for _ in 0..5 {
            s = s.apply(E::Pause).unwrap();
            s = s.apply(E::Resume).unwrap();
        }
        assert_eq!(s, S::Resumed);
    }

    #[test]
    fn restart_path_reenters_through_start() {
        let s = S::Stopped.apply(E::Start).unwrap();
        assert_eq!(s, S::Started);
        assert_eq!(s.apply(E::Resume), Some(S::Resumed));
    }

    #[test]
    fn destroyed_is_terminal() {
        for e in E::ALL {
            assert_eq!(S::Destroyed.apply(e), None);
        }
    }

    #[test]
    fn destroy_requires_stop_first() {
        assert_eq!(S::Paused.apply(E::Destroy), None);
        assert_eq!(S::Resumed.apply(E::Destroy), None);
        assert!(S::Stopped.apply(E::Destroy).is_some());
    }

    #[test]
    fn only_resumed_is_foreground() {
        for s in [
            S::NotCreated,
            S::Created,
            S::Started,
            S::Paused,
            S::Stopped,
            S::Destroyed,
        ] {
            assert!(!s.is_foreground());
        }
        assert!(S::Resumed.is_foreground());
    }

    #[test]
    fn alive_states() {
        assert!(!S::NotCreated.is_alive());
        assert!(!S::Destroyed.is_alive());
        assert!(S::Paused.is_alive());
    }

    #[test]
    fn unbalanced_audit_detected() {
        let mut a = LifecycleAudit::new();
        a.record(E::Create);
        a.record(E::Start);
        assert!(!a.is_balanced());
    }

    #[test]
    fn callback_names_match_android() {
        assert_eq!(E::Create.callback_name(), "onCreate");
        assert_eq!(E::Destroy.callback_name(), "onDestroy");
    }
}
