//! The device simulator: virtual clock, lifecycle dispatch, background
//! work, and trace emission.
//!
//! A [`Device`] loads one (typically instrumented) app package and is
//! driven by user actions — launching activities, tapping widgets,
//! pressing home/back, idling. It maintains the hardware timeline and
//! the event trace as side effects, and hands both back as a
//! [`Session`] for upload to the trace store.

use crate::error::SimError;
use crate::framework::{hold_effect, Burst, FrameworkEffects};
use crate::hardware::Timeline;
use crate::interp::{execute, EffectKind, DEFAULT_COST_US, DEFAULT_STEP_LIMIT};
use crate::lifecycle::{LifecycleAudit, LifecycleEvent, LifecycleState};
use energydx_dexir::instr::ResourceKind;
use energydx_dexir::module::{ComponentKind, MethodKey, Module};
use energydx_trace::event::{Direction, EventRecord, EventTrace};
use energydx_trace::util::Component;
use std::collections::{BTreeMap, BTreeSet};

/// The synthetic event the background logger emits while the app idles
/// with no display (cf. `Idle(No_Display)` in Tables IV and VI).
pub const IDLE_EVENT: &str = "Idle(No_Display)";

/// Maximum length of one logged `Idle(No_Display)` instance. The
/// background logger heartbeats: a long background stretch produces a
/// chain of idle instances, so a sustained background drain (the
/// no-sleep/loop ABD signature) is visible across several events
/// rather than collapsed into one.
pub const IDLE_CHUNK_MS: u64 = 2_500;

/// A periodic background work item: models polling services, sync-retry
/// loops, and similar ABD-relevant behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodicTask {
    /// Unique task name (used to cancel).
    pub name: String,
    /// Fire period in milliseconds.
    pub period_ms: u64,
    /// Hardware bursts applied at each tick.
    pub bursts: Vec<Burst>,
    /// Optional callback dispatched at each tick (it is logged if the
    /// app is instrumented — e.g. K9's periodic `checkMail`).
    pub callback: Option<MethodKey>,
    next_fire_us: u64,
}

impl PeriodicTask {
    /// Creates a task that first fires one period from now.
    pub fn new(
        name: impl Into<String>,
        period_ms: u64,
        bursts: Vec<Burst>,
    ) -> Self {
        PeriodicTask {
            name: name.into(),
            period_ms: period_ms.max(1),
            bursts,
            callback: None,
            next_fire_us: 0,
        }
    }

    /// Attaches a callback dispatched at each tick.
    pub fn with_callback(mut self, key: MethodKey) -> Self {
        self.callback = Some(key);
        self
    }
}

/// The traces produced by one user session.
#[derive(Debug, Clone, PartialEq)]
pub struct Session {
    /// The logged event trace (Fig. 5 records).
    pub events: EventTrace,
    /// The hardware utilization timeline the procfs sampler reads.
    pub timeline: Timeline,
    /// Session duration in milliseconds.
    pub duration_ms: u64,
}

/// A simulated phone running one app.
#[derive(Debug)]
pub struct Device {
    module: Module,
    effects: FrameworkEffects,
    clock_us: u64,
    cost_us: u64,
    step_limit: u64,
    activities: BTreeMap<String, LifecycleState>,
    audits: BTreeMap<String, LifecycleAudit>,
    back_stack: Vec<String>,
    services: BTreeSet<String>,
    holds: BTreeMap<ResourceKind, (u32, u64)>,
    tasks: BTreeMap<String, PeriodicTask>,
    display_since: Option<u64>,
    timeline: Timeline,
    events: EventTrace,
    dispatch_log: Vec<(u64, MethodKey)>,
}

impl Device {
    /// Boots a device with the app installed, default framework-effects
    /// table, and default timing parameters.
    pub fn new(module: Module) -> Self {
        Device::with_config(
            module,
            FrameworkEffects::standard(),
            DEFAULT_COST_US,
        )
    }

    /// Boots a device with a custom effects table and cost scale.
    pub fn with_config(
        module: Module,
        effects: FrameworkEffects,
        cost_us: u64,
    ) -> Self {
        Device {
            module,
            effects,
            clock_us: 0,
            cost_us,
            step_limit: DEFAULT_STEP_LIMIT,
            activities: BTreeMap::new(),
            audits: BTreeMap::new(),
            back_stack: Vec::new(),
            services: BTreeSet::new(),
            holds: BTreeMap::new(),
            tasks: BTreeMap::new(),
            display_since: None,
            timeline: Timeline::new(),
            events: EventTrace::new(),
            dispatch_log: Vec::new(),
        }
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.clock_us / 1000
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.clock_us
    }

    /// The installed app package.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The foreground (resumed) activity, if any.
    pub fn foreground(&self) -> Option<&str> {
        self.back_stack
            .last()
            .filter(|c| {
                self.activities
                    .get(*c)
                    .is_some_and(LifecycleState::is_foreground)
            })
            .map(String::as_str)
    }

    /// Lifecycle state of an activity class.
    pub fn activity_state(&self, class: &str) -> LifecycleState {
        self.activities.get(class).copied().unwrap_or_default()
    }

    /// Lifecycle audit (callback counts) of an activity class.
    pub fn audit(&self, class: &str) -> LifecycleAudit {
        self.audits.get(class).cloned().unwrap_or_default()
    }

    /// Whether a resource is currently held.
    pub fn holds(&self, kind: ResourceKind) -> bool {
        self.holds.get(&kind).is_some_and(|(n, _)| *n > 0)
    }

    /// The event records logged so far (instrumented apps only).
    pub fn events(&self) -> &EventTrace {
        &self.events
    }

    /// Every callback dispatched so far, `(timestamp_us, key)`, whether
    /// or not the app is instrumented. Session runners use this to
    /// trigger behaviour hooks.
    pub fn dispatches(&self) -> &[(u64, MethodKey)] {
        &self.dispatch_log
    }

    // ----- user actions -------------------------------------------------

    /// Launches an activity: the previous foreground activity (if any)
    /// pauses, the target goes through create/start (or restart) and
    /// resume, then the previous activity stops — the paper's
    /// five-event switch sequence.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownClass`] /
    /// [`SimError::WrongComponentKind`] for a bad target and
    /// [`SimError::IllegalTransition`] if the lifecycle automaton
    /// rejects a step (a bug in the driving script).
    pub fn launch_activity(&mut self, class: &str) -> Result<(), SimError> {
        self.require_kind(class, ComponentKind::Activity)?;
        if self.foreground() == Some(class) {
            return Ok(());
        }
        let prev = self.foreground().map(str::to_string);
        if let Some(p) = &prev {
            self.lifecycle(p.clone(), LifecycleEvent::Pause)?;
        }
        match self.activity_state(class) {
            LifecycleState::NotCreated => {
                self.lifecycle(class.to_string(), LifecycleEvent::Create)?;
                self.lifecycle(class.to_string(), LifecycleEvent::Start)?;
            }
            LifecycleState::Stopped => {
                self.lifecycle(class.to_string(), LifecycleEvent::Start)?;
            }
            LifecycleState::Paused => {}
            state => {
                return Err(SimError::IllegalTransition {
                    class: class.to_string(),
                    state,
                    event: LifecycleEvent::Resume,
                })
            }
        }
        self.lifecycle(class.to_string(), LifecycleEvent::Resume)?;
        if let Some(p) = prev {
            self.lifecycle(p, LifecycleEvent::Stop)?;
        }
        self.back_stack.retain(|c| c != class);
        self.back_stack.push(class.to_string());
        Ok(())
    }

    /// Presses the home button: the foreground activity pauses and
    /// stops; the app is now background (display off for the app).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::IllegalTransition`] if no activity is
    /// resumed.
    pub fn press_home(&mut self) -> Result<(), SimError> {
        let Some(fg) = self.foreground().map(str::to_string) else {
            return Ok(());
        };
        self.lifecycle(fg.clone(), LifecycleEvent::Pause)?;
        self.lifecycle(fg, LifecycleEvent::Stop)?;
        Ok(())
    }

    /// Returns to the app from the launcher: the back-stack top
    /// restarts and resumes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::IllegalTransition`] when there is nothing to
    /// resume.
    pub fn resume_app(&mut self) -> Result<(), SimError> {
        let Some(top) = self.back_stack.last().cloned() else {
            return Ok(());
        };
        match self.activity_state(&top) {
            LifecycleState::Stopped => {
                self.lifecycle(top.clone(), LifecycleEvent::Start)?;
                self.lifecycle(top, LifecycleEvent::Resume)?;
            }
            LifecycleState::Paused => {
                self.lifecycle(top, LifecycleEvent::Resume)?;
            }
            LifecycleState::Resumed => {}
            state => {
                return Err(SimError::IllegalTransition {
                    class: top,
                    state,
                    event: LifecycleEvent::Resume,
                })
            }
        }
        Ok(())
    }

    /// Presses the back button: finishes the foreground activity
    /// (pause → previous resumes → stop → destroy).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::IllegalTransition`] on automaton violations.
    pub fn press_back(&mut self) -> Result<(), SimError> {
        let Some(cur) = self.back_stack.pop() else {
            return Ok(());
        };
        if self.activity_state(&cur) == LifecycleState::Resumed {
            self.lifecycle(cur.clone(), LifecycleEvent::Pause)?;
        }
        if let Some(prev) = self.back_stack.last().cloned() {
            if self.activity_state(&prev) == LifecycleState::Stopped {
                self.lifecycle(prev.clone(), LifecycleEvent::Start)?;
            }
            if self.activity_state(&prev) == LifecycleState::Started
                || self.activity_state(&prev) == LifecycleState::Paused
            {
                self.lifecycle(prev, LifecycleEvent::Resume)?;
            }
        }
        if self.activity_state(&cur) == LifecycleState::Paused {
            self.lifecycle(cur.clone(), LifecycleEvent::Stop)?;
        }
        self.lifecycle(cur, LifecycleEvent::Destroy)?;
        Ok(())
    }

    /// Dispatches a UI callback (tap, long-press, menu selection) on
    /// the foreground activity or one of the app's listener classes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotInForeground`] when the app is
    /// backgrounded, [`SimError::UnknownClass`] for a bad class.
    pub fn tap(&mut self, class: &str, callback: &str) -> Result<(), SimError> {
        if !self.module.classes.contains_key(class) {
            return Err(SimError::UnknownClass {
                class: class.to_string(),
            });
        }
        if self.foreground().is_none() {
            return Err(SimError::NotInForeground {
                class: class.to_string(),
            });
        }
        self.dispatch_callback(class, callback);
        Ok(())
    }

    /// Starts a service: `onCreate` (first start) then `onStartCommand`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownClass`] /
    /// [`SimError::WrongComponentKind`].
    pub fn start_service(&mut self, class: &str) -> Result<(), SimError> {
        self.require_kind(class, ComponentKind::Service)?;
        if self.services.insert(class.to_string()) {
            self.dispatch_callback(class, "onCreate");
        }
        self.dispatch_callback(class, "onStartCommand");
        Ok(())
    }

    /// Stops a running service (`onDestroy`). No-op when not running.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownClass`] /
    /// [`SimError::WrongComponentKind`].
    pub fn stop_service(&mut self, class: &str) -> Result<(), SimError> {
        self.require_kind(class, ComponentKind::Service)?;
        if self.services.remove(class) {
            self.dispatch_callback(class, "onDestroy");
        }
        Ok(())
    }

    /// Whether a service is running.
    pub fn service_running(&self, class: &str) -> bool {
        self.services.contains(class)
    }

    /// Lets virtual time pass. Periodic tasks fire; when the app is
    /// backgrounded the logger emits one `Idle(No_Display)` event pair
    /// per [`IDLE_CHUNK_MS`] of idle time (heartbeat logging).
    pub fn idle_ms(&mut self, ms: u64) {
        if self.foreground().is_some() {
            self.advance_to(self.clock_us + ms * 1000);
            return;
        }
        let mut remaining = ms;
        while remaining > 0 {
            let chunk = remaining.min(IDLE_CHUNK_MS);
            self.events.push(EventRecord::new(
                self.now_ms(),
                Direction::Enter,
                IDLE_EVENT,
            ));
            self.advance_to(self.clock_us + chunk * 1000);
            self.events.push(EventRecord::new(
                self.now_ms(),
                Direction::Exit,
                IDLE_EVENT,
            ));
            remaining -= chunk;
        }
    }

    // ----- background work and resources --------------------------------

    /// Registers a periodic task; first fires one period from now.
    pub fn schedule_periodic(&mut self, mut task: PeriodicTask) {
        task.next_fire_us = self.clock_us + task.period_ms * 1000;
        self.tasks.insert(task.name.clone(), task);
    }

    /// Cancels a periodic task by name; returns whether it existed.
    pub fn cancel_periodic(&mut self, name: &str) -> bool {
        self.tasks.remove(name).is_some()
    }

    /// Acquires a resource from outside bytecode (used by workload
    /// hooks); equivalent to executing an `acquire` instruction.
    pub fn acquire(&mut self, kind: ResourceKind) {
        self.apply_acquire(kind, self.clock_us);
    }

    /// Releases a resource from outside bytecode.
    pub fn release(&mut self, kind: ResourceKind) {
        self.apply_release(kind, self.clock_us);
    }

    // ----- session -------------------------------------------------------

    /// Ends the session: open holds and the display lane are closed at
    /// the current time, and both traces are handed back.
    pub fn finish_session(mut self) -> Session {
        let now = self.clock_us;
        let holds: Vec<(ResourceKind, u64)> = self
            .holds
            .iter()
            .filter(|(_, (n, _))| *n > 0)
            .map(|(k, (_, since))| (*k, *since))
            .collect();
        for (kind, since) in holds {
            let (component, level) = hold_effect(kind);
            self.timeline.add(component, since, now, level);
        }
        if let Some(since) = self.display_since.take() {
            self.timeline.add(Component::Display, since, now, 1.0);
        }
        Session {
            duration_ms: self.now_ms(),
            events: self.events,
            timeline: self.timeline,
        }
    }

    // ----- internals -----------------------------------------------------

    fn require_kind(
        &self,
        class: &str,
        expected: ComponentKind,
    ) -> Result<(), SimError> {
        let Some(c) = self.module.classes.get(class) else {
            return Err(SimError::UnknownClass {
                class: class.to_string(),
            });
        };
        if c.component != expected {
            return Err(SimError::WrongComponentKind {
                class: class.to_string(),
                expected: match expected {
                    ComponentKind::Activity => "activity",
                    ComponentKind::Service => "service",
                    ComponentKind::Plain => "plain class",
                },
            });
        }
        Ok(())
    }

    /// Applies one lifecycle event: automaton step, display accounting,
    /// then the callback dispatch.
    fn lifecycle(
        &mut self,
        class: String,
        event: LifecycleEvent,
    ) -> Result<(), SimError> {
        let state = self.activity_state(&class);
        let next =
            state
                .apply(event)
                .ok_or_else(|| SimError::IllegalTransition {
                    class: class.clone(),
                    state,
                    event,
                })?;
        // Android inserts onRestart on the stopped→started path.
        if state == LifecycleState::Stopped && event == LifecycleEvent::Start {
            self.dispatch_callback(&class, "onRestart");
        }
        self.activities.insert(class.clone(), next);
        self.audits.entry(class.clone()).or_default().record(event);

        match event {
            LifecycleEvent::Resume if self.display_since.is_none() => {
                self.display_since = Some(self.clock_us);
            }
            LifecycleEvent::Pause => {
                if let Some(since) = self.display_since.take() {
                    self.timeline.add(
                        Component::Display,
                        since,
                        self.clock_us,
                        1.0,
                    );
                }
            }
            _ => {}
        }

        self.dispatch_callback(&class, event.callback_name());
        Ok(())
    }

    /// Runs one callback body (if the class declares it), translating
    /// interpreter effects into absolute records/intervals. Missing
    /// callbacks are silent — exactly the paper's "the manifestation
    /// event is not logged in the trace" case.
    fn dispatch_callback(&mut self, class: &str, name: &str) {
        self.dispatch_log
            .push((self.clock_us, MethodKey::new(class, name)));
        let Some(method) = self
            .module
            .classes
            .get(class)
            .and_then(|c| c.method(name))
            .cloned()
        else {
            return;
        };
        let start_us = self.clock_us;
        let exec = match execute(
            &method,
            &self.effects,
            self.cost_us,
            self.step_limit,
        ) {
            Ok(e) => e,
            // Malformed bodies are rejected at instrumentation time;
            // a failure here means the script drove an unvalidated
            // module — treat the callback as a no-op.
            Err(_) => return,
        };

        for effect in &exec.effects {
            let at = start_us + effect.at_us;
            match &effect.kind {
                EffectKind::LogEnter(event) => {
                    self.events.push(EventRecord::new(
                        at / 1000,
                        Direction::Enter,
                        event.clone(),
                    ));
                }
                EffectKind::LogExit(event) => {
                    self.events.push(EventRecord::new(
                        at / 1000,
                        Direction::Exit,
                        event.clone(),
                    ));
                }
                EffectKind::Acquire(kind) => self.apply_acquire(*kind, at),
                EffectKind::Release(kind) => self.apply_release(*kind, at),
                EffectKind::Burst(burst) => {
                    self.timeline.add(
                        burst.component,
                        at,
                        at + burst.duration_us,
                        burst.level,
                    );
                }
            }
        }
        // The callback itself occupies the CPU.
        self.timeline.add(
            Component::Cpu,
            start_us,
            start_us + exec.elapsed_us,
            0.5,
        );
        self.clock_us = start_us + exec.elapsed_us;
    }

    fn apply_acquire(&mut self, kind: ResourceKind, at_us: u64) {
        let entry = self.holds.entry(kind).or_insert((0, at_us));
        if entry.0 == 0 {
            entry.1 = at_us;
        }
        entry.0 += 1;
    }

    fn apply_release(&mut self, kind: ResourceKind, at_us: u64) {
        if let Some(entry) = self.holds.get_mut(&kind) {
            if entry.0 == 0 {
                return;
            }
            entry.0 -= 1;
            if entry.0 == 0 {
                let (component, level) = hold_effect(kind);
                self.timeline.add(component, entry.1, at_us, level);
            }
        }
    }

    /// Advances the clock to `target_us`, firing periodic tasks in
    /// timestamp order.
    fn advance_to(&mut self, target_us: u64) {
        loop {
            let next = self
                .tasks
                .values()
                .map(|t| (t.next_fire_us, t.name.clone()))
                .filter(|(t, _)| *t <= target_us)
                .min();
            let Some((fire_us, name)) = next else { break };
            self.clock_us = self.clock_us.max(fire_us);
            let (bursts, callback, period_ms) = {
                let task = self.tasks.get_mut(&name).expect("task exists");
                task.next_fire_us = fire_us + task.period_ms * 1000;
                (task.bursts.clone(), task.callback.clone(), task.period_ms)
            };
            debug_assert!(period_ms > 0);
            for burst in bursts {
                self.timeline.add(
                    burst.component,
                    self.clock_us,
                    self.clock_us + burst.duration_us,
                    burst.level,
                );
            }
            if let Some(key) = callback {
                self.dispatch_callback(&key.class, &key.name);
            }
        }
        self.clock_us = self.clock_us.max(target_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use energydx_dexir::instr::Instruction;
    use energydx_dexir::instrument::{EventPool, Instrumenter};
    use energydx_dexir::module::{Class, Method};

    /// A two-activity, one-service app with instrumentation.
    fn instrumented_app() -> Module {
        let mut module = Module::new("com.example");
        for (name, kind) in [
            ("Lcom/example/Main;", ComponentKind::Activity),
            ("Lcom/example/Settings;", ComponentKind::Activity),
        ] {
            let mut class = Class::new(name, kind);
            for cb in [
                "onCreate",
                "onStart",
                "onResume",
                "onPause",
                "onStop",
                "onDestroy",
            ] {
                let mut m = Method::new(cb, "()V");
                m.body = vec![Instruction::ReturnVoid];
                class.methods.push(m);
            }
            let mut click = Method::new("onClick", "()V");
            click.body = vec![Instruction::ReturnVoid];
            class.methods.push(click);
            module.add_class(class).unwrap();
        }
        let mut svc = Class::new("Lcom/example/Sync;", ComponentKind::Service);
        for cb in ["onCreate", "onStartCommand", "onDestroy"] {
            let mut m = Method::new(cb, "()V");
            m.body = vec![Instruction::ReturnVoid];
            svc.methods.push(m);
        }
        module.add_class(svc).unwrap();
        Instrumenter::new(EventPool::standard())
            .instrument(&module)
            .unwrap()
            .module
    }

    #[test]
    fn launch_logs_create_start_resume() {
        let mut d = Device::new(instrumented_app());
        d.launch_activity("Lcom/example/Main;").unwrap();
        let events: Vec<&str> = d
            .events
            .records()
            .iter()
            .map(|r| r.event.as_str())
            .collect();
        assert!(events.contains(&"Lcom/example/Main;->onCreate"));
        assert!(events.contains(&"Lcom/example/Main;->onStart"));
        assert!(events.contains(&"Lcom/example/Main;->onResume"));
        assert_eq!(d.foreground(), Some("Lcom/example/Main;"));
    }

    #[test]
    fn activity_switch_fires_five_lifecycle_events() {
        let mut d = Device::new(instrumented_app());
        d.launch_activity("Lcom/example/Main;").unwrap();
        let before = d.events.len();
        d.launch_activity("Lcom/example/Settings;").unwrap();
        let new: Vec<String> = d.events.records()[before..]
            .iter()
            .filter(|r| r.direction == Direction::Enter)
            .map(|r| r.event.clone())
            .collect();
        assert_eq!(
            new,
            vec![
                "Lcom/example/Main;->onPause",
                "Lcom/example/Settings;->onCreate",
                "Lcom/example/Settings;->onStart",
                "Lcom/example/Settings;->onResume",
                "Lcom/example/Main;->onStop",
            ],
            "the paper's five-event activity switch"
        );
    }

    #[test]
    fn press_back_returns_and_destroys() {
        let mut d = Device::new(instrumented_app());
        d.launch_activity("Lcom/example/Main;").unwrap();
        d.launch_activity("Lcom/example/Settings;").unwrap();
        d.press_back().unwrap();
        assert_eq!(d.foreground(), Some("Lcom/example/Main;"));
        assert_eq!(
            d.activity_state("Lcom/example/Settings;"),
            LifecycleState::Destroyed
        );
        assert!(d.audit("Lcom/example/Settings;").is_balanced());
    }

    #[test]
    fn home_then_resume_restarts_activity() {
        let mut d = Device::new(instrumented_app());
        d.launch_activity("Lcom/example/Main;").unwrap();
        d.press_home().unwrap();
        assert_eq!(d.foreground(), None);
        assert_eq!(
            d.activity_state("Lcom/example/Main;"),
            LifecycleState::Stopped
        );
        d.resume_app().unwrap();
        assert_eq!(d.foreground(), Some("Lcom/example/Main;"));
    }

    #[test]
    fn tap_requires_foreground() {
        let mut d = Device::new(instrumented_app());
        assert!(matches!(
            d.tap("Lcom/example/Main;", "onClick"),
            Err(SimError::NotInForeground { .. })
        ));
        d.launch_activity("Lcom/example/Main;").unwrap();
        d.tap("Lcom/example/Main;", "onClick").unwrap();
        assert!(d
            .events
            .records()
            .iter()
            .any(|r| r.event.ends_with("onClick")));
    }

    #[test]
    fn background_idle_logs_idle_event() {
        let mut d = Device::new(instrumented_app());
        d.launch_activity("Lcom/example/Main;").unwrap();
        d.press_home().unwrap();
        d.idle_ms(5_000);
        let idles: Vec<&EventRecord> = d
            .events
            .records()
            .iter()
            .filter(|r| r.event == IDLE_EVENT)
            .collect();
        // 5 s of background idle → two heartbeat chunks of 2.5 s.
        assert_eq!(idles.len(), 4);
        assert_eq!(
            idles.last().unwrap().timestamp_ms - idles[0].timestamp_ms,
            5_000
        );
    }

    #[test]
    fn foreground_idle_does_not_log_idle_event() {
        let mut d = Device::new(instrumented_app());
        d.launch_activity("Lcom/example/Main;").unwrap();
        d.idle_ms(5_000);
        assert!(!d.events.records().iter().any(|r| r.event == IDLE_EVENT));
    }

    #[test]
    fn display_lane_tracks_foreground_time() {
        let mut d = Device::new(instrumented_app());
        d.launch_activity("Lcom/example/Main;").unwrap();
        d.idle_ms(10_000);
        d.press_home().unwrap();
        d.idle_ms(10_000);
        let session = d.finish_session();
        let fg = session.timeline.mean_utilization(
            Component::Display,
            0,
            10_000_000,
        );
        let bg = session.timeline.mean_utilization(
            Component::Display,
            11_000_000,
            20_000_000,
        );
        assert!(fg > 0.9, "display on while foreground, got {fg}");
        assert_eq!(bg, 0.0, "display off in background");
    }

    #[test]
    fn leaked_hold_keeps_component_active_until_session_end() {
        let mut d = Device::new(instrumented_app());
        d.launch_activity("Lcom/example/Main;").unwrap();
        d.acquire(ResourceKind::Gps);
        d.press_home().unwrap();
        d.idle_ms(20_000);
        let session = d.finish_session();
        let gps = session.timeline.mean_utilization(
            Component::Gps,
            0,
            session.duration_ms * 1000,
        );
        assert!(gps > 0.9, "leaked GPS must stay on, got {gps}");
    }

    #[test]
    fn released_hold_stops_consuming() {
        let mut d = Device::new(instrumented_app());
        d.launch_activity("Lcom/example/Main;").unwrap();
        d.acquire(ResourceKind::Gps);
        d.idle_ms(5_000);
        d.release(ResourceKind::Gps);
        d.idle_ms(5_000);
        let session = d.finish_session();
        let on =
            session
                .timeline
                .mean_utilization(Component::Gps, 0, 5_000_000);
        let off = session.timeline.mean_utilization(
            Component::Gps,
            5_500_000,
            10_000_000,
        );
        assert!(on > 0.9);
        assert_eq!(off, 0.0);
    }

    #[test]
    fn nested_acquires_require_matching_releases() {
        let mut d = Device::new(instrumented_app());
        d.acquire(ResourceKind::WakeLock);
        d.acquire(ResourceKind::WakeLock);
        d.release(ResourceKind::WakeLock);
        assert!(d.holds(ResourceKind::WakeLock));
        d.release(ResourceKind::WakeLock);
        assert!(!d.holds(ResourceKind::WakeLock));
        // Over-release is a no-op.
        d.release(ResourceKind::WakeLock);
        assert!(!d.holds(ResourceKind::WakeLock));
    }

    #[test]
    fn periodic_task_fires_at_period() {
        let mut d = Device::new(instrumented_app());
        d.schedule_periodic(PeriodicTask::new(
            "poll",
            1_000,
            vec![Burst::new(Component::Wifi, 0.8, 200_000)],
        ));
        d.idle_ms(10_500);
        let session = d.finish_session();
        // 10 fires × 200 ms × 0.8 over 10.5 s ≈ 0.152.
        let wifi =
            session
                .timeline
                .mean_utilization(Component::Wifi, 0, 10_500_000);
        assert!((wifi - 0.152).abs() < 0.02, "got {wifi}");
    }

    #[test]
    fn periodic_callback_logs_events() {
        let mut d = Device::new(instrumented_app());
        d.schedule_periodic(
            PeriodicTask::new("mailcheck", 2_000, vec![]).with_callback(
                MethodKey::new("Lcom/example/Sync;", "onStartCommand"),
            ),
        );
        d.launch_activity("Lcom/example/Main;").unwrap();
        d.idle_ms(10_000);
        let count = d
            .events
            .records()
            .iter()
            .filter(|r| {
                r.event.ends_with("onStartCommand")
                    && r.direction == Direction::Enter
            })
            .count();
        assert_eq!(count, 5);
    }

    #[test]
    fn cancel_periodic_stops_firing() {
        let mut d = Device::new(instrumented_app());
        d.schedule_periodic(PeriodicTask::new(
            "poll",
            1_000,
            vec![Burst::new(Component::Wifi, 0.8, 100_000)],
        ));
        d.idle_ms(3_500);
        assert!(d.cancel_periodic("poll"));
        assert!(!d.cancel_periodic("poll"));
        let before = d.timeline.span_count();
        d.idle_ms(5_000);
        assert_eq!(d.timeline.span_count(), before);
    }

    #[test]
    fn service_start_stop_logs_lifecycle() {
        let mut d = Device::new(instrumented_app());
        d.start_service("Lcom/example/Sync;").unwrap();
        assert!(d.service_running("Lcom/example/Sync;"));
        // Second start: only onStartCommand, no second onCreate.
        d.start_service("Lcom/example/Sync;").unwrap();
        d.stop_service("Lcom/example/Sync;").unwrap();
        assert!(!d.service_running("Lcom/example/Sync;"));
        let creates = d
            .events
            .records()
            .iter()
            .filter(|r| {
                r.event == "Lcom/example/Sync;->onCreate"
                    && r.direction == Direction::Enter
            })
            .count();
        assert_eq!(creates, 1);
    }

    #[test]
    fn wrong_component_kind_is_rejected() {
        let mut d = Device::new(instrumented_app());
        assert!(matches!(
            d.launch_activity("Lcom/example/Sync;"),
            Err(SimError::WrongComponentKind { .. })
        ));
        assert!(matches!(
            d.start_service("Lcom/example/Main;"),
            Err(SimError::WrongComponentKind { .. })
        ));
        assert!(matches!(
            d.launch_activity("LNope;"),
            Err(SimError::UnknownClass { .. })
        ));
    }

    #[test]
    fn session_event_trace_pairs_strictly_and_is_ordered() {
        let mut d = Device::new(instrumented_app());
        d.launch_activity("Lcom/example/Main;").unwrap();
        d.tap("Lcom/example/Main;", "onClick").unwrap();
        d.launch_activity("Lcom/example/Settings;").unwrap();
        d.press_back().unwrap();
        d.press_home().unwrap();
        d.idle_ms(3_000);
        d.resume_app().unwrap();
        let session = d.finish_session();
        session.events.validate().unwrap();
        session.events.pair_instances_strict().unwrap();
    }

    #[test]
    fn restart_path_dispatches_on_restart() {
        let mut module = Module::new("com.example");
        let mut act = Class::new("Lcom/example/R;", ComponentKind::Activity);
        for cb in [
            "onCreate",
            "onStart",
            "onResume",
            "onPause",
            "onStop",
            "onRestart",
        ] {
            let mut m = Method::new(cb, "()V");
            m.body = vec![Instruction::ReturnVoid];
            act.methods.push(m);
        }
        module.add_class(act).unwrap();
        let instrumented = Instrumenter::new(EventPool::standard())
            .instrument(&module)
            .unwrap()
            .module;
        let mut d = Device::new(instrumented);
        d.launch_activity("Lcom/example/R;").unwrap();
        let launches = d
            .events
            .records()
            .iter()
            .filter(|r| r.event.ends_with("onRestart"))
            .count();
        assert_eq!(launches, 0, "first launch has no onRestart");
        d.press_home().unwrap();
        d.resume_app().unwrap();
        let restarts = d
            .events
            .records()
            .iter()
            .filter(|r| {
                r.event.ends_with("onRestart")
                    && r.direction == Direction::Enter
            })
            .count();
        assert_eq!(restarts, 1, "stopped -> started goes through onRestart");
    }

    #[test]
    fn relaunching_foreground_activity_is_idempotent() {
        let mut d = Device::new(instrumented_app());
        d.launch_activity("Lcom/example/Main;").unwrap();
        let n = d.events.len();
        d.launch_activity("Lcom/example/Main;").unwrap();
        assert_eq!(d.events.len(), n);
    }
}
