//! The bytecode interpreter.
//!
//! Executes one method body, following real control flow (branches and
//! loops), and reports *effects*: logging ops, resource
//! acquire/release, and framework bursts, each stamped with its offset
//! from the start of the execution. The device translates those offsets
//! into absolute timeline entries and event records.
//!
//! Time model: every instruction contributes `cost() × cost_us`
//! microseconds. With the default of 50 µs per cost unit a typical
//! callback (a few invokes) lasts single-digit milliseconds — matching
//! the paper's "average event latency of all the instrumented apps is
//! less than 9.38 ms".

use crate::framework::{Burst, FrameworkEffects};
use energydx_dexir::instr::{BinOp, Instruction, ResourceKind};
use energydx_dexir::module::Method;
use energydx_dexir::DexError;
use std::collections::HashMap;

/// Default microseconds per abstract cost unit.
pub const DEFAULT_COST_US: u64 = 50;

/// Default interpreter step budget; a body that exceeds it is truncated
/// (the watchdog the real OS would eventually apply as an ANR).
pub const DEFAULT_STEP_LIMIT: u64 = 200_000;

/// One observable side effect of an execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecEffect {
    /// Microseconds since the start of the execution.
    pub at_us: u64,
    /// What happened.
    pub kind: EffectKind,
}

/// The kinds of side effects the interpreter surfaces.
#[derive(Debug, Clone, PartialEq)]
pub enum EffectKind {
    /// A `log-enter` op fired (instrumentation).
    LogEnter(String),
    /// A `log-exit` op fired (instrumentation).
    LogExit(String),
    /// A resource was acquired.
    Acquire(ResourceKind),
    /// A resource was released.
    Release(ResourceKind),
    /// A framework invocation produced a hardware burst.
    Burst(Burst),
}

/// The result of executing one method body.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// Total virtual time consumed, in microseconds.
    pub elapsed_us: u64,
    /// Side effects in chronological order.
    pub effects: Vec<ExecEffect>,
    /// Instructions executed.
    pub steps: u64,
    /// Whether the step budget truncated the execution.
    pub truncated: bool,
}

/// Executes `method` to completion (or truncation).
///
/// Instrumentation pairing is guaranteed: if the execution is truncated
/// while `log-enter`s are open, matching `log-exit` effects are
/// appended at the truncation time, so the resulting event trace always
/// pairs strictly.
///
/// # Errors
///
/// Returns [`DexError`] when the body is malformed (undefined or
/// duplicate labels).
///
/// # Examples
///
/// ```
/// use energydx_dexir::module::Method;
/// use energydx_dexir::instr::{Instruction, Reg};
/// use energydx_droidsim::interp::{execute, DEFAULT_COST_US, DEFAULT_STEP_LIMIT};
/// use energydx_droidsim::FrameworkEffects;
///
/// let mut m = Method::new("onClick", "()V");
/// m.body = vec![
///     Instruction::ConstInt { dst: Reg(0), value: 3 },
///     Instruction::ReturnVoid,
/// ];
/// let exec = execute(&m, &FrameworkEffects::standard(), DEFAULT_COST_US, DEFAULT_STEP_LIMIT)?;
/// assert_eq!(exec.steps, 2);
/// assert!(!exec.truncated);
/// # Ok::<(), energydx_dexir::DexError>(())
/// ```
pub fn execute(
    method: &Method,
    effects: &FrameworkEffects,
    cost_us: u64,
    step_limit: u64,
) -> Result<Execution, DexError> {
    method.validate()?;
    let body = &method.body;

    let mut labels: HashMap<&str, usize> = HashMap::new();
    for (i, instr) in body.iter().enumerate() {
        if let Instruction::Label { name } = instr {
            labels.insert(name, i);
        }
    }

    let mut regs = vec![0i64; method.registers.max(1) as usize + 16];
    let mut pc = 0usize;
    let mut now_us = 0u64;
    let mut steps = 0u64;
    let mut out: Vec<ExecEffect> = Vec::new();
    let mut open_events: Vec<String> = Vec::new();
    let mut truncated = false;

    while pc < body.len() {
        if steps >= step_limit {
            truncated = true;
            break;
        }
        steps += 1;
        let instr = &body[pc];
        now_us += instr.cost() * cost_us;
        let mut next = pc + 1;

        match instr {
            Instruction::Nop | Instruction::Label { .. } => {}
            Instruction::ConstInt { dst, value } => {
                regs[dst.0 as usize] = *value
            }
            Instruction::ConstString { dst, value } => {
                regs[dst.0 as usize] = value.len() as i64;
            }
            Instruction::Move { dst, src } => {
                regs[dst.0 as usize] = regs[src.0 as usize]
            }
            Instruction::BinOp { op, dst, a, b } => {
                let (x, y) = (regs[a.0 as usize], regs[b.0 as usize]);
                regs[dst.0 as usize] = match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                };
            }
            Instruction::Invoke { target, .. } => {
                for burst in effects.bursts_for(target) {
                    out.push(ExecEffect {
                        at_us: now_us,
                        kind: EffectKind::Burst(burst),
                    });
                }
            }
            Instruction::MoveResult { dst } => regs[dst.0 as usize] = 0,
            Instruction::AcquireResource { kind } => out.push(ExecEffect {
                at_us: now_us,
                kind: EffectKind::Acquire(*kind),
            }),
            Instruction::ReleaseResource { kind } => out.push(ExecEffect {
                at_us: now_us,
                kind: EffectKind::Release(*kind),
            }),
            Instruction::Goto { target } => next = labels[target.as_str()],
            Instruction::IfZero { src, target } => {
                if regs[src.0 as usize] == 0 {
                    next = labels[target.as_str()];
                }
            }
            Instruction::ReturnVoid | Instruction::Return { .. } => break,
            Instruction::LogEnter { event } => {
                open_events.push(event.clone());
                out.push(ExecEffect {
                    at_us: now_us,
                    kind: EffectKind::LogEnter(event.clone()),
                });
            }
            Instruction::LogExit { event } => {
                if let Some(pos) = open_events.iter().rposition(|e| e == event)
                {
                    open_events.remove(pos);
                }
                out.push(ExecEffect {
                    at_us: now_us,
                    kind: EffectKind::LogExit(event.clone()),
                });
            }
        }
        pc = next;
    }

    // Close any still-open instrumentation events so pairing is strict.
    while let Some(event) = open_events.pop() {
        out.push(ExecEffect {
            at_us: now_us,
            kind: EffectKind::LogExit(event),
        });
    }

    Ok(Execution {
        elapsed_us: now_us,
        effects: out,
        steps,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use energydx_dexir::instr::{InvokeKind, MethodRef, Reg};

    fn run(body: Vec<Instruction>) -> Execution {
        let mut m = Method::new("m", "()V");
        m.registers = 8;
        m.body = body;
        execute(&m, &FrameworkEffects::standard(), DEFAULT_COST_US, 10_000)
            .unwrap()
    }

    #[test]
    fn counted_loop_executes_n_iterations() {
        // v0 = 3; loop { v0 -= 1; if v0 == 0 break; }
        let body = vec![
            Instruction::ConstInt {
                dst: Reg(0),
                value: 3,
            },
            Instruction::ConstInt {
                dst: Reg(1),
                value: 1,
            },
            Instruction::Label {
                name: "loop".into(),
            },
            Instruction::Invoke {
                kind: InvokeKind::Virtual,
                target: MethodRef::new("Ljava/net/Socket;", "connect", "()V"),
                args: vec![],
            },
            Instruction::BinOp {
                op: BinOp::Sub,
                dst: Reg(0),
                a: Reg(0),
                b: Reg(1),
            },
            Instruction::IfZero {
                src: Reg(0),
                target: "done".into(),
            },
            Instruction::Goto {
                target: "loop".into(),
            },
            Instruction::Label {
                name: "done".into(),
            },
            Instruction::ReturnVoid,
        ];
        let exec = run(body);
        let bursts = exec
            .effects
            .iter()
            .filter(|e| matches!(e.kind, EffectKind::Burst(_)))
            .count();
        // 3 iterations × 2 bursts (wifi + cpu) per connect.
        assert_eq!(bursts, 6);
        assert!(!exec.truncated);
    }

    #[test]
    fn branch_taken_when_zero() {
        let body = vec![
            Instruction::ConstInt {
                dst: Reg(0),
                value: 0,
            },
            Instruction::IfZero {
                src: Reg(0),
                target: "skip".into(),
            },
            Instruction::AcquireResource {
                kind: ResourceKind::Gps,
            },
            Instruction::Label {
                name: "skip".into(),
            },
            Instruction::ReturnVoid,
        ];
        let exec = run(body);
        assert!(exec
            .effects
            .iter()
            .all(|e| !matches!(e.kind, EffectKind::Acquire(_))));
    }

    #[test]
    fn branch_not_taken_when_nonzero() {
        let body = vec![
            Instruction::ConstInt {
                dst: Reg(0),
                value: 7,
            },
            Instruction::IfZero {
                src: Reg(0),
                target: "skip".into(),
            },
            Instruction::AcquireResource {
                kind: ResourceKind::Gps,
            },
            Instruction::Label {
                name: "skip".into(),
            },
            Instruction::ReturnVoid,
        ];
        let exec = run(body);
        assert!(exec
            .effects
            .iter()
            .any(|e| matches!(e.kind, EffectKind::Acquire(ResourceKind::Gps))));
    }

    #[test]
    fn infinite_loop_is_truncated() {
        let body = vec![
            Instruction::Label {
                name: "spin".into(),
            },
            Instruction::ConstInt {
                dst: Reg(0),
                value: 1,
            },
            Instruction::Goto {
                target: "spin".into(),
            },
        ];
        let exec = run(body);
        assert!(exec.truncated);
        assert!(exec.steps >= 10_000);
    }

    #[test]
    fn truncation_closes_open_log_events() {
        let body = vec![
            Instruction::LogEnter {
                event: "LA;->onResume".into(),
            },
            Instruction::Label {
                name: "spin".into(),
            },
            Instruction::Goto {
                target: "spin".into(),
            },
        ];
        let exec = run(body);
        assert!(exec.truncated);
        let exits = exec
            .effects
            .iter()
            .filter(|e| matches!(e.kind, EffectKind::LogExit(_)))
            .count();
        assert_eq!(exits, 1);
    }

    #[test]
    fn elapsed_time_accumulates_per_instruction_cost() {
        let body = vec![
            Instruction::ConstInt {
                dst: Reg(0),
                value: 1,
            }, // cost 1
            Instruction::ReturnVoid, // cost 1
        ];
        let exec = run(body);
        assert_eq!(exec.elapsed_us, 2 * DEFAULT_COST_US);
    }

    #[test]
    fn log_effects_are_in_order() {
        let body = vec![
            Instruction::LogEnter { event: "E".into() },
            Instruction::Nop,
            Instruction::LogExit { event: "E".into() },
            Instruction::ReturnVoid,
        ];
        let exec = run(body);
        assert!(matches!(exec.effects[0].kind, EffectKind::LogEnter(_)));
        assert!(matches!(exec.effects[1].kind, EffectKind::LogExit(_)));
        assert!(exec.effects[0].at_us <= exec.effects[1].at_us);
    }

    #[test]
    fn arithmetic_works() {
        // v2 = (5 - 2) * 4 → 12; if v2 != 0 acquire.
        let body = vec![
            Instruction::ConstInt {
                dst: Reg(0),
                value: 5,
            },
            Instruction::ConstInt {
                dst: Reg(1),
                value: 2,
            },
            Instruction::BinOp {
                op: BinOp::Sub,
                dst: Reg(2),
                a: Reg(0),
                b: Reg(1),
            },
            Instruction::ConstInt {
                dst: Reg(3),
                value: 4,
            },
            Instruction::BinOp {
                op: BinOp::Mul,
                dst: Reg(2),
                a: Reg(2),
                b: Reg(3),
            },
            Instruction::IfZero {
                src: Reg(2),
                target: "end".into(),
            },
            Instruction::AcquireResource {
                kind: ResourceKind::WakeLock,
            },
            Instruction::Label { name: "end".into() },
            Instruction::ReturnVoid,
        ];
        let exec = run(body);
        assert!(exec.effects.iter().any(|e| matches!(
            e.kind,
            EffectKind::Acquire(ResourceKind::WakeLock)
        )));
    }

    #[test]
    fn malformed_body_errors() {
        let mut m = Method::new("m", "()V");
        m.body = vec![Instruction::Goto {
            target: "missing".into(),
        }];
        assert!(execute(&m, &FrameworkEffects::none(), 50, 100).is_err());
    }

    #[test]
    fn empty_body_completes_instantly() {
        let exec = run(vec![]);
        assert_eq!(exec.elapsed_us, 0);
        assert_eq!(exec.steps, 0);
        assert!(!exec.truncated);
    }
}
