//! A simulated Android runtime for the EnergyDx reproduction.
//!
//! The paper instruments real Android apps and collects traces from
//! volunteers' phones. This crate is the substituted substrate (see
//! DESIGN.md §2): a deterministic device simulator that
//!
//! - executes app packages ([`energydx_dexir::Module`]) with a small
//!   bytecode interpreter (branches, loops, invokes),
//! - enforces the **activity lifecycle** state machine ([`lifecycle`]),
//!   dispatching the canonical callback sequences (launching an
//!   activity over another one fires the paper's "five events"),
//! - maintains **hardware state** ([`hardware`]): per-component
//!   utilization intervals on a microsecond timeline, resource holds
//!   (wakelock/GPS/WiFi-lock/sensor) and transient bursts from
//!   framework calls such as `Ljava/net/Socket;->connect`,
//! - runs **background work** ([`device`]): periodic tasks that model
//!   polling services, sync-retry loops, and the other behaviours that
//!   produce abnormal battery drain,
//! - emits the two traces EnergyDx consumes: an event trace (from the
//!   injected `log-enter`/`log-exit` ops) and the utilization timeline
//!   the 500 ms procfs sampler reads.
//!
//! # Examples
//!
//! ```
//! use energydx_dexir::{Class, ComponentKind, Module};
//! use energydx_dexir::module::Method;
//! use energydx_dexir::instr::Instruction;
//! use energydx_dexir::instrument::{EventPool, Instrumenter};
//! use energydx_droidsim::Device;
//!
//! let mut module = Module::new("com.example");
//! let mut main = Class::new("Lcom/example/Main;", ComponentKind::Activity);
//! let mut cb = Method::new("onResume", "()V");
//! cb.body = vec![Instruction::ReturnVoid];
//! main.methods.push(cb);
//! module.add_class(main)?;
//! let instrumented = Instrumenter::new(EventPool::standard())
//!     .instrument(&module)?.module;
//!
//! let mut device = Device::new(instrumented);
//! device.launch_activity("Lcom/example/Main;")?;
//! device.idle_ms(2_000);
//! let session = device.finish_session();
//! assert!(session.events.records().iter().any(|r| r.event.ends_with("onResume")));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod error;
pub mod framework;
pub mod hardware;
pub mod interp;
pub mod lifecycle;

pub use device::{Device, Session};
pub use error::SimError;
pub use framework::FrameworkEffects;
pub use hardware::Timeline;
pub use lifecycle::{LifecycleEvent, LifecycleState};
