//! Hardware state: a per-component utilization timeline.
//!
//! The simulator records every power-relevant activity as a utilization
//! interval `(start, end, level)` on a microsecond timeline, one lane
//! per hardware component. The 500 ms procfs sampler (in
//! `energydx-powermodel`) reads mean utilization per window from this
//! timeline — the same information the paper's background service reads
//! from procfs for the suspect app's PID.

use energydx_trace::util::Component;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One utilization interval on a component lane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Span {
    start_us: u64,
    end_us: u64,
    level: f64,
}

/// Per-component utilization intervals over a session.
///
/// Overlapping intervals on the same lane add up, clamped to 1.0 at
/// query time (two half-loaded tasks saturate a core; a GPS hold plus a
/// GPS burst is still just "GPS on").
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Timeline {
    lanes: BTreeMap<Component, Vec<Span>>,
    end_us: u64,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Adds a utilization interval. Zero-length or zero-level intervals
    /// are ignored. `level` is clamped into `[0, 1]`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_droidsim::Timeline;
    /// # use energydx_trace::util::Component;
    /// let mut t = Timeline::new();
    /// t.add(Component::Gps, 0, 1_000_000, 1.0);
    /// assert_eq!(t.mean_utilization(Component::Gps, 0, 500_000), 1.0);
    /// assert_eq!(t.mean_utilization(Component::Gps, 1_000_000, 2_000_000), 0.0);
    /// ```
    pub fn add(
        &mut self,
        component: Component,
        start_us: u64,
        end_us: u64,
        level: f64,
    ) {
        let level = level.clamp(0.0, 1.0);
        if end_us <= start_us || level == 0.0 {
            return;
        }
        self.lanes.entry(component).or_default().push(Span {
            start_us,
            end_us,
            level,
        });
        self.end_us = self.end_us.max(end_us);
    }

    /// Timestamp of the last activity on any lane (µs).
    pub fn end_us(&self) -> u64 {
        self.end_us
    }

    /// Mean utilization of `component` over `[t0_us, t1_us)`, clamping
    /// overlapping contributions to 1.0 per instant. Returns 0 for an
    /// empty window or a lane with no activity.
    pub fn mean_utilization(
        &self,
        component: Component,
        t0_us: u64,
        t1_us: u64,
    ) -> f64 {
        if t1_us <= t0_us {
            return 0.0;
        }
        let Some(spans) = self.lanes.get(&component) else {
            return 0.0;
        };
        // Sweep over the boundary points of overlapping spans within
        // the window, summing levels per segment and clamping.
        let mut points: Vec<u64> = vec![t0_us, t1_us];
        for s in spans {
            if s.end_us > t0_us && s.start_us < t1_us {
                points.push(s.start_us.max(t0_us));
                points.push(s.end_us.min(t1_us));
            }
        }
        points.sort_unstable();
        points.dedup();

        let mut integral = 0.0;
        for w in points.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b <= a {
                continue;
            }
            let mid = a + (b - a) / 2;
            let level: f64 = spans
                .iter()
                .filter(|s| s.start_us <= mid && mid < s.end_us)
                .map(|s| s.level)
                .sum();
            integral += level.min(1.0) * (b - a) as f64;
        }
        integral / (t1_us - t0_us) as f64
    }

    /// Number of recorded intervals across all lanes (diagnostics).
    pub fn span_count(&self) -> usize {
        self.lanes.values().map(Vec::len).sum()
    }

    /// Merges another timeline into this one (used when a session is
    /// assembled from foreground and background recorders).
    pub fn merge(&mut self, other: &Timeline) {
        for (c, spans) in &other.lanes {
            self.lanes
                .entry(*c)
                .or_default()
                .extend(spans.iter().copied());
        }
        self.end_us = self.end_us.max(other.end_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_timeline_reads_zero() {
        let t = Timeline::new();
        assert_eq!(t.mean_utilization(Component::Cpu, 0, 1000), 0.0);
        assert_eq!(t.end_us(), 0);
    }

    #[test]
    fn partial_overlap_is_prorated() {
        let mut t = Timeline::new();
        t.add(Component::Cpu, 0, 500, 1.0);
        // Half the [0,1000) window is active.
        assert!(
            (t.mean_utilization(Component::Cpu, 0, 1000) - 0.5).abs() < 1e-12
        );
    }

    #[test]
    fn overlapping_spans_add_then_clamp() {
        let mut t = Timeline::new();
        t.add(Component::Cpu, 0, 1000, 0.7);
        t.add(Component::Cpu, 0, 1000, 0.7);
        assert_eq!(t.mean_utilization(Component::Cpu, 0, 1000), 1.0);
        t.add(Component::Wifi, 0, 1000, 0.3);
        t.add(Component::Wifi, 500, 1000, 0.3);
        let m = t.mean_utilization(Component::Wifi, 0, 1000);
        assert!((m - 0.45).abs() < 1e-12, "got {m}");
    }

    #[test]
    fn zero_length_and_zero_level_are_ignored() {
        let mut t = Timeline::new();
        t.add(Component::Gps, 100, 100, 1.0);
        t.add(Component::Gps, 0, 100, 0.0);
        assert_eq!(t.span_count(), 0);
    }

    #[test]
    fn level_is_clamped_on_add() {
        let mut t = Timeline::new();
        t.add(Component::Audio, 0, 1000, 5.0);
        assert_eq!(t.mean_utilization(Component::Audio, 0, 1000), 1.0);
    }

    #[test]
    fn lanes_are_independent() {
        let mut t = Timeline::new();
        t.add(Component::Gps, 0, 1000, 1.0);
        assert_eq!(t.mean_utilization(Component::Cpu, 0, 1000), 0.0);
    }

    #[test]
    fn window_outside_activity_reads_zero() {
        let mut t = Timeline::new();
        t.add(Component::Cpu, 1000, 2000, 0.8);
        assert_eq!(t.mean_utilization(Component::Cpu, 0, 1000), 0.0);
        assert_eq!(t.mean_utilization(Component::Cpu, 2000, 3000), 0.0);
    }

    #[test]
    fn empty_window_reads_zero() {
        let mut t = Timeline::new();
        t.add(Component::Cpu, 0, 1000, 0.8);
        assert_eq!(t.mean_utilization(Component::Cpu, 500, 500), 0.0);
    }

    #[test]
    fn merge_combines_lanes_and_end() {
        let mut a = Timeline::new();
        a.add(Component::Cpu, 0, 1000, 0.5);
        let mut b = Timeline::new();
        b.add(Component::Gps, 500, 3000, 1.0);
        a.merge(&b);
        assert_eq!(a.end_us(), 3000);
        assert!(a.mean_utilization(Component::Gps, 500, 3000) > 0.99);
        assert!(a.mean_utilization(Component::Cpu, 0, 1000) > 0.49);
    }

    #[test]
    fn sweep_handles_many_overlaps_exactly() {
        let mut t = Timeline::new();
        // Stairs: [0,100) 0.2, [50,150) 0.2, [100,200) 0.2.
        t.add(Component::Cpu, 0, 100, 0.2);
        t.add(Component::Cpu, 50, 150, 0.2);
        t.add(Component::Cpu, 100, 200, 0.2);
        // Integral: [0,50)=0.2, [50,100)=0.4, [100,150)=0.4, [150,200)=0.2
        // mean = (10 + 20 + 20 + 10) / 200 = 0.3
        let m = t.mean_utilization(Component::Cpu, 0, 200);
        assert!((m - 0.3).abs() < 1e-12, "got {m}");
    }
}
