//! App packages: classes, methods, and the component manifest.
//!
//! A [`Module`] is the analogue of a parsed APK: a set of classes, each
//! declaring callbacks (methods), plus manifest information about which
//! classes are activities and services. Every method carries a
//! `source_lines` attribute — the number of source-code lines its body
//! corresponds to — which the evaluation uses to compute the paper's
//! *code reduction* metric (§IV-B).

use crate::error::DexError;
use crate::instr::{Instruction, ResourceKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The Android component kind of a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// An `android.app.Activity` subclass (has a UI lifecycle).
    Activity,
    /// An `android.app.Service` subclass (background work).
    Service,
    /// A plain class (helpers, models, listeners).
    Plain,
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComponentKind::Activity => f.write_str("activity"),
            ComponentKind::Service => f.write_str("service"),
            ComponentKind::Plain => f.write_str("plain"),
        }
    }
}

/// Uniquely identifies a method within a module: `(class, name)`.
///
/// Event identifiers in traces are the display form of this key,
/// e.g. `Lcom/fsck/k9/activity/MessageList;->onResume`.
#[derive(
    Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct MethodKey {
    /// Class descriptor (`Lcom/example/Foo;`).
    pub class: String,
    /// Method name (`onResume`).
    pub name: String,
}

impl MethodKey {
    /// Builds a key from class descriptor and method name.
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_dexir::MethodKey;
    /// let k = MethodKey::new("Lcom/example/Foo;", "onResume");
    /// assert_eq!(k.to_string(), "Lcom/example/Foo;->onResume");
    /// ```
    pub fn new(class: impl Into<String>, name: impl Into<String>) -> Self {
        MethodKey {
            class: class.into(),
            name: name.into(),
        }
    }

    /// Parses the `Lcls;->name` display form.
    pub fn parse(s: &str) -> Option<Self> {
        let (class, name) = s.split_once("->")?;
        if class.is_empty() || name.is_empty() {
            return None;
        }
        Some(MethodKey::new(class, name))
    }

    /// The short, human-readable form used in the paper's tables, e.g.
    /// `MessageList:onResume`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_dexir::MethodKey;
    /// let k = MethodKey::new("Lcom/fsck/k9/activity/MessageList;", "onResume");
    /// assert_eq!(k.short(), "MessageList:onResume");
    /// ```
    pub fn short(&self) -> String {
        let trimmed = self.class.trim_start_matches('L').trim_end_matches(';');
        let simple = trimmed.rsplit('/').next().unwrap_or(trimmed);
        format!("{simple}:{}", self.name)
    }
}

impl fmt::Display for MethodKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.class, self.name)
    }
}

/// A method body with its metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Method {
    /// Method name (`onResume`).
    pub name: String,
    /// JVM-style descriptor (`()V`).
    pub descriptor: String,
    /// Number of virtual registers the body uses.
    pub registers: u16,
    /// Source lines attributed to this method (code-reduction metric).
    pub source_lines: u32,
    /// The instruction sequence.
    pub body: Vec<Instruction>,
}

impl Method {
    /// Creates a method with an empty body.
    pub fn new(name: impl Into<String>, descriptor: impl Into<String>) -> Self {
        Method {
            name: name.into(),
            descriptor: descriptor.into(),
            registers: 4,
            source_lines: 1,
            body: Vec::new(),
        }
    }

    /// Total abstract execution cost of one invocation, assuming every
    /// instruction executes once (loops are accounted for by the
    /// droidsim scheduler, which re-executes looped blocks).
    pub fn straight_line_cost(&self) -> u64 {
        self.body.iter().map(Instruction::cost).sum()
    }

    /// Whether the body contains any instrumentation logging ops.
    pub fn is_instrumented(&self) -> bool {
        self.body.iter().any(Instruction::is_instrumentation)
    }

    /// Resource kinds this method acquires.
    pub fn acquired_resources(&self) -> Vec<ResourceKind> {
        let mut out: Vec<ResourceKind> = self
            .body
            .iter()
            .filter_map(|i| match i {
                Instruction::AcquireResource { kind } => Some(*kind),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Resource kinds this method releases.
    pub fn released_resources(&self) -> Vec<ResourceKind> {
        let mut out: Vec<ResourceKind> = self
            .body
            .iter()
            .filter_map(|i| match i {
                Instruction::ReleaseResource { kind } => Some(*kind),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Validates intra-method invariants: labels unique, every branch
    /// target defined.
    ///
    /// # Errors
    ///
    /// Returns [`DexError::DuplicateLabel`] or
    /// [`DexError::UndefinedLabel`].
    pub fn validate(&self) -> Result<(), DexError> {
        let mut labels = std::collections::BTreeSet::new();
        for instr in &self.body {
            if let Instruction::Label { name } = instr {
                if !labels.insert(name.clone()) {
                    return Err(DexError::DuplicateLabel {
                        method: self.name.clone(),
                        label: name.clone(),
                    });
                }
            }
        }
        for instr in &self.body {
            if let Some(target) = instr.branch_target() {
                if !labels.contains(target) {
                    return Err(DexError::UndefinedLabel {
                        method: self.name.clone(),
                        label: target.to_string(),
                    });
                }
            }
        }
        Ok(())
    }
}

/// A class: component kind, superclass, and methods.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Class {
    /// Class descriptor (`Lcom/example/Foo;`).
    pub name: String,
    /// Superclass descriptor (`Landroid/app/Activity;`).
    pub super_class: String,
    /// Component kind from the manifest.
    pub component: ComponentKind,
    /// Methods in declaration order.
    pub methods: Vec<Method>,
}

impl Class {
    /// Creates an empty class of the given kind with the conventional
    /// framework superclass.
    pub fn new(name: impl Into<String>, component: ComponentKind) -> Self {
        let super_class = match component {
            ComponentKind::Activity => "Landroid/app/Activity;",
            ComponentKind::Service => "Landroid/app/Service;",
            ComponentKind::Plain => "Ljava/lang/Object;",
        };
        Class {
            name: name.into(),
            super_class: super_class.to_string(),
            component,
            methods: Vec::new(),
        }
    }

    /// Looks up a method by name.
    pub fn method(&self, name: &str) -> Option<&Method> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// Mutable lookup of a method by name.
    pub fn method_mut(&mut self, name: &str) -> Option<&mut Method> {
        self.methods.iter_mut().find(|m| m.name == name)
    }

    /// Total source lines across all methods of this class.
    pub fn source_lines(&self) -> u64 {
        self.methods.iter().map(|m| m.source_lines as u64).sum()
    }
}

/// A complete app package — the unit the instrumenter consumes and
/// produces, and the unit droidsim executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Java package name of the app (`com.fsck.k9`).
    pub package: String,
    /// Classes keyed by descriptor, in deterministic order.
    pub classes: BTreeMap<String, Class>,
}

impl Module {
    /// Creates an empty module for a package.
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_dexir::{Module, Class, ComponentKind};
    /// let mut m = Module::new("com.example.app");
    /// m.add_class(Class::new("Lcom/example/app/Main;", ComponentKind::Activity))?;
    /// assert_eq!(m.classes.len(), 1);
    /// # Ok::<(), energydx_dexir::DexError>(())
    /// ```
    pub fn new(package: impl Into<String>) -> Self {
        Module {
            package: package.into(),
            classes: BTreeMap::new(),
        }
    }

    /// Adds a class.
    ///
    /// # Errors
    ///
    /// Returns [`DexError::DuplicateClass`] when a class with the same
    /// descriptor already exists.
    pub fn add_class(&mut self, class: Class) -> Result<(), DexError> {
        if self.classes.contains_key(&class.name) {
            return Err(DexError::DuplicateClass {
                class: class.name.clone(),
            });
        }
        self.classes.insert(class.name.clone(), class);
        Ok(())
    }

    /// Looks up a method by key.
    pub fn method(&self, key: &MethodKey) -> Option<&Method> {
        self.classes.get(&key.class)?.method(&key.name)
    }

    /// All method keys in deterministic (class, declaration) order.
    pub fn method_keys(&self) -> Vec<MethodKey> {
        self.classes
            .values()
            .flat_map(|c| {
                c.methods
                    .iter()
                    .map(|m| MethodKey::new(c.name.clone(), m.name.clone()))
            })
            .collect()
    }

    /// Total source lines of the whole app (`N_All` in the paper's
    /// code-reduction metric).
    pub fn total_source_lines(&self) -> u64 {
        self.classes.values().map(Class::source_lines).sum()
    }

    /// Source lines attributed to a set of methods (`N_Diagnosis`).
    pub fn source_lines_of(&self, keys: &[MethodKey]) -> u64 {
        keys.iter()
            .filter_map(|k| self.method(k))
            .map(|m| m.source_lines as u64)
            .sum()
    }

    /// Validates every method in the module.
    ///
    /// # Errors
    ///
    /// Propagates the first [`DexError`] found.
    pub fn validate(&self) -> Result<(), DexError> {
        for class in self.classes.values() {
            for method in &class.methods {
                method.validate()?;
            }
        }
        Ok(())
    }

    /// Whether any method carries instrumentation ops.
    pub fn is_instrumented(&self) -> bool {
        self.classes
            .values()
            .any(|c| c.methods.iter().any(Method::is_instrumented))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Instruction, Reg};

    fn sample_method() -> Method {
        let mut m = Method::new("onResume", "()V");
        m.source_lines = 12;
        m.body = vec![
            Instruction::ConstInt {
                dst: Reg(0),
                value: 1,
            },
            Instruction::IfZero {
                src: Reg(0),
                target: "skip".into(),
            },
            Instruction::AcquireResource {
                kind: ResourceKind::WakeLock,
            },
            Instruction::Label {
                name: "skip".into(),
            },
            Instruction::ReturnVoid,
        ];
        m
    }

    #[test]
    fn method_key_display_and_parse_round_trip() {
        let k = MethodKey::new("Lcom/fsck/k9/K9Activity;", "onResume");
        assert_eq!(MethodKey::parse(&k.to_string()), Some(k));
        assert_eq!(MethodKey::parse("junk"), None);
    }

    #[test]
    fn method_key_short_form_matches_paper_tables() {
        let k = MethodKey::new(
            "Lcom/fsck/k9/activity/setup/AccountSettings;",
            "onResume",
        );
        assert_eq!(k.short(), "AccountSettings:onResume");
    }

    #[test]
    fn validate_accepts_well_formed_method() {
        assert!(sample_method().validate().is_ok());
    }

    #[test]
    fn validate_rejects_undefined_label() {
        let mut m = sample_method();
        m.body.retain(|i| !matches!(i, Instruction::Label { .. }));
        assert!(matches!(m.validate(), Err(DexError::UndefinedLabel { .. })));
    }

    #[test]
    fn validate_rejects_duplicate_label() {
        let mut m = sample_method();
        m.body.push(Instruction::Label {
            name: "skip".into(),
        });
        assert!(matches!(m.validate(), Err(DexError::DuplicateLabel { .. })));
    }

    #[test]
    fn acquired_and_released_resources_are_collected() {
        let m = sample_method();
        assert_eq!(m.acquired_resources(), vec![ResourceKind::WakeLock]);
        assert!(m.released_resources().is_empty());
    }

    #[test]
    fn duplicate_class_is_rejected() {
        let mut module = Module::new("com.example");
        module
            .add_class(Class::new("LFoo;", ComponentKind::Plain))
            .unwrap();
        assert!(matches!(
            module.add_class(Class::new("LFoo;", ComponentKind::Plain)),
            Err(DexError::DuplicateClass { .. })
        ));
    }

    #[test]
    fn source_line_accounting_sums_methods() {
        let mut class = Class::new("LFoo;", ComponentKind::Activity);
        class.methods.push(sample_method());
        let mut other = Method::new("onPause", "()V");
        other.source_lines = 8;
        class.methods.push(other);
        let mut module = Module::new("com.example");
        module.add_class(class).unwrap();
        assert_eq!(module.total_source_lines(), 20);
        let key = MethodKey::new("LFoo;", "onPause");
        assert_eq!(module.source_lines_of(&[key]), 8);
    }

    #[test]
    fn method_keys_are_deterministic() {
        let mut module = Module::new("com.example");
        let mut b = Class::new("LB;", ComponentKind::Plain);
        b.methods.push(Method::new("m", "()V"));
        let mut a = Class::new("LA;", ComponentKind::Plain);
        a.methods.push(Method::new("m", "()V"));
        module.add_class(b).unwrap();
        module.add_class(a).unwrap();
        let keys = module.method_keys();
        assert_eq!(keys[0].class, "LA;");
        assert_eq!(keys[1].class, "LB;");
    }

    #[test]
    fn instrumented_detection() {
        let mut module = Module::new("com.example");
        let mut class = Class::new("LFoo;", ComponentKind::Activity);
        let mut m = sample_method();
        assert!(!m.is_instrumented());
        m.body.insert(
            0,
            Instruction::LogEnter {
                event: "LFoo;->onResume".into(),
            },
        );
        assert!(m.is_instrumented());
        class.methods.push(m);
        module.add_class(class).unwrap();
        assert!(module.is_instrumented());
    }
}
