//! The EnergyDx instrumenter (paper §II-C).
//!
//! Given an app package, the instrumenter injects a `log-enter` op at
//! the entry and a `log-exit` op before every return of each callback
//! that belongs to the *event pool* — the events related to user
//! interaction and activity lifecycle (Table I). Nothing else is
//! instrumented, which is what keeps the §IV-F runtime overhead small.

use crate::error::DexError;
use crate::instr::Instruction;
use crate::module::{ComponentKind, Method, MethodKey, Module};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The pool of event callbacks to instrument (paper Table I).
///
/// A method is in the pool when either
/// - its name is one of the *lifecycle* callbacks and its class is an
///   activity or service, or
/// - its name is one of the *UI* callbacks (any class — listeners are
///   often plain classes), or
/// - its name starts with one of the configured UI prefixes (apps name
///   menu handlers `menu_item_newsfeed`, `menuDeleted`, ... — cf.
///   Tables V and VI).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventPool {
    lifecycle: BTreeSet<String>,
    ui: BTreeSet<String>,
    ui_prefixes: Vec<String>,
}

impl EventPool {
    /// The standard pool from Table I of the paper.
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_dexir::EventPool;
    /// let pool = EventPool::standard();
    /// assert!(pool.is_lifecycle("onResume"));
    /// assert!(pool.is_ui("onClick"));
    /// assert!(pool.is_ui("menu_item_newsfeed"));
    /// assert!(!pool.is_ui("computeChecksum"));
    /// ```
    pub fn standard() -> Self {
        let lifecycle = [
            "onCreate",
            "onStart",
            "onResume",
            "onPause",
            "onStop",
            "onDestroy",
            "onRestart",
            "onStartCommand",
            "onBind",
            "onUnbind",
        ];
        let ui = [
            "onClick",
            "onLongClick",
            "onKey",
            "onTouch",
            "onItemClick",
            "onItemSelected",
            "onMenuItemClick",
            "onOptionsItemSelected",
            "onCheckedChanged",
            "onScroll",
        ];
        EventPool {
            lifecycle: lifecycle.iter().map(|s| s.to_string()).collect(),
            ui: ui.iter().map(|s| s.to_string()).collect(),
            ui_prefixes: vec!["menu".to_string()],
        }
    }

    /// An empty pool; combine with [`EventPool::with_lifecycle`] /
    /// [`EventPool::with_ui`] to build a custom pool.
    pub fn empty() -> Self {
        EventPool {
            lifecycle: BTreeSet::new(),
            ui: BTreeSet::new(),
            ui_prefixes: Vec::new(),
        }
    }

    /// Adds a lifecycle callback name to the pool.
    pub fn with_lifecycle(mut self, name: impl Into<String>) -> Self {
        self.lifecycle.insert(name.into());
        self
    }

    /// Adds a UI callback name to the pool.
    pub fn with_ui(mut self, name: impl Into<String>) -> Self {
        self.ui.insert(name.into());
        self
    }

    /// Whether `name` is a lifecycle callback.
    pub fn is_lifecycle(&self, name: &str) -> bool {
        self.lifecycle.contains(name)
    }

    /// Whether `name` is a UI callback (exact or prefix match).
    pub fn is_ui(&self, name: &str) -> bool {
        self.ui.contains(name)
            || self
                .ui_prefixes
                .iter()
                .any(|p| name.starts_with(p.as_str()))
    }

    /// Whether a method of a class with the given component kind should
    /// be instrumented.
    pub fn selects(&self, component: ComponentKind, method_name: &str) -> bool {
        match component {
            ComponentKind::Activity | ComponentKind::Service => {
                self.is_lifecycle(method_name) || self.is_ui(method_name)
            }
            ComponentKind::Plain => self.is_ui(method_name),
        }
    }
}

impl Default for EventPool {
    fn default() -> Self {
        EventPool::standard()
    }
}

/// Result of instrumenting a module: the rewritten module plus the
/// overhead bookkeeping used by the §IV-F experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstrumentationReport {
    /// The instrumented package (the "new APK").
    pub module: Module,
    /// Keys of the instrumented callbacks, in deterministic order.
    pub events: Vec<MethodKey>,
    /// Number of methods that received logging ops.
    pub instrumented_methods: usize,
    /// Logging instructions added in total.
    pub added_instructions: usize,
    /// Sum of abstract instruction cost before instrumentation, over
    /// the instrumented methods only.
    pub original_cost: u64,
    /// Sum of abstract instruction cost after instrumentation, over the
    /// instrumented methods only.
    pub instrumented_cost: u64,
}

impl InstrumentationReport {
    /// Mean relative latency increase of the instrumented callbacks —
    /// the paper reports 8.3 % (§IV-F).
    pub fn latency_overhead(&self) -> f64 {
        if self.original_cost == 0 {
            0.0
        } else {
            (self.instrumented_cost as f64 - self.original_cost as f64)
                / self.original_cost as f64
        }
    }
}

/// The instrumentation pass.
#[derive(Debug, Clone, Default)]
pub struct Instrumenter {
    pool: EventPool,
}

impl Instrumenter {
    /// Creates an instrumenter with the given event pool.
    pub fn new(pool: EventPool) -> Self {
        Instrumenter { pool }
    }

    /// The pool this instrumenter selects events from.
    pub fn pool(&self) -> &EventPool {
        &self.pool
    }

    /// Rewrites `module`, injecting `log-enter` at entry and `log-exit`
    /// before every return of each pool callback.
    ///
    /// # Errors
    ///
    /// Returns [`DexError::Invalid`] when the module already contains
    /// instrumentation (double instrumentation would double-log every
    /// event), and propagates validation errors for malformed bodies.
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_dexir::{Instrumenter, EventPool, Module, Class, ComponentKind};
    /// # use energydx_dexir::module::Method;
    /// # use energydx_dexir::instr::Instruction;
    /// let mut m = Module::new("com.example");
    /// let mut c = Class::new("Lcom/example/Main;", ComponentKind::Activity);
    /// let mut cb = Method::new("onResume", "()V");
    /// cb.body = vec![Instruction::ReturnVoid];
    /// c.methods.push(cb);
    /// m.add_class(c)?;
    /// let report = Instrumenter::new(EventPool::standard()).instrument(&m)?;
    /// assert!(report.module.is_instrumented());
    /// # Ok::<(), energydx_dexir::DexError>(())
    /// ```
    pub fn instrument(
        &self,
        module: &Module,
    ) -> Result<InstrumentationReport, DexError> {
        if module.is_instrumented() {
            return Err(DexError::Invalid {
                message: "module is already instrumented".to_string(),
            });
        }
        module.validate()?;

        let mut out = module.clone();
        let mut events = Vec::new();
        let mut instrumented_methods = 0usize;
        let mut added_instructions = 0usize;
        let mut original_cost = 0u64;
        let mut instrumented_cost = 0u64;

        for class in out.classes.values_mut() {
            let component = class.component;
            for method in &mut class.methods {
                if !self.pool.selects(component, &method.name) {
                    continue;
                }
                let key =
                    MethodKey::new(class.name.clone(), method.name.clone());
                let event = key.to_string();
                original_cost += method.straight_line_cost();

                let before = method.body.len();
                instrument_method(method, &event);
                added_instructions += method.body.len() - before;

                instrumented_cost += method.straight_line_cost();
                instrumented_methods += 1;
                events.push(key);
            }
        }

        Ok(InstrumentationReport {
            module: out,
            events,
            instrumented_methods,
            added_instructions,
            original_cost,
            instrumented_cost,
        })
    }
}

/// Injects logging ops into one method body.
fn instrument_method(method: &mut Method, event: &str) {
    let mut body = Vec::with_capacity(method.body.len() + 2);
    body.push(Instruction::LogEnter {
        event: event.to_string(),
    });
    if method.body.is_empty() {
        // A callback with an empty body still logs a (zero-duration) event.
        body.push(Instruction::LogExit {
            event: event.to_string(),
        });
        method.body = body;
        return;
    }
    for instr in method.body.drain(..) {
        if instr.is_return() {
            body.push(Instruction::LogExit {
                event: event.to_string(),
            });
        }
        body.push(instr);
    }
    method.body = body;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Instruction, Reg};
    use crate::module::Class;

    fn app() -> Module {
        let mut m = Module::new("com.example");
        let mut act = Class::new("Lcom/example/Main;", ComponentKind::Activity);
        let mut on_resume = Method::new("onResume", "()V");
        on_resume.body = vec![
            Instruction::ConstInt {
                dst: Reg(0),
                value: 0,
            },
            Instruction::Invoke {
                kind: crate::instr::InvokeKind::Virtual,
                target: crate::instr::MethodRef::new(
                    "Lcom/example/Model;",
                    "load",
                    "()V",
                ),
                args: vec![Reg(0)],
            },
            Instruction::IfZero {
                src: Reg(0),
                target: "end".into(),
            },
            Instruction::ReturnVoid,
            Instruction::Label { name: "end".into() },
            Instruction::ReturnVoid,
        ];
        act.methods.push(on_resume);
        let mut helper = Method::new("computeChecksum", "()I");
        helper.body = vec![
            Instruction::ConstInt {
                dst: Reg(1),
                value: 7,
            },
            Instruction::Return { src: Reg(1) },
        ];
        act.methods.push(helper);
        m.add_class(act).unwrap();

        let mut plain =
            Class::new("Lcom/example/Listener;", ComponentKind::Plain);
        let mut on_click = Method::new("onClick", "()V");
        on_click.body = vec![
            Instruction::Invoke {
                kind: crate::instr::InvokeKind::Virtual,
                target: crate::instr::MethodRef::new(
                    "Lcom/example/Model;",
                    "refresh",
                    "()V",
                ),
                args: vec![Reg(0)],
            },
            Instruction::ReturnVoid,
        ];
        plain.methods.push(on_click);
        // A lifecycle-like name on a plain class must NOT be selected.
        let mut fake = Method::new("onResume", "()V");
        fake.body = vec![Instruction::ReturnVoid];
        plain.methods.push(fake);
        m.add_class(plain).unwrap();
        m
    }

    #[test]
    fn selects_pool_callbacks_only() {
        let report = Instrumenter::new(EventPool::standard())
            .instrument(&app())
            .unwrap();
        assert_eq!(report.instrumented_methods, 2);
        let names: Vec<String> =
            report.events.iter().map(|k| k.to_string()).collect();
        assert!(names.contains(&"Lcom/example/Main;->onResume".to_string()));
        assert!(names.contains(&"Lcom/example/Listener;->onClick".to_string()));
        // The helper and the plain-class onResume are untouched.
        assert!(!report.module.classes["Lcom/example/Main;"]
            .method("computeChecksum")
            .unwrap()
            .is_instrumented());
        assert!(!report.module.classes["Lcom/example/Listener;"]
            .method("onResume")
            .unwrap()
            .is_instrumented());
    }

    #[test]
    fn every_return_gets_a_log_exit() {
        let report = Instrumenter::new(EventPool::standard())
            .instrument(&app())
            .unwrap();
        let body = &report.module.classes["Lcom/example/Main;"]
            .method("onResume")
            .unwrap()
            .body;
        let enters = body
            .iter()
            .filter(|i| matches!(i, Instruction::LogEnter { .. }))
            .count();
        let exits = body
            .iter()
            .filter(|i| matches!(i, Instruction::LogExit { .. }))
            .count();
        let returns = body.iter().filter(|i| i.is_return()).count();
        assert_eq!(enters, 1);
        assert_eq!(exits, returns);
        assert_eq!(body.first().map(|i| i.is_instrumentation()), Some(true));
    }

    #[test]
    fn log_exit_immediately_precedes_each_return() {
        let report = Instrumenter::new(EventPool::standard())
            .instrument(&app())
            .unwrap();
        let body = &report.module.classes["Lcom/example/Main;"]
            .method("onResume")
            .unwrap()
            .body;
        for (i, instr) in body.iter().enumerate() {
            if instr.is_return() {
                assert!(
                    matches!(body[i - 1], Instruction::LogExit { .. }),
                    "return at {i} not preceded by log-exit"
                );
            }
        }
    }

    #[test]
    fn double_instrumentation_is_rejected() {
        let instrumenter = Instrumenter::new(EventPool::standard());
        let once = instrumenter.instrument(&app()).unwrap();
        assert!(matches!(
            instrumenter.instrument(&once.module),
            Err(DexError::Invalid { .. })
        ));
    }

    #[test]
    fn overhead_is_positive_but_moderate() {
        let report = Instrumenter::new(EventPool::standard())
            .instrument(&app())
            .unwrap();
        let overhead = report.latency_overhead();
        assert!(overhead > 0.0, "logging must cost something");
        // Logging must not dominate: a handful of 4-cost ops against
        // real bodies stays well under 2x.
        assert!(overhead < 1.0, "overhead {overhead} implausibly high");
    }

    #[test]
    fn empty_pool_instruments_nothing() {
        let report = Instrumenter::new(EventPool::empty())
            .instrument(&app())
            .unwrap();
        assert_eq!(report.instrumented_methods, 0);
        assert_eq!(report.module, app());
        assert_eq!(report.latency_overhead(), 0.0);
    }

    #[test]
    fn custom_pool_entries_are_honored() {
        let pool = EventPool::empty().with_ui("computeChecksum");
        let report = Instrumenter::new(pool).instrument(&app()).unwrap();
        assert_eq!(report.instrumented_methods, 1);
        assert_eq!(report.events[0].name, "computeChecksum");
    }

    #[test]
    fn menu_prefix_matches_table_v_and_vi_style_handlers() {
        let pool = EventPool::standard();
        assert!(pool.is_ui("menuDeleted"));
        assert!(pool.is_ui("menu_item_newsfeed"));
        assert!(pool.selects(ComponentKind::Activity, "menu_about"));
    }

    #[test]
    fn callback_with_empty_body_still_logs() {
        let mut m = Module::new("x");
        let mut c = Class::new("LA;", ComponentKind::Activity);
        c.methods.push(Method::new("onPause", "()V"));
        m.add_class(c).unwrap();
        let report = Instrumenter::new(EventPool::standard())
            .instrument(&m)
            .unwrap();
        let body =
            &report.module.classes["LA;"].method("onPause").unwrap().body;
        assert_eq!(body.len(), 2);
        assert!(matches!(body[0], Instruction::LogEnter { .. }));
        assert!(matches!(body[1], Instruction::LogExit { .. }));
    }

    #[test]
    fn instrumented_module_round_trips_through_text() {
        let report = Instrumenter::new(EventPool::standard())
            .instrument(&app())
            .unwrap();
        let text = crate::text::assemble_module(&report.module);
        let parsed = crate::text::parse_module(&text).unwrap();
        assert_eq!(parsed, report.module);
    }
}
