//! A Dalvik-like intermediate representation and the EnergyDx
//! instrumenter.
//!
//! The paper's instrumenter (Section II-C) unpacks an APK, disassembles
//! the Dalvik bytecode into an assembly-like format (smali), injects
//! entry/exit logging into the callbacks related to user interaction and
//! activity lifecycle, and repackages the app. Since no Android
//! toolchain exists in this environment, this crate provides the closest
//! synthetic equivalent (see DESIGN.md §2):
//!
//! - [`module`] — an app package ([`module::Module`]) holding classes,
//!   methods, and a manifest of activities/services, the analogue of a
//!   parsed APK.
//! - [`instr`] — a register-based instruction set with invocations,
//!   branches, and resource acquire/release modeled as framework calls.
//! - [`text`] — a smali-like textual assembly with a round-trippable
//!   parser/assembler pair.
//! - [`cfg`] — basic-block control-flow graphs over method bodies.
//! - [`dataflow`] — a small forward-dataflow framework (used by the
//!   No-sleep Detection baseline).
//! - [`instrument`] — the event pool (Table I) and the instrumentation
//!   pass that injects `log-enter`/`log-exit` ops, plus overhead
//!   accounting for the §IV-F experiments.
//!
//! # Examples
//!
//! ```
//! use energydx_dexir::instrument::{EventPool, Instrumenter};
//! use energydx_dexir::module::Module;
//! use energydx_dexir::text;
//!
//! let src = "\
//! .package com.example.app
//! .class Lcom/example/app/MainActivity;
//! .super Landroid/app/Activity;
//! .activity
//! .method onResume()V
//!   .registers 2
//!   .lines 5
//!   return-void
//! .end method
//! .end class
//! ";
//! let module: Module = text::parse_module(src)?;
//! let report = Instrumenter::new(EventPool::standard()).instrument(&module)?;
//! assert_eq!(report.instrumented_methods, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod dataflow;
pub mod error;
pub mod instr;
pub mod instrument;
pub mod module;
pub mod text;
pub mod verify;

pub use error::DexError;
pub use instr::{Instruction, InvokeKind, MethodRef, Reg, ResourceKind};
pub use instrument::{EventPool, InstrumentationReport, Instrumenter};
pub use module::{Class, ComponentKind, Method, MethodKey, Module};
