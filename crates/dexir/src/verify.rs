//! The bytecode verifier: structural checks beyond label validity.
//!
//! Dalvik verifies bytecode at install time; this module is the
//! equivalent gate for the IR. The instrumenter refuses modules that
//! fail label validation already (see [`crate::module::Method::validate`]);
//! the verifier adds the register- and dataflow-shape checks a device
//! would enforce before executing a package:
//!
//! - every register index is within the method's declared frame,
//! - `move-result` only appears directly after an `invoke`,
//! - every path ends in a return (no falling off the end of a body),
//! - instrumentation ops are balanced per event within the body.

use crate::error::DexError;
use crate::instr::{Instruction, Reg};
use crate::module::{Method, Module};
use std::collections::BTreeMap;
use std::fmt;

/// One verifier finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The method the finding is in (`Lcls;->name` form when produced
    /// by [`verify_module`], bare method name from [`verify_method`]).
    pub method: String,
    /// Index of the offending instruction, when applicable.
    pub instruction: Option<usize>,
    /// What is wrong.
    pub kind: VerifyErrorKind,
}

/// The verifier's finding kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyErrorKind {
    /// A register index at or beyond the declared frame size.
    RegisterOutOfRange {
        /// The offending register.
        register: Reg,
        /// The declared frame size.
        frame: u16,
    },
    /// `move-result` not immediately preceded by an invoke.
    DanglingMoveResult,
    /// The body can fall off its end without returning.
    MissingReturn,
    /// An event has `log-enter` ops without any `log-exit` (or the
    /// reverse) — broken instrumentation. Counts are *not* required to
    /// match: a body with several returns has one exit per return.
    UnbalancedLogging {
        /// The event identifier.
        event: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            VerifyErrorKind::RegisterOutOfRange { register, frame } => write!(
                f,
                "{}: register {register} outside frame of {frame}",
                self.method
            ),
            VerifyErrorKind::DanglingMoveResult => {
                write!(
                    f,
                    "{}: move-result without a preceding invoke",
                    self.method
                )
            }
            VerifyErrorKind::MissingReturn => {
                write!(
                    f,
                    "{}: control can fall off the end of the body",
                    self.method
                )
            }
            VerifyErrorKind::UnbalancedLogging { event } => {
                write!(f, "{}: unbalanced logging for {event}", self.method)
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Registers an instruction reads or writes.
fn registers_of(instr: &Instruction) -> Vec<Reg> {
    match instr {
        Instruction::ConstInt { dst, .. }
        | Instruction::ConstString { dst, .. }
        | Instruction::MoveResult { dst } => vec![*dst],
        Instruction::Move { dst, src } => vec![*dst, *src],
        Instruction::BinOp { dst, a, b, .. } => vec![*dst, *a, *b],
        Instruction::Invoke { args, .. } => args.clone(),
        Instruction::IfZero { src, .. } | Instruction::Return { src } => {
            vec![*src]
        }
        _ => Vec::new(),
    }
}

/// Verifies one method.
///
/// # Errors
///
/// Propagates [`DexError`] for malformed labels (checked first, since
/// the remaining checks assume a well-formed body).
///
/// # Examples
///
/// ```
/// # use energydx_dexir::verify::verify_method;
/// # use energydx_dexir::module::Method;
/// # use energydx_dexir::instr::{Instruction, Reg};
/// let mut m = Method::new("m", "()V");
/// m.registers = 2;
/// m.body = vec![
///     Instruction::ConstInt { dst: Reg(5), value: 1 }, // v5 > frame
///     Instruction::ReturnVoid,
/// ];
/// let findings = verify_method(&m)?;
/// assert_eq!(findings.len(), 1);
/// # Ok::<(), energydx_dexir::DexError>(())
/// ```
pub fn verify_method(method: &Method) -> Result<Vec<VerifyError>, DexError> {
    method.validate()?;
    let mut findings = Vec::new();
    let err = |instruction: Option<usize>, kind: VerifyErrorKind| VerifyError {
        method: method.name.clone(),
        instruction,
        kind,
    };

    // Register frame.
    for (i, instr) in method.body.iter().enumerate() {
        for register in registers_of(instr) {
            if register.0 >= method.registers {
                findings.push(err(
                    Some(i),
                    VerifyErrorKind::RegisterOutOfRange {
                        register,
                        frame: method.registers,
                    },
                ));
            }
        }
    }

    // move-result adjacency.
    for (i, instr) in method.body.iter().enumerate() {
        if matches!(instr, Instruction::MoveResult { .. }) {
            let preceded_by_invoke = i > 0
                && matches!(method.body[i - 1], Instruction::Invoke { .. });
            if !preceded_by_invoke {
                findings
                    .push(err(Some(i), VerifyErrorKind::DanglingMoveResult));
            }
        }
    }

    // Falling off the end: the last *real* instruction on the
    // fallthrough path must be a return or an unconditional goto.
    if let Some(last) = method
        .body
        .iter()
        .rev()
        .find(|i| !matches!(i, Instruction::Label { .. }))
    {
        if !last.ends_block() {
            findings.push(err(None, VerifyErrorKind::MissingReturn));
        }
    } else if method
        .body
        .iter()
        .any(|i| matches!(i, Instruction::Label { .. }))
    {
        findings.push(err(None, VerifyErrorKind::MissingReturn));
    }

    // Logging presence per event: enters and exits must co-occur.
    let mut logging: BTreeMap<&str, (bool, bool)> = BTreeMap::new();
    for instr in &method.body {
        match instr {
            Instruction::LogEnter { event } => {
                logging.entry(event).or_default().0 = true
            }
            Instruction::LogExit { event } => {
                logging.entry(event).or_default().1 = true
            }
            _ => {}
        }
    }
    for (event, (has_enter, has_exit)) in logging {
        if has_enter != has_exit {
            findings.push(err(
                None,
                VerifyErrorKind::UnbalancedLogging {
                    event: event.to_string(),
                },
            ));
        }
    }

    Ok(findings)
}

/// Verifies every method of a module, returning all findings with
/// fully-qualified method names.
///
/// # Errors
///
/// Propagates the first [`DexError`] (malformed labels).
pub fn verify_module(module: &Module) -> Result<Vec<VerifyError>, DexError> {
    let mut findings = Vec::new();
    for class in module.classes.values() {
        for method in &class.methods {
            for mut finding in verify_method(method)? {
                finding.method = format!("{}->{}", class.name, method.name);
                findings.push(finding);
            }
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{InvokeKind, MethodRef};

    fn method(registers: u16, body: Vec<Instruction>) -> Method {
        let mut m = Method::new("m", "()V");
        m.registers = registers;
        m.body = body;
        m
    }

    #[test]
    fn clean_method_verifies() {
        let m = method(
            4,
            vec![
                Instruction::ConstInt {
                    dst: Reg(0),
                    value: 1,
                },
                Instruction::Invoke {
                    kind: InvokeKind::Virtual,
                    target: MethodRef::new("LA;", "f", "()I"),
                    args: vec![Reg(0)],
                },
                Instruction::MoveResult { dst: Reg(1) },
                Instruction::Return { src: Reg(1) },
            ],
        );
        assert!(verify_method(&m).unwrap().is_empty());
    }

    #[test]
    fn out_of_frame_register_is_reported() {
        let m = method(
            2,
            vec![
                Instruction::Move {
                    dst: Reg(0),
                    src: Reg(7),
                },
                Instruction::ReturnVoid,
            ],
        );
        let findings = verify_method(&m).unwrap();
        assert_eq!(findings.len(), 1);
        assert!(matches!(
            findings[0].kind,
            VerifyErrorKind::RegisterOutOfRange {
                register: Reg(7),
                frame: 2
            }
        ));
        assert_eq!(findings[0].instruction, Some(0));
    }

    #[test]
    fn dangling_move_result_is_reported() {
        let m = method(
            4,
            vec![
                Instruction::MoveResult { dst: Reg(0) },
                Instruction::ReturnVoid,
            ],
        );
        let findings = verify_method(&m).unwrap();
        assert!(findings
            .iter()
            .any(|f| f.kind == VerifyErrorKind::DanglingMoveResult));
    }

    #[test]
    fn move_result_after_invoke_is_fine() {
        let m = method(
            4,
            vec![
                Instruction::Invoke {
                    kind: InvokeKind::Static,
                    target: MethodRef::new("LA;", "f", "()I"),
                    args: vec![],
                },
                Instruction::MoveResult { dst: Reg(0) },
                Instruction::ReturnVoid,
            ],
        );
        assert!(verify_method(&m).unwrap().is_empty());
    }

    #[test]
    fn falling_off_the_end_is_reported() {
        let m = method(
            4,
            vec![Instruction::ConstInt {
                dst: Reg(0),
                value: 1,
            }],
        );
        let findings = verify_method(&m).unwrap();
        assert!(findings
            .iter()
            .any(|f| f.kind == VerifyErrorKind::MissingReturn));
    }

    #[test]
    fn empty_body_is_allowed() {
        // An empty body is a valid abstract callback (the device
        // treats it as a no-op).
        let m = method(4, vec![]);
        assert!(verify_method(&m).unwrap().is_empty());
    }

    #[test]
    fn unbalanced_logging_is_reported() {
        let m = method(
            4,
            vec![
                Instruction::LogEnter {
                    event: "LA;->onResume".into(),
                },
                Instruction::ReturnVoid,
            ],
        );
        let findings = verify_method(&m).unwrap();
        assert!(matches!(
            &findings[0].kind,
            VerifyErrorKind::UnbalancedLogging { event } if event == "LA;->onResume"
        ));
    }

    #[test]
    fn instrumenter_output_always_verifies() {
        use crate::instrument::{EventPool, Instrumenter};
        use crate::module::{Class, ComponentKind};
        let mut module = Module::new("x");
        let mut class = Class::new("LA;", ComponentKind::Activity);
        let mut cb = Method::new("onResume", "()V");
        cb.registers = 4;
        cb.body = vec![
            Instruction::IfZero {
                src: Reg(0),
                target: "end".into(),
            },
            Instruction::ReturnVoid,
            Instruction::Label { name: "end".into() },
            Instruction::ReturnVoid,
        ];
        class.methods.push(cb);
        module.add_class(class).unwrap();
        let report = Instrumenter::new(EventPool::standard())
            .instrument(&module)
            .unwrap();
        assert!(verify_module(&report.module).unwrap().is_empty());
    }

    #[test]
    fn module_findings_carry_qualified_names() {
        use crate::module::{Class, ComponentKind};
        let mut module = Module::new("x");
        let mut class = Class::new("LBad;", ComponentKind::Plain);
        class.methods.push(method(
            1,
            vec![
                Instruction::Move {
                    dst: Reg(0),
                    src: Reg(9),
                },
                Instruction::ReturnVoid,
            ],
        ));
        module.add_class(class).unwrap();
        let findings = verify_module(&module).unwrap();
        assert_eq!(findings[0].method, "LBad;->m");
        assert!(!findings[0].to_string().is_empty());
    }
}
