//! Basic-block control-flow graphs over method bodies.
//!
//! The No-sleep Detection baseline ([Pathak et al., MobiSys'12]) is a
//! path-sensitive dataflow analysis over app code; this module gives it
//! (and any future static analysis) a conventional CFG: leaders at
//! labels, branch targets, and instructions following a branch.

use crate::error::DexError;
use crate::instr::Instruction;
use crate::module::Method;
use std::collections::BTreeMap;

/// Identifier of a basic block within one method's CFG.
pub type BlockId = usize;

/// A basic block: a maximal straight-line instruction range.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// Index of this block.
    pub id: BlockId,
    /// Range of instruction indices `[start, end)` in the method body.
    pub range: std::ops::Range<usize>,
    /// Successor block ids.
    pub successors: Vec<BlockId>,
}

/// The control-flow graph of one method.
#[derive(Debug, Clone, PartialEq)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
}

impl Cfg {
    /// Builds the CFG of a method.
    ///
    /// # Errors
    ///
    /// Returns [`DexError::UndefinedLabel`] / [`DexError::DuplicateLabel`]
    /// if the method body is malformed (same conditions as
    /// [`Method::validate`]).
    ///
    /// # Examples
    ///
    /// ```
    /// # use energydx_dexir::cfg::Cfg;
    /// # use energydx_dexir::module::Method;
    /// # use energydx_dexir::instr::Instruction;
    /// let mut m = Method::new("m", "()V");
    /// m.body = vec![Instruction::Nop, Instruction::ReturnVoid];
    /// let cfg = Cfg::build(&m)?;
    /// assert_eq!(cfg.blocks().len(), 1);
    /// # Ok::<(), energydx_dexir::DexError>(())
    /// ```
    pub fn build(method: &Method) -> Result<Self, DexError> {
        method.validate()?;
        let body = &method.body;
        if body.is_empty() {
            return Ok(Cfg { blocks: Vec::new() });
        }

        // Label name -> instruction index.
        let mut label_at: BTreeMap<&str, usize> = BTreeMap::new();
        for (i, instr) in body.iter().enumerate() {
            if let Instruction::Label { name } = instr {
                label_at.insert(name, i);
            }
        }

        // Leader detection.
        let mut leaders = vec![false; body.len()];
        leaders[0] = true;
        for (i, instr) in body.iter().enumerate() {
            if let Some(target) = instr.branch_target() {
                leaders[label_at[target]] = true;
                if i + 1 < body.len() {
                    leaders[i + 1] = true;
                }
            }
            if instr.is_return() && i + 1 < body.len() {
                leaders[i + 1] = true;
            }
        }

        // Cut into blocks.
        let mut starts: Vec<usize> = leaders
            .iter()
            .enumerate()
            .filter(|(_, &l)| l)
            .map(|(i, _)| i)
            .collect();
        starts.push(body.len());
        let mut blocks: Vec<BasicBlock> = Vec::with_capacity(starts.len() - 1);
        let mut block_of_instr = vec![0usize; body.len()];
        for (id, win) in starts.windows(2).enumerate() {
            let range = win[0]..win[1];
            for i in range.clone() {
                block_of_instr[i] = id;
            }
            blocks.push(BasicBlock {
                id,
                range,
                successors: Vec::new(),
            });
        }

        // Wire successors.
        for (b, block) in blocks.iter_mut().enumerate() {
            let last_idx = block.range.end - 1;
            let last = &body[last_idx];
            let mut succ = Vec::new();
            match last {
                Instruction::Goto { target } => {
                    succ.push(block_of_instr[label_at[target.as_str()]]);
                }
                Instruction::IfZero { target, .. } => {
                    succ.push(block_of_instr[label_at[target.as_str()]]);
                    if block.range.end < body.len() {
                        succ.push(b + 1);
                    }
                }
                i if i.is_return() => {}
                _ => {
                    if block.range.end < body.len() {
                        succ.push(b + 1);
                    }
                }
            }
            succ.sort_unstable();
            succ.dedup();
            block.successors = succ;
        }

        Ok(Cfg { blocks })
    }

    /// The blocks in index order (block 0 is the entry).
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Ids of blocks ending in a return (the method's exits).
    pub fn exit_blocks(&self) -> Vec<BlockId> {
        self.blocks
            .iter()
            .filter(|b| b.successors.is_empty())
            .map(|b| b.id)
            .collect()
    }

    /// Predecessor lists, computed from successor lists.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in &self.blocks {
            for &s in &b.successors {
                preds[s].push(b.id);
            }
        }
        preds
    }

    /// Blocks reachable from the entry, in BFS order.
    pub fn reachable(&self) -> Vec<BlockId> {
        if self.blocks.is_empty() {
            return Vec::new();
        }
        let mut seen = vec![false; self.blocks.len()];
        let mut queue = std::collections::VecDeque::from([0usize]);
        let mut order = Vec::new();
        seen[0] = true;
        while let Some(b) = queue.pop_front() {
            order.push(b);
            for &s in &self.blocks[b].successors {
                if !seen[s] {
                    seen[s] = true;
                    queue.push_back(s);
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Instruction, Reg};

    fn method_with(body: Vec<Instruction>) -> Method {
        let mut m = Method::new("m", "()V");
        m.body = body;
        m
    }

    #[test]
    fn straight_line_is_one_block() {
        let m = method_with(vec![
            Instruction::Nop,
            Instruction::ConstInt {
                dst: Reg(0),
                value: 1,
            },
            Instruction::ReturnVoid,
        ]);
        let cfg = Cfg::build(&m).unwrap();
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(cfg.exit_blocks(), vec![0]);
    }

    #[test]
    fn diamond_has_four_blocks() {
        // if-zero v0 -> :else ; then: nop ; goto :join ; :else nop ; :join return
        let m = method_with(vec![
            Instruction::IfZero {
                src: Reg(0),
                target: "else".into(),
            },
            Instruction::Nop,
            Instruction::Goto {
                target: "join".into(),
            },
            Instruction::Label {
                name: "else".into(),
            },
            Instruction::Nop,
            Instruction::Label {
                name: "join".into(),
            },
            Instruction::ReturnVoid,
        ]);
        let cfg = Cfg::build(&m).unwrap();
        assert_eq!(cfg.blocks().len(), 4);
        // Entry branches to both the then-block and the else-block.
        assert_eq!(cfg.blocks()[0].successors.len(), 2);
        // Exactly one exit.
        assert_eq!(cfg.exit_blocks().len(), 1);
        // All blocks reachable.
        assert_eq!(cfg.reachable().len(), 4);
    }

    #[test]
    fn loop_back_edge_is_wired() {
        let m = method_with(vec![
            Instruction::Label {
                name: "loop".into(),
            },
            Instruction::Nop,
            Instruction::IfZero {
                src: Reg(0),
                target: "loop".into(),
            },
            Instruction::ReturnVoid,
        ]);
        let cfg = Cfg::build(&m).unwrap();
        // The block ending in if-zero must have the loop head among its
        // successors.
        let branch_block = cfg
            .blocks()
            .iter()
            .find(|b| b.successors.contains(&0))
            .expect("back edge missing");
        assert!(branch_block.successors.len() == 2);
    }

    #[test]
    fn code_after_return_forms_unreachable_block() {
        let m = method_with(vec![
            Instruction::ReturnVoid,
            Instruction::Label {
                name: "dead".into(),
            },
            Instruction::ReturnVoid,
        ]);
        let cfg = Cfg::build(&m).unwrap();
        assert_eq!(cfg.blocks().len(), 2);
        assert_eq!(cfg.reachable(), vec![0]);
    }

    #[test]
    fn empty_method_has_empty_cfg() {
        let m = method_with(vec![]);
        let cfg = Cfg::build(&m).unwrap();
        assert!(cfg.blocks().is_empty());
        assert!(cfg.reachable().is_empty());
    }

    #[test]
    fn predecessors_invert_successors() {
        let m = method_with(vec![
            Instruction::IfZero {
                src: Reg(0),
                target: "end".into(),
            },
            Instruction::Nop,
            Instruction::Label { name: "end".into() },
            Instruction::ReturnVoid,
        ]);
        let cfg = Cfg::build(&m).unwrap();
        let preds = cfg.predecessors();
        for b in cfg.blocks() {
            for &s in &b.successors {
                assert!(preds[s].contains(&b.id));
            }
        }
    }

    #[test]
    fn malformed_method_is_rejected() {
        let m = method_with(vec![Instruction::Goto {
            target: "nowhere".into(),
        }]);
        assert!(Cfg::build(&m).is_err());
    }
}
