//! Errors produced by IR construction, parsing, and instrumentation.

use std::error::Error;
use std::fmt;

/// Error type for the `energydx-dexir` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DexError {
    /// The smali-like source failed to parse.
    Parse {
        /// 1-based line number of the offending source line.
        line: usize,
        /// Explanation of what was expected.
        message: String,
    },
    /// A branch referenced a label that is not defined in the method.
    UndefinedLabel {
        /// The method containing the dangling branch.
        method: String,
        /// The missing label name.
        label: String,
    },
    /// A label was defined more than once in the same method.
    DuplicateLabel {
        /// The method containing the duplicate.
        method: String,
        /// The label name defined twice.
        label: String,
    },
    /// A class was defined more than once in the same module.
    DuplicateClass {
        /// The class descriptor defined twice.
        class: String,
    },
    /// A module was rejected by validation (e.g. instrumenting a module
    /// that is already instrumented).
    Invalid {
        /// Explanation of the validation failure.
        message: String,
    },
}

impl fmt::Display for DexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DexError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            DexError::UndefinedLabel { method, label } => {
                write!(f, "undefined label {label} in method {method}")
            }
            DexError::DuplicateLabel { method, label } => {
                write!(f, "duplicate label {label} in method {method}")
            }
            DexError::DuplicateClass { class } => {
                write!(f, "duplicate class {class}")
            }
            DexError::Invalid { message } => {
                write!(f, "invalid module: {message}")
            }
        }
    }
}

impl Error for DexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let e = DexError::UndefinedLabel {
            method: "onResume".into(),
            label: ":loop".into(),
        };
        let s = e.to_string();
        assert!(s.contains("onResume") && s.contains(":loop"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(DexError::DuplicateClass {
            class: "LFoo;".into(),
        });
    }
}
