//! The smali-like textual assembly format.
//!
//! The paper's instrumenter works on disassembled Dalvik bytecode in
//! "assembly-like format" (§II-C). This module provides the equivalent:
//! a line-oriented format with a parser ([`parse_module`]) and an
//! assembler ([`assemble_module`]) that round-trip exactly.
//!
//! ```text
//! .package com.fsck.k9
//! .class Lcom/fsck/k9/activity/MessageList;
//! .super Landroid/app/Activity;
//! .activity
//! .method onResume()V
//!   .registers 4
//!   .lines 23
//!   const v0, 1
//!   if-zero v0, :skip
//!   invoke-virtual Lcom/fsck/k9/K9;->load()V, v0
//!   :skip
//!   return-void
//! .end method
//! .end class
//! ```

use crate::error::DexError;
use crate::instr::{BinOp, Instruction, InvokeKind, MethodRef, Reg};
use crate::module::{Class, ComponentKind, Method, Module};
use std::fmt::Write as _;

/// Renders a module in the textual assembly format.
///
/// The output parses back to an identical module (see
/// [`parse_module`]); this round-trip is covered by property tests.
///
/// # Examples
///
/// ```
/// # use energydx_dexir::module::{Module, Class, ComponentKind};
/// # use energydx_dexir::text::{assemble_module, parse_module};
/// let mut m = Module::new("com.example");
/// m.add_class(Class::new("LFoo;", ComponentKind::Plain))?;
/// let text = assemble_module(&m);
/// assert_eq!(parse_module(&text)?, m);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn assemble_module(module: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".package {}", module.package);
    for class in module.classes.values() {
        let _ = writeln!(out, ".class {}", class.name);
        let _ = writeln!(out, ".super {}", class.super_class);
        match class.component {
            ComponentKind::Activity => out.push_str(".activity\n"),
            ComponentKind::Service => out.push_str(".service\n"),
            ComponentKind::Plain => {}
        }
        for method in &class.methods {
            let _ =
                writeln!(out, ".method {}{}", method.name, method.descriptor);
            let _ = writeln!(out, "  .registers {}", method.registers);
            let _ = writeln!(out, "  .lines {}", method.source_lines);
            for instr in &method.body {
                let _ = writeln!(out, "  {}", assemble_instruction(instr));
            }
            out.push_str(".end method\n");
        }
        out.push_str(".end class\n");
    }
    out
}

/// Renders one instruction in assembly syntax.
pub fn assemble_instruction(instr: &Instruction) -> String {
    match instr {
        Instruction::Nop => "nop".to_string(),
        Instruction::ConstInt { dst, value } => format!("const {dst}, {value}"),
        Instruction::ConstString { dst, value } => {
            format!("const-string {dst}, \"{}\"", escape(value))
        }
        Instruction::Move { dst, src } => format!("move {dst}, {src}"),
        Instruction::BinOp { op, dst, a, b } => {
            format!("{} {dst}, {a}, {b}", op.mnemonic())
        }
        Instruction::Invoke { kind, target, args } => {
            let regs: Vec<String> =
                args.iter().map(|r| r.to_string()).collect();
            if regs.is_empty() {
                format!("{} {target}", kind.mnemonic())
            } else {
                format!("{} {target}, {}", kind.mnemonic(), regs.join(", "))
            }
        }
        Instruction::MoveResult { dst } => format!("move-result {dst}"),
        Instruction::AcquireResource { kind } => {
            format!("acquire {}", kind.name())
        }
        Instruction::ReleaseResource { kind } => {
            format!("release {}", kind.name())
        }
        Instruction::Label { name } => format!(":{name}"),
        Instruction::Goto { target } => format!("goto :{target}"),
        Instruction::IfZero { src, target } => {
            format!("if-zero {src}, :{target}")
        }
        Instruction::ReturnVoid => "return-void".to_string(),
        Instruction::Return { src } => format!("return {src}"),
        Instruction::LogEnter { event } => format!("log-enter {event}"),
        Instruction::LogExit { event } => format!("log-exit {event}"),
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(next) = chars.next() {
                out.push(next);
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Parses a module from the textual assembly format.
///
/// # Errors
///
/// Returns [`DexError::Parse`] with the 1-based line number on any
/// malformed line, and [`DexError::DuplicateClass`] /
/// [`DexError::DuplicateLabel`] / [`DexError::UndefinedLabel`] when the
/// parsed module fails validation.
pub fn parse_module(source: &str) -> Result<Module, DexError> {
    let mut module: Option<Module> = None;
    let mut current_class: Option<Class> = None;
    let mut current_method: Option<Method> = None;

    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: &str| DexError::Parse {
            line: lineno,
            message: message.to_string(),
        };

        if let Some(rest) = line.strip_prefix(".package ") {
            if module.is_some() {
                return Err(err("duplicate .package directive"));
            }
            module = Some(Module::new(rest.trim()));
        } else if let Some(rest) = line.strip_prefix(".class ") {
            if current_class.is_some() {
                return Err(err("nested .class"));
            }
            current_class = Some(Class {
                name: rest.trim().to_string(),
                super_class: "Ljava/lang/Object;".to_string(),
                component: ComponentKind::Plain,
                methods: Vec::new(),
            });
        } else if let Some(rest) = line.strip_prefix(".super ") {
            current_class
                .as_mut()
                .ok_or_else(|| err(".super outside class"))?
                .super_class = rest.trim().to_string();
        } else if line == ".activity" {
            current_class
                .as_mut()
                .ok_or_else(|| err(".activity outside class"))?
                .component = ComponentKind::Activity;
        } else if line == ".service" {
            current_class
                .as_mut()
                .ok_or_else(|| err(".service outside class"))?
                .component = ComponentKind::Service;
        } else if let Some(rest) = line.strip_prefix(".method ") {
            if current_method.is_some() {
                return Err(err("nested .method"));
            }
            if current_class.is_none() {
                return Err(err(".method outside class"));
            }
            let sig = rest.trim();
            let open = sig
                .find('(')
                .ok_or_else(|| err("method missing descriptor"))?;
            current_method = Some(Method::new(&sig[..open], &sig[open..]));
        } else if let Some(rest) = line.strip_prefix(".registers ") {
            current_method
                .as_mut()
                .ok_or_else(|| err(".registers outside method"))?
                .registers = rest
                .trim()
                .parse()
                .map_err(|_| err("invalid register count"))?;
        } else if let Some(rest) = line.strip_prefix(".lines ") {
            current_method
                .as_mut()
                .ok_or_else(|| err(".lines outside method"))?
                .source_lines =
                rest.trim().parse().map_err(|_| err("invalid line count"))?;
        } else if line == ".end method" {
            let method = current_method
                .take()
                .ok_or_else(|| err(".end method without .method"))?;
            current_class
                .as_mut()
                .ok_or_else(|| err(".end method outside class"))?
                .methods
                .push(method);
        } else if line == ".end class" {
            if current_method.is_some() {
                return Err(err(".end class inside method"));
            }
            let class = current_class
                .take()
                .ok_or_else(|| err(".end class without .class"))?;
            module
                .as_mut()
                .ok_or_else(|| err(".end class before .package"))?
                .add_class(class)?;
        } else {
            let method = current_method
                .as_mut()
                .ok_or_else(|| err("instruction outside method"))?;
            method.body.push(parse_instruction(line, lineno)?);
        }
    }

    if current_method.is_some() {
        return Err(DexError::Parse {
            line: source.lines().count(),
            message: "unterminated .method".to_string(),
        });
    }
    if current_class.is_some() {
        return Err(DexError::Parse {
            line: source.lines().count(),
            message: "unterminated .class".to_string(),
        });
    }
    let module = module.ok_or(DexError::Parse {
        line: 1,
        message: "missing .package directive".to_string(),
    })?;
    module.validate()?;
    Ok(module)
}

/// Parses a single instruction line.
fn parse_instruction(
    line: &str,
    lineno: usize,
) -> Result<Instruction, DexError> {
    let err = |message: String| DexError::Parse {
        line: lineno,
        message,
    };

    if let Some(label) = line.strip_prefix(':') {
        return Ok(Instruction::Label {
            name: label.to_string(),
        });
    }
    let (mnemonic, rest) = match line.split_once(' ') {
        Some((m, r)) => (m, r.trim()),
        None => (line, ""),
    };
    let parse_reg = |s: &str| -> Result<Reg, DexError> {
        s.trim()
            .strip_prefix('v')
            .and_then(|n| n.parse().ok())
            .map(Reg)
            .ok_or_else(|| err(format!("invalid register `{s}`")))
    };

    match mnemonic {
        "nop" => Ok(Instruction::Nop),
        "const" => {
            let (dst, value) = rest
                .split_once(',')
                .ok_or_else(|| err("const needs `reg, value`".into()))?;
            Ok(Instruction::ConstInt {
                dst: parse_reg(dst)?,
                value: value.trim().parse().map_err(|_| {
                    err(format!("invalid integer `{}`", value.trim()))
                })?,
            })
        }
        "const-string" => {
            let (dst, value) = rest.split_once(',').ok_or_else(|| {
                err("const-string needs `reg, \"value\"`".into())
            })?;
            let v = value.trim();
            let inner = v
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| {
                err("string literal must be double-quoted".into())
            })?;
            Ok(Instruction::ConstString {
                dst: parse_reg(dst)?,
                value: unescape(inner),
            })
        }
        "move" => {
            let (dst, src) = rest
                .split_once(',')
                .ok_or_else(|| err("move needs `dst, src`".into()))?;
            Ok(Instruction::Move {
                dst: parse_reg(dst)?,
                src: parse_reg(src)?,
            })
        }
        "add-int" | "sub-int" | "mul-int" => {
            let parts: Vec<&str> = rest.split(',').collect();
            if parts.len() != 3 {
                return Err(err(format!("{mnemonic} needs `dst, a, b`")));
            }
            Ok(Instruction::BinOp {
                op: BinOp::from_mnemonic(mnemonic).expect("matched above"),
                dst: parse_reg(parts[0])?,
                a: parse_reg(parts[1])?,
                b: parse_reg(parts[2])?,
            })
        }
        "invoke-virtual" | "invoke-static" | "invoke-direct" => {
            let kind = match mnemonic {
                "invoke-virtual" => InvokeKind::Virtual,
                "invoke-static" => InvokeKind::Static,
                _ => InvokeKind::Direct,
            };
            let mut parts = rest.split(',');
            let target_str = parts.next().unwrap_or("").trim();
            let target = MethodRef::parse(target_str).ok_or_else(|| {
                err(format!("invalid method reference `{target_str}`"))
            })?;
            let args: Result<Vec<Reg>, DexError> =
                parts.map(parse_reg).collect();
            Ok(Instruction::Invoke {
                kind,
                target,
                args: args?,
            })
        }
        "move-result" => Ok(Instruction::MoveResult {
            dst: parse_reg(rest)?,
        }),
        "acquire" | "release" => {
            let kind = crate::instr::ResourceKind::from_name(rest)
                .ok_or_else(|| err(format!("unknown resource `{rest}`")))?;
            Ok(if mnemonic == "acquire" {
                Instruction::AcquireResource { kind }
            } else {
                Instruction::ReleaseResource { kind }
            })
        }
        "goto" => {
            let target = rest
                .strip_prefix(':')
                .ok_or_else(|| err("goto target must start with `:`".into()))?;
            Ok(Instruction::Goto {
                target: target.to_string(),
            })
        }
        "if-zero" => {
            let (src, target) = rest
                .split_once(',')
                .ok_or_else(|| err("if-zero needs `reg, :label`".into()))?;
            let target = target.trim().strip_prefix(':').ok_or_else(|| {
                err("branch target must start with `:`".into())
            })?;
            Ok(Instruction::IfZero {
                src: parse_reg(src)?,
                target: target.to_string(),
            })
        }
        "return-void" => Ok(Instruction::ReturnVoid),
        "return" => Ok(Instruction::Return {
            src: parse_reg(rest)?,
        }),
        "log-enter" => Ok(Instruction::LogEnter {
            event: rest.to_string(),
        }),
        "log-exit" => Ok(Instruction::LogExit {
            event: rest.to_string(),
        }),
        other => Err(err(format!("unknown mnemonic `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::ResourceKind;

    const K9_SAMPLE: &str = r#"
.package com.fsck.k9
.class Lcom/fsck/k9/activity/MessageList;
.super Landroid/app/Activity;
.activity
.method onResume()V
  .registers 4
  .lines 23
  const v0, 1
  if-zero v0, :skip
  invoke-virtual Lcom/fsck/k9/K9;->load()V, v0
  :skip
  return-void
.end method
.method onPause()V
  .registers 2
  .lines 7
  release wakelock
  return-void
.end method
.end class
.class Lcom/fsck/k9/service/MailService;
.super Landroid/app/Service;
.service
.method onCreate()V
  .registers 3
  .lines 15
  acquire wakelock
  const-string v1, "imap \"quoted\""
  invoke-virtual Ljava/net/Socket;->connect()V, v1
  return-void
.end method
.end class
"#;

    #[test]
    fn parses_k9_sample() {
        let m = parse_module(K9_SAMPLE).unwrap();
        assert_eq!(m.package, "com.fsck.k9");
        assert_eq!(m.classes.len(), 2);
        let ml = &m.classes["Lcom/fsck/k9/activity/MessageList;"];
        assert_eq!(ml.component, ComponentKind::Activity);
        assert_eq!(ml.methods.len(), 2);
        assert_eq!(ml.methods[0].source_lines, 23);
        let svc = &m.classes["Lcom/fsck/k9/service/MailService;"];
        assert_eq!(svc.component, ComponentKind::Service);
        assert_eq!(
            svc.methods[0].acquired_resources(),
            vec![ResourceKind::WakeLock]
        );
    }

    #[test]
    fn round_trips_exactly() {
        let m = parse_module(K9_SAMPLE).unwrap();
        let text = assemble_module(&m);
        let reparsed = parse_module(&text).unwrap();
        assert_eq!(reparsed, m);
    }

    #[test]
    fn string_escapes_round_trip() {
        let m = parse_module(K9_SAMPLE).unwrap();
        let svc = &m.classes["Lcom/fsck/k9/service/MailService;"];
        match &svc.methods[0].body[1] {
            Instruction::ConstString { value, .. } => {
                assert_eq!(value, "imap \"quoted\"");
            }
            other => panic!("expected const-string, got {other:?}"),
        }
    }

    #[test]
    fn parse_error_carries_line_number() {
        let src = ".package x\n.class LA;\n.method m()V\n  bogus-op v0\n.end method\n.end class\n";
        match parse_module(src) {
            Err(DexError::Parse { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn undefined_branch_target_is_rejected_at_validation() {
        let src = "\
.package x
.class LA;
.method m()V
  goto :nowhere
.end method
.end class
";
        assert!(matches!(
            parse_module(src),
            Err(DexError::UndefinedLabel { .. })
        ));
    }

    #[test]
    fn unterminated_method_is_rejected() {
        let src = ".package x\n.class LA;\n.method m()V\n  nop\n";
        assert!(matches!(parse_module(src), Err(DexError::Parse { .. })));
    }

    #[test]
    fn missing_package_is_rejected() {
        assert!(matches!(
            parse_module(".class LA;\n.end class\n"),
            Err(DexError::Parse { .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let src = "\
# leading comment
.package x

.class LA;
# inside class
.end class
";
        assert!(parse_module(src).is_ok());
    }

    #[test]
    fn instruction_outside_method_is_rejected() {
        let src = ".package x\n.class LA;\n  nop\n.end class\n";
        assert!(matches!(parse_module(src), Err(DexError::Parse { .. })));
    }

    #[test]
    fn log_ops_round_trip() {
        let i = Instruction::LogEnter {
            event: "LA;->onResume".into(),
        };
        let text = assemble_instruction(&i);
        assert_eq!(parse_instruction(&text, 1).unwrap(), i);
    }

    #[test]
    fn invoke_without_args_round_trips() {
        let i = Instruction::Invoke {
            kind: InvokeKind::Static,
            target: MethodRef::new("LA;", "f", "()V"),
            args: vec![],
        };
        let text = assemble_instruction(&i);
        assert_eq!(parse_instruction(&text, 1).unwrap(), i);
    }
}
