//! A small forward dataflow framework over [`crate::cfg::Cfg`].
//!
//! The framework is a classic worklist solver over a join-semilattice.
//! Its only in-tree client today is the No-sleep Detection baseline
//! (`energydx-baselines`), which instantiates it with a "resources
//! possibly held" lattice, but it is deliberately generic so further
//! analyses (e.g. a wakelock-misuse checker in the spirit of \[17\]) can
//! reuse it.

use crate::cfg::{BlockId, Cfg};
use crate::instr::Instruction;

/// A dataflow fact: a join-semilattice element.
pub trait Lattice: Clone + PartialEq {
    /// The least element (associated with unvisited blocks).
    fn bottom() -> Self;
    /// Least upper bound; must be commutative, associative, idempotent.
    fn join(&self, other: &Self) -> Self;
}

/// A forward transfer function over instructions.
pub trait Transfer {
    /// The lattice the analysis runs on.
    type Fact: Lattice;
    /// Applies the effect of one instruction to the incoming fact.
    fn apply(&self, instr: &Instruction, fact: &Self::Fact) -> Self::Fact;
}

/// The fixpoint solution of a forward dataflow analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution<F> {
    /// Fact at entry of each block.
    pub entry: Vec<F>,
    /// Fact at exit of each block.
    pub exit: Vec<F>,
}

/// Runs a forward worklist analysis to fixpoint.
///
/// `boundary` is the fact at the method entry. Unreachable blocks keep
/// [`Lattice::bottom`] at their entry.
///
/// # Examples
///
/// ```
/// use energydx_dexir::cfg::Cfg;
/// use energydx_dexir::dataflow::{forward, Lattice, Transfer};
/// use energydx_dexir::instr::Instruction;
/// use energydx_dexir::module::Method;
///
/// /// Counts the maximum number of `nop`s on any path (saturating).
/// #[derive(Clone, PartialEq, Debug)]
/// struct MaxNops(u32);
/// impl Lattice for MaxNops {
///     fn bottom() -> Self { MaxNops(0) }
///     fn join(&self, o: &Self) -> Self { MaxNops(self.0.max(o.0)) }
/// }
/// struct CountNops;
/// impl Transfer for CountNops {
///     type Fact = MaxNops;
///     fn apply(&self, i: &Instruction, f: &MaxNops) -> MaxNops {
///         match i {
///             Instruction::Nop => MaxNops(f.0 + 1),
///             _ => f.clone(),
///         }
///     }
/// }
///
/// let mut m = Method::new("m", "()V");
/// m.body = vec![Instruction::Nop, Instruction::Nop, Instruction::ReturnVoid];
/// let cfg = Cfg::build(&m)?;
/// let sol = forward(&cfg, &m.body, &CountNops, MaxNops(0));
/// assert_eq!(sol.exit[0], MaxNops(2));
/// # Ok::<(), energydx_dexir::DexError>(())
/// ```
pub fn forward<T: Transfer>(
    cfg: &Cfg,
    body: &[Instruction],
    transfer: &T,
    boundary: T::Fact,
) -> Solution<T::Fact> {
    let n = cfg.blocks().len();
    let mut entry: Vec<T::Fact> = vec![T::Fact::bottom(); n];
    let mut exit: Vec<T::Fact> = vec![T::Fact::bottom(); n];
    if n == 0 {
        return Solution { entry, exit };
    }
    entry[0] = boundary;

    let preds = cfg.predecessors();
    let mut worklist: std::collections::VecDeque<BlockId> = (0..n).collect();
    let mut queued = vec![true; n];

    while let Some(b) = worklist.pop_front() {
        queued[b] = false;
        // Join over predecessors (entry block keeps its boundary fact).
        if b != 0 {
            let mut acc = T::Fact::bottom();
            for &p in &preds[b] {
                acc = acc.join(&exit[p]);
            }
            entry[b] = acc;
        }
        // Apply the block's instructions.
        let mut fact = entry[b].clone();
        for instr in &body[cfg.blocks()[b].range.clone()] {
            fact = transfer.apply(instr, &fact);
        }
        if fact != exit[b] {
            exit[b] = fact;
            for &s in &cfg.blocks()[b].successors {
                if !queued[s] {
                    queued[s] = true;
                    worklist.push_back(s);
                }
            }
        }
    }

    Solution { entry, exit }
}

/// A ready-made lattice: a small bit set over [`crate::instr::ResourceKind`],
/// tracking which resources *may* be held.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeldResources(pub u8);

impl HeldResources {
    /// The empty set.
    pub fn empty() -> Self {
        HeldResources(0)
    }

    /// Set membership test.
    pub fn contains(&self, kind: crate::instr::ResourceKind) -> bool {
        self.0 & (1 << kind as u8) != 0
    }

    /// Adds a resource to the set.
    pub fn insert(&mut self, kind: crate::instr::ResourceKind) {
        self.0 |= 1 << kind as u8;
    }

    /// Removes a resource from the set.
    pub fn remove(&mut self, kind: crate::instr::ResourceKind) {
        self.0 &= !(1 << kind as u8);
    }

    /// Whether no resource is held.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates over held resource kinds.
    pub fn iter(
        &self,
    ) -> impl Iterator<Item = crate::instr::ResourceKind> + '_ {
        crate::instr::ResourceKind::ALL
            .into_iter()
            .filter(|&k| self.contains(k))
    }
}

impl Lattice for HeldResources {
    fn bottom() -> Self {
        HeldResources::empty()
    }
    fn join(&self, other: &Self) -> Self {
        HeldResources(self.0 | other.0)
    }
}

/// Transfer function for the may-hold-resources analysis.
#[derive(Debug, Default, Clone, Copy)]
pub struct ResourceTransfer;

impl Transfer for ResourceTransfer {
    type Fact = HeldResources;

    fn apply(
        &self,
        instr: &Instruction,
        fact: &HeldResources,
    ) -> HeldResources {
        let mut out = *fact;
        match instr {
            Instruction::AcquireResource { kind } => out.insert(*kind),
            Instruction::ReleaseResource { kind } => out.remove(*kind),
            _ => {}
        }
        out
    }
}

/// Resources that may still be held at *some* exit of the method —
/// the per-method core of the no-sleep check.
///
/// # Examples
///
/// ```
/// use energydx_dexir::dataflow::leaked_at_exit;
/// use energydx_dexir::instr::{Instruction, ResourceKind};
/// use energydx_dexir::module::Method;
///
/// let mut m = Method::new("onStart", "()V");
/// m.body = vec![
///     Instruction::AcquireResource { kind: ResourceKind::Gps },
///     Instruction::ReturnVoid,
/// ];
/// let leaked = leaked_at_exit(&m)?;
/// assert!(leaked.contains(ResourceKind::Gps));
/// # Ok::<(), energydx_dexir::DexError>(())
/// ```
///
/// # Errors
///
/// Returns [`crate::DexError`] if the method body is malformed.
pub fn leaked_at_exit(
    method: &crate::module::Method,
) -> Result<HeldResources, crate::DexError> {
    let cfg = Cfg::build(method)?;
    let sol = forward(
        &cfg,
        &method.body,
        &ResourceTransfer,
        HeldResources::empty(),
    );
    let mut leaked = HeldResources::empty();
    for b in cfg.exit_blocks() {
        leaked = leaked.join(&sol.exit[b]);
    }
    Ok(leaked)
}

/// Instruction indices that may acquire a resource that is already
/// held — the refcount-leak variant of the no-sleep bug family (a
/// second acquire without an intervening release means one release too
/// few later, cf. the wake-lock misuse patterns of \[17\]).
///
/// # Errors
///
/// Returns [`crate::DexError`] if the method body is malformed.
///
/// # Examples
///
/// ```
/// use energydx_dexir::dataflow::double_acquires;
/// use energydx_dexir::instr::{Instruction, ResourceKind};
/// use energydx_dexir::module::Method;
///
/// let mut m = Method::new("onStart", "()V");
/// m.body = vec![
///     Instruction::AcquireResource { kind: ResourceKind::WakeLock },
///     Instruction::AcquireResource { kind: ResourceKind::WakeLock },
///     Instruction::ReturnVoid,
/// ];
/// assert_eq!(double_acquires(&m)?, vec![1]);
/// # Ok::<(), energydx_dexir::DexError>(())
/// ```
pub fn double_acquires(
    method: &crate::module::Method,
) -> Result<Vec<usize>, crate::DexError> {
    let cfg = Cfg::build(method)?;
    let sol = forward(
        &cfg,
        &method.body,
        &ResourceTransfer,
        HeldResources::empty(),
    );
    let mut findings = Vec::new();
    for block in cfg.blocks() {
        let mut fact = sol.entry[block.id];
        for i in block.range.clone() {
            if let Instruction::AcquireResource { kind } = &method.body[i] {
                if fact.contains(*kind) {
                    findings.push(i);
                }
            }
            fact = ResourceTransfer.apply(&method.body[i], &fact);
        }
    }
    findings.sort_unstable();
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Instruction, Reg, ResourceKind};
    use crate::module::Method;

    fn method_with(body: Vec<Instruction>) -> Method {
        let mut m = Method::new("m", "()V");
        m.body = body;
        m
    }

    #[test]
    fn acquire_then_release_does_not_leak() {
        let m = method_with(vec![
            Instruction::AcquireResource {
                kind: ResourceKind::WakeLock,
            },
            Instruction::ReleaseResource {
                kind: ResourceKind::WakeLock,
            },
            Instruction::ReturnVoid,
        ]);
        assert!(leaked_at_exit(&m).unwrap().is_empty());
    }

    #[test]
    fn acquire_without_release_leaks() {
        let m = method_with(vec![
            Instruction::AcquireResource {
                kind: ResourceKind::WakeLock,
            },
            Instruction::ReturnVoid,
        ]);
        let leaked = leaked_at_exit(&m).unwrap();
        assert!(leaked.contains(ResourceKind::WakeLock));
    }

    #[test]
    fn release_on_one_path_only_still_leaks() {
        // The classic Pathak no-sleep pattern: release only on the
        // early-exit path.
        let m = method_with(vec![
            Instruction::AcquireResource {
                kind: ResourceKind::WakeLock,
            },
            Instruction::IfZero {
                src: Reg(0),
                target: "skip".into(),
            },
            Instruction::ReleaseResource {
                kind: ResourceKind::WakeLock,
            },
            Instruction::Label {
                name: "skip".into(),
            },
            Instruction::ReturnVoid,
        ]);
        let leaked = leaked_at_exit(&m).unwrap();
        assert!(leaked.contains(ResourceKind::WakeLock));
    }

    #[test]
    fn release_on_all_paths_does_not_leak() {
        let m = method_with(vec![
            Instruction::AcquireResource {
                kind: ResourceKind::Gps,
            },
            Instruction::IfZero {
                src: Reg(0),
                target: "other".into(),
            },
            Instruction::ReleaseResource {
                kind: ResourceKind::Gps,
            },
            Instruction::ReturnVoid,
            Instruction::Label {
                name: "other".into(),
            },
            Instruction::ReleaseResource {
                kind: ResourceKind::Gps,
            },
            Instruction::ReturnVoid,
        ]);
        assert!(leaked_at_exit(&m).unwrap().is_empty());
    }

    #[test]
    fn loop_with_acquire_converges_and_leaks() {
        let m = method_with(vec![
            Instruction::Label {
                name: "loop".into(),
            },
            Instruction::AcquireResource {
                kind: ResourceKind::Sensor,
            },
            Instruction::IfZero {
                src: Reg(0),
                target: "loop".into(),
            },
            Instruction::ReturnVoid,
        ]);
        let leaked = leaked_at_exit(&m).unwrap();
        assert!(leaked.contains(ResourceKind::Sensor));
    }

    #[test]
    fn held_resources_set_operations() {
        let mut h = HeldResources::empty();
        assert!(h.is_empty());
        h.insert(ResourceKind::WifiLock);
        h.insert(ResourceKind::Gps);
        assert!(h.contains(ResourceKind::WifiLock));
        h.remove(ResourceKind::WifiLock);
        assert!(!h.contains(ResourceKind::WifiLock));
        assert_eq!(h.iter().collect::<Vec<_>>(), vec![ResourceKind::Gps]);
    }

    #[test]
    fn join_is_union() {
        let mut a = HeldResources::empty();
        a.insert(ResourceKind::Gps);
        let mut b = HeldResources::empty();
        b.insert(ResourceKind::Sensor);
        let j = a.join(&b);
        assert!(
            j.contains(ResourceKind::Gps) && j.contains(ResourceKind::Sensor)
        );
        // Idempotent and commutative.
        assert_eq!(j.join(&j), j);
        assert_eq!(a.join(&b), b.join(&a));
    }

    #[test]
    fn double_acquire_on_one_path_is_flagged() {
        // acquire; if (v0) { release } ; acquire  — the second acquire
        // may run with the lock still held on the fallthrough path.
        let m = method_with(vec![
            Instruction::AcquireResource {
                kind: ResourceKind::WakeLock,
            },
            Instruction::IfZero {
                src: Reg(0),
                target: "skip".into(),
            },
            Instruction::ReleaseResource {
                kind: ResourceKind::WakeLock,
            },
            Instruction::Label {
                name: "skip".into(),
            },
            Instruction::AcquireResource {
                kind: ResourceKind::WakeLock,
            },
            Instruction::ReturnVoid,
        ]);
        assert_eq!(double_acquires(&m).unwrap(), vec![4]);
    }

    #[test]
    fn acquire_release_acquire_is_clean() {
        let m = method_with(vec![
            Instruction::AcquireResource {
                kind: ResourceKind::Gps,
            },
            Instruction::ReleaseResource {
                kind: ResourceKind::Gps,
            },
            Instruction::AcquireResource {
                kind: ResourceKind::Gps,
            },
            Instruction::ReturnVoid,
        ]);
        assert!(double_acquires(&m).unwrap().is_empty());
    }

    #[test]
    fn acquires_of_different_resources_are_clean() {
        let m = method_with(vec![
            Instruction::AcquireResource {
                kind: ResourceKind::Gps,
            },
            Instruction::AcquireResource {
                kind: ResourceKind::WakeLock,
            },
            Instruction::ReturnVoid,
        ]);
        assert!(double_acquires(&m).unwrap().is_empty());
    }

    #[test]
    fn empty_method_has_empty_solution() {
        let m = method_with(vec![]);
        let leaked = leaked_at_exit(&m).unwrap();
        assert!(leaked.is_empty());
    }
}
